//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open and
//! inclusive numeric ranges, and [`Rng::gen_bool`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic and
//! statistically solid for synthetic-dataset generation, but its streams
//! are *not* bit-identical to the real `StdRng` (ChaCha12).

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface: a 64-bit core plus derived samplers.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open or inclusive numeric range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1], got {p}");
        uniform_f64(self.next_u64()) < p
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

#[inline]
fn uniform_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn uniform_f32(bits: u64) -> f32 {
    // 24 high bits → [0, 1).
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! impl_float_uniform {
    ($t:ty, $uniform:ident) => {
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range");
                lo + (hi - lo) * $uniform(rng.next_u64())
            }

            #[inline]
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * $uniform(rng.next_u64())
            }
        }
    };
}

impl_float_uniform!(f32, uniform_f32);
impl_float_uniform!(f64, uniform_f64);

macro_rules! impl_int_uniform {
    ($t:ty) => {
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    };
}

impl_int_uniform!(u8);
impl_int_uniform!(u16);
impl_int_uniform!(u32);
impl_int_uniform!(u64);
impl_int_uniform!(usize);
impl_int_uniform!(i8);
impl_int_uniform!(i16);
impl_int_uniform!(i32);
impl_int_uniform!(i64);
impl_int_uniform!(isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(0usize..=10);
            assert!(u <= 10);
            let i = rng.gen_range(-2048i64..2048);
            assert!((-2048..2048).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn float_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0f32..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The real derive macros generate `Serialize`/`Deserialize` trait
//! implementations. In this workspace the `serde` stand-in provides blanket
//! implementations of marker traits instead, so the derives only need to
//! accept the input (including `#[serde(...)]` attributes) and emit nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; the blanket impl in `serde` covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; the blanket impl in `serde` covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for `serde`.
//!
//! Provides `Serialize` and `Deserialize` as blanket-implemented marker
//! traits so that `#[derive(Serialize, Deserialize)]` and `T: Serialize`
//! bounds compile without a registry. Nothing in this workspace performs
//! actual serialization (the bench harness writes JSON by hand), so no
//! serializer machinery is needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module (trait re-exports only).
pub mod de {
    pub use crate::DeserializeOwned;
}

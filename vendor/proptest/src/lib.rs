//! Offline stand-in for `proptest` 1.x.
//!
//! Supports the subset this workspace uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `pattern in strategy` bindings;
//! * numeric [`Strategy`] ranges (`0.0f32..1.0`, `1usize..300`, `0..=k`),
//!   tuples of strategies up to arity 4, [`Strategy::prop_map`],
//!   [`collection::vec`] with a length range or exact length, and
//!   [`any`]`::<bool>()`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], and
//!   [`TestCaseError`].
//!
//! Cases are generated from a deterministic per-test seed (FNV-1a of the
//! test name). Failures are reported with the case index so a run can be
//! reproduced; shrinking is not implemented.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; carries the failure message.
    Fail(String),
    /// The case was rejected by `prop_assume!`.
    Reject,
}

impl TestCaseError {
    /// Builds a failure from anything displayable.
    pub fn fail<M: fmt::Display>(msg: M) -> TestCaseError {
        TestCaseError::Fail(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
        }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// Marker for [`any`]-constructible types.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs `cases` generated cases of a property. Used by [`proptest!`]; not
/// part of the public proptest API.
pub fn run_cases<V, S, F>(name: &str, config: ProptestConfig, strategy: S, mut body: F)
where
    S: Strategy<Value = V>,
    F: FnMut(V) -> Result<(), TestCaseError>,
{
    // FNV-1a of the test name: deterministic, name-unique seeding.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rejected = 0u32;
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        match body(value) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {case} (seed {seed:#x}): {msg}")
            }
        }
    }
    assert!(rejected < config.cases, "property `{name}`: every case was rejected by prop_assume!");
}

/// The `proptest!` macro: declares `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    stringify!($name),
                    config,
                    ( $($strat,)+ ),
                    |values| {
                        let ( $($pat,)+ ) = values;
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Rejects the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -1.0f32..1.0), c in 0u8..4) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!(c < 4);
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec((0.0f32..1.0, 0.0f32..1.0), 1..20)
            .prop_map(|v| v.into_iter().map(|(a, b)| a + b).collect::<Vec<f32>>()))
        {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in &v {
                prop_assert!((0.0..2.0).contains(x), "out of range: {x}");
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn exact_vec_len(v in crate::collection::vec(any::<bool>(), 64)) {
            prop_assert_eq!(v.len(), 64);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        crate::run_cases("always_fails", ProptestConfig::with_cases(4), (0usize..10,), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}

//! Offline stand-in for `criterion` 0.5.
//!
//! Implements the subset the workspace benches use — benchmark groups,
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is warmed
//! up briefly, then timed for a fixed measurement window; the mean, median
//! and iteration count are printed to stdout.
//!
//! Environment knobs: `CRITERION_MEASURE_MS` (measurement window per
//! benchmark, default 300 ms) and `CRITERION_WARMUP_MS` (default 100 ms).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to benchmark functions.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let ms = |var: &str, default_ms: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_millis)
                .unwrap_or(Duration::from_millis(default_ms))
        };
        Criterion {
            warmup: ms("CRITERION_WARMUP_MS", 100),
            measure: ms("CRITERION_MEASURE_MS", 300),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named identifier `function/parameter` for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warmup: self.criterion.warmup,
            measure: self.criterion.measure,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("  {}/{id:<40} (no samples)", self.name);
            return;
        }
        samples.sort();
        let n = samples.len();
        let mean: Duration = samples.iter().sum::<Duration>() / n as u32;
        let median = samples[n / 2];
        println!(
            "  {}/{id:<40} mean {:>12?}  median {:>12?}  ({n} iters)",
            self.name, mean, median
        );
    }

    /// Ends the group (printing nothing extra; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly: a warmup window, then a measurement
    /// window, recording one sample per invocation.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_until = Instant::now() + self.warmup;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let measure_until = Instant::now() + self.measure;
        while Instant::now() < measure_until {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            // Routine slower than the window: take one sample anyway.
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Declares a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    #[test]
    fn harness_runs_quickly() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_MEASURE_MS", "2");
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}

//! Property tests for the Mesorasi schedule equivalence: on random clouds
//! the eager (gather-then-MLP) and delayed (MLP-then-max-aggregate)
//! schedules must produce bit-identical logits and row indices — on every
//! kernel backend — while only the delayed schedule reports moved/saved
//! MACs and only the eager schedule reports gather traffic.

use fractalcloud_core::Workspace;
use fractalcloud_pnn::{Aggregation, InferOutput, InferenceConfig, ModelConfig, NetworkExecutor};
use fractalcloud_pointcloud::kernels::{self, Backend};
use fractalcloud_pointcloud::{Point3, PointCloud};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Point3>> {
    proptest::collection::vec((-4.0f32..4.0, -4.0f32..4.0, -2.0f32..2.0), 24..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
}

fn run_schedule(cloud: &PointCloud, seed: u64, agg: Aggregation) -> InferOutput {
    let model = ModelConfig::table1().remove(0);
    let executor = NetworkExecutor::new(InferenceConfig {
        aggregation: agg,
        ..InferenceConfig::new(model, seed)
    });
    let mut ws = Workspace::new();
    executor.run(cloud, &mut ws).expect("inference on a non-empty cloud")
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Eager and delayed logits are bit-identical on random clouds (ragged
    /// ball neighborhoods arise naturally from the random geometry), with
    /// the MAC/gather accounting split the schedules promise.
    #[test]
    fn eager_and_delayed_are_bit_identical(pts in arb_points(120), seed in 0u64..1_000) {
        let cloud = PointCloud::from_points(pts);
        let eager = run_schedule(&cloud, seed, Aggregation::Eager);
        let delayed = run_schedule(&cloud, seed, Aggregation::Delayed);
        prop_assert_eq!(eager.classes, delayed.classes);
        prop_assert_eq!(&eager.row_index, &delayed.row_index);
        prop_assert_eq!(bits(&eager.logits), bits(&delayed.logits));
        prop_assert_eq!(eager.counters.macs_moved, 0);
        prop_assert_eq!(eager.counters.macs_saved, 0);
        prop_assert!(eager.counters.gather_bytes > 0);
        prop_assert!(delayed.counters.macs_moved > 0);
        prop_assert_eq!(delayed.counters.gather_bytes, 0);
    }

    /// The schedule equivalence holds per kernel backend, and each
    /// backend's delayed logits are bit-identical to the scalar backend's
    /// — the segmented-max and MLP paths introduce no backend drift.
    #[test]
    fn schedules_agree_on_every_backend(pts in arb_points(96), seed in 0u64..1_000) {
        let cloud = PointCloud::from_points(pts);
        let scalar_delayed = kernels::with_backend(Backend::Scalar, || {
            run_schedule(&cloud, seed, Aggregation::Delayed)
        });
        for b in Backend::ALL {
            let (eager, delayed) = kernels::with_backend(b, || {
                (run_schedule(&cloud, seed, Aggregation::Eager),
                 run_schedule(&cloud, seed, Aggregation::Delayed))
            });
            prop_assert_eq!(bits(&eager.logits), bits(&delayed.logits));
            prop_assert_eq!(bits(&delayed.logits), bits(&scalar_delayed.logits));
            prop_assert_eq!(&delayed.row_index, &scalar_delayed.row_index);
        }
    }
}

//! Operation traces: the shape-level IR accelerator models execute.

use crate::zoo::{ModelConfig, Task};
use serde::{Deserialize, Serialize};

/// How an MLP's rows relate to the point structure — accelerator models use
/// this to apply delayed aggregation (Mesorasi): a `Grouped` MLP of
/// `centers × nsample` rows can be computed on the *ungrouped* `candidates`
/// points instead, then aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MlpKind {
    /// Rows are a grouped neighbor tensor (`centers × nsample`).
    Grouped {
        /// Number of group centers.
        centers: usize,
        /// Neighbors per center.
        nsample: usize,
        /// Points the groups were drawn from (delayed-aggregation row
        /// count).
        candidates: usize,
    },
    /// Rows are per-point features.
    Pointwise,
    /// Head / classifier layers (pointwise; tagged so accelerator models
    /// can segment the trace unambiguously).
    Head,
}

/// One operation of a PNN inference, with full shape information.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PnnOp {
    /// Farthest point sampling: select `n_out` of `n_in` points.
    Sample {
        /// Points before sampling.
        n_in: usize,
        /// Points kept.
        n_out: usize,
    },
    /// Ball-query grouping: for `centers` centers, find `nsample` neighbors
    /// among `candidates` points within `radius`.
    Group {
        /// Number of query centers.
        centers: usize,
        /// Candidate pool size.
        candidates: usize,
        /// Neighbors per center.
        nsample: usize,
        /// Query radius.
        radius: f32,
    },
    /// Gather: resolve `rows × nsample` indices against `channels`-wide
    /// feature storage of `candidates` points.
    Gather {
        /// Number of center rows.
        rows: usize,
        /// Indices per row.
        nsample: usize,
        /// Feature channels moved per index.
        channels: usize,
        /// Size of the feature table being gathered from.
        candidates: usize,
    },
    /// Pointwise MLP layer: `rows × cin → rows × cout`.
    Mlp {
        /// Row count.
        rows: usize,
        /// Input channels.
        cin: usize,
        /// Output channels.
        cout: usize,
        /// Row structure (for delayed aggregation).
        kind: MlpKind,
    },
    /// Max-pool reduction over neighbor groups.
    MaxPool {
        /// Number of groups.
        groups: usize,
        /// Elements per group.
        size: usize,
        /// Channels.
        channels: usize,
    },
    /// KNN interpolation: `targets` points pull features from `sources`.
    Interpolate {
        /// Points being reconstructed.
        targets: usize,
        /// Sampled points providing features.
        sources: usize,
        /// Neighbors (3 in all Table I nets).
        k: usize,
        /// Channels interpolated.
        channels: usize,
    },
}

impl PnnOp {
    /// True for the point operations (sampling / neighbor search / gather);
    /// false for tensor computation. This is the Fig. 4 split.
    pub fn is_point_op(&self) -> bool {
        !matches!(self, PnnOp::Mlp { .. } | PnnOp::MaxPool { .. })
    }

    /// Multiply-accumulate count for tensor ops (0 for point ops).
    pub fn macs(&self) -> u64 {
        match self {
            PnnOp::Mlp { rows, cin, cout, .. } => (*rows as u64) * (*cin as u64) * (*cout as u64),
            _ => 0,
        }
    }
}

/// A complete inference trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpTrace {
    /// The network's notation, e.g. "PNXt (s)".
    pub notation: String,
    /// The task.
    pub task: Task,
    /// Input point count.
    pub n: usize,
    /// Operations in execution order.
    pub ops: Vec<PnnOp>,
}

impl OpTrace {
    /// Builds the trace of `model` on an `n`-point input.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn build(model: &ModelConfig, n: usize) -> OpTrace {
        assert!(n > 0, "input cloud must be non-empty");
        let mut ops = Vec::new();
        let mut points = n;
        let mut channels = model.in_channels;

        // Stem (PointNeXt/PointVector): pointwise MLP on the raw input.
        if model.stem_width > 0 {
            ops.push(PnnOp::Mlp {
                rows: points,
                cin: channels,
                cout: model.stem_width,
                kind: MlpKind::Pointwise,
            });
            channels = model.stem_width;
        }

        // Abstraction stages. Track per-stage point counts for skip links.
        let mut skip: Vec<(usize, usize)> = vec![(points, channels)];
        for sa in &model.stages {
            let n_out = ((points as f64) * sa.sample_ratio).round().max(1.0) as usize;
            ops.push(PnnOp::Sample { n_in: points, n_out });
            ops.push(PnnOp::Group {
                centers: n_out,
                candidates: points,
                nsample: sa.nsample,
                radius: sa.radius,
            });
            ops.push(PnnOp::Gather {
                rows: n_out,
                nsample: sa.nsample,
                channels: channels + 3, // features ++ relative coords
                candidates: points,
            });
            // Grouped MLP chain.
            let mut cin = channels + 3;
            let rows = n_out * sa.nsample;
            for &cout in &sa.mlp {
                ops.push(PnnOp::Mlp {
                    rows,
                    cin,
                    cout,
                    kind: MlpKind::Grouped {
                        centers: n_out,
                        nsample: sa.nsample,
                        candidates: points,
                    },
                });
                cin = cout;
            }
            ops.push(PnnOp::MaxPool { groups: n_out, size: sa.nsample, channels: cin });
            // Residual pointwise blocks (PointNeXt InvResMLP: expand ×4).
            for _ in 0..sa.blocks {
                ops.push(PnnOp::Mlp { rows: n_out, cin, cout: cin * 4, kind: MlpKind::Pointwise });
                ops.push(PnnOp::Mlp {
                    rows: n_out,
                    cin: cin * 4,
                    cout: cin,
                    kind: MlpKind::Pointwise,
                });
            }
            points = n_out;
            channels = cin;
            skip.push((points, channels));
        }

        // Propagation stages (segmentation): innermost-first.
        if model.task.has_propagation() {
            for (fp_idx, fp) in model.propagation.iter().enumerate() {
                // The skip source for FP stage i is abstraction level
                // len-2-i (mirror order).
                let (t_points, t_channels) = skip[skip.len() - 2 - fp_idx];
                ops.push(PnnOp::Interpolate {
                    targets: t_points,
                    sources: points,
                    k: fp.k,
                    channels,
                });
                let mut cin = channels + t_channels; // concat skip features
                for &cout in &fp.mlp {
                    ops.push(PnnOp::Mlp { rows: t_points, cin, cout, kind: MlpKind::Pointwise });
                    cin = cout;
                }
                points = t_points;
                channels = cin;
            }
        }

        // Head.
        let head_rows = if model.task.has_propagation() { points } else { 1 };
        let mut cin = channels;
        for &cout in &model.head {
            ops.push(PnnOp::Mlp { rows: head_rows, cin, cout, kind: MlpKind::Head });
            cin = cout;
        }
        ops.push(PnnOp::Mlp { rows: head_rows, cin, cout: model.classes, kind: MlpKind::Head });

        OpTrace { notation: model.notation.clone(), task: model.task, n, ops }
    }

    /// Total MACs across tensor ops.
    pub fn total_macs(&self) -> u64 {
        self.ops.iter().map(PnnOp::macs).sum()
    }

    /// Number of point operations.
    pub fn point_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_point_op()).count()
    }

    /// The analytic distance-evaluation count of all *global-search* point
    /// operations (what PointAcc/Mesorasi/GPU execute): FPS is
    /// `(n_out − 1) · n_in`, grouping `centers · candidates`, interpolation
    /// `targets · sources` — the `O(n²)` terms of §II-B.
    pub fn global_distance_evals(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                PnnOp::Sample { n_in, n_out } => (n_out.saturating_sub(1) as u64) * (*n_in as u64),
                PnnOp::Group { centers, candidates, .. } => {
                    (*centers as u64) * (*candidates as u64)
                }
                PnnOp::Interpolate { targets, sources, .. } => {
                    (*targets as u64) * (*sources as u64)
                }
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelConfig;

    #[test]
    fn classification_trace_structure() {
        let m = ModelConfig::pointnetpp_classification();
        let t = OpTrace::build(&m, 1024);
        // 3 SA stages: sample+group+gather+3 mlp+pool = 7 ops each, plus
        // head 3 layers.
        assert_eq!(t.ops.len(), 3 * 7 + 3);
        assert!(matches!(t.ops[0], PnnOp::Sample { n_in: 1024, n_out: 256 }));
        // No interpolation in classification.
        assert!(!t.ops.iter().any(|o| matches!(o, PnnOp::Interpolate { .. })));
    }

    #[test]
    fn sampling_cascade_divides_by_four() {
        let m = ModelConfig::pointnext_segmentation();
        let t = OpTrace::build(&m, 4096);
        let samples: Vec<(usize, usize)> = t
            .ops
            .iter()
            .filter_map(|o| match o {
                PnnOp::Sample { n_in, n_out } => Some((*n_in, *n_out)),
                _ => None,
            })
            .collect();
        assert_eq!(samples, vec![(4096, 1024), (1024, 256), (256, 64), (64, 16)]);
    }

    #[test]
    fn propagation_mirrors_abstraction() {
        let m = ModelConfig::pointnetpp_segmentation();
        let t = OpTrace::build(&m, 4096);
        let interps: Vec<(usize, usize)> = t
            .ops
            .iter()
            .filter_map(|o| match o {
                PnnOp::Interpolate { targets, sources, .. } => Some((*targets, *sources)),
                _ => None,
            })
            .collect();
        assert_eq!(interps, vec![(64, 16), (256, 64), (1024, 256), (4096, 1024)]);
    }

    #[test]
    fn mlp_channel_chains_are_consistent() {
        for m in ModelConfig::table1() {
            let t = OpTrace::build(&m, 2048);
            // Every Grouped MLP chain starts right after its Gather with
            // cin = gather channels.
            let mut last_gather_channels = None;
            for op in &t.ops {
                match op {
                    PnnOp::Gather { channels, .. } => last_gather_channels = Some(*channels),
                    PnnOp::Mlp { cin, kind: MlpKind::Grouped { .. }, .. } => {
                        if let Some(gc) = last_gather_channels.take() {
                            assert_eq!(*cin, gc, "{}", m.notation);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn global_point_op_work_is_quadratic() {
        let m = ModelConfig::pointnext_segmentation();
        let small = OpTrace::build(&m, 1024).global_distance_evals();
        let big = OpTrace::build(&m, 4096).global_distance_evals();
        let ratio = big as f64 / small as f64;
        assert!(
            (10.0..=20.0).contains(&ratio),
            "4× points should cost ≈16× global search, got {ratio}"
        );
    }

    #[test]
    fn point_op_share_grows_with_scale() {
        // Fig. 4's core claim, in op-count form: point-op work grows
        // quadratically while MACs grow linearly.
        let m = ModelConfig::pointnext_segmentation();
        let t1 = OpTrace::build(&m, 1024);
        let t2 = OpTrace::build(&m, 16384);
        let r1 = t1.global_distance_evals() as f64 / t1.total_macs() as f64;
        let r2 = t2.global_distance_evals() as f64 / t2.total_macs() as f64;
        assert!(r2 > 8.0 * r1, "point-op share must grow: {r1} → {r2}");
    }

    #[test]
    fn classification_head_is_single_row() {
        let m = ModelConfig::pointnext_classification();
        let t = OpTrace::build(&m, 1024);
        let last = t.ops.last().unwrap();
        assert!(matches!(last, PnnOp::Mlp { rows: 1, cout: 40, .. }));
    }

    #[test]
    fn segmentation_head_is_per_point() {
        let m = ModelConfig::pointnext_segmentation();
        let t = OpTrace::build(&m, 4096);
        let last = t.ops.last().unwrap();
        assert!(matches!(last, PnnOp::Mlp { rows: 4096, cout: 13, .. }));
    }

    #[test]
    fn pointvector_has_more_macs_than_pointnext() {
        let pv = OpTrace::build(&ModelConfig::pointvector_segmentation(), 4096);
        let pn = OpTrace::build(&ModelConfig::pointnext_segmentation(), 4096);
        assert!(pv.total_macs() > 3 * pn.total_macs());
    }

    #[test]
    fn trace_is_deterministic() {
        let m = ModelConfig::pointnetpp_segmentation();
        assert_eq!(OpTrace::build(&m, 3000), OpTrace::build(&m, 3000));
    }
}

//! CPU reference executor: runs a PNN end to end with real arithmetic,
//! in either global-search or block-parallel (Fractal + BPPO) mode.
//!
//! This is the functional-correctness anchor: the same network weights run
//! both ways, and the outputs can be compared directly — the software
//! equivalent of the paper's accuracy evaluation (§VI-B).

use crate::layers::{concat_channels, max_pool, Linear};
use crate::zoo::ModelConfig;
use fractalcloud_core::{block_ball_query, block_fps, BppoConfig, Fractal};
use fractalcloud_pointcloud::ops::{ball_query, farthest_point_sample, interpolate_features};
use fractalcloud_pointcloud::partition::Partition;
use fractalcloud_pointcloud::{Error, Point3, PointCloud, Result};

/// Search strategy of the executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Original global-search point operations (PointAcc semantics).
    Global,
    /// Fractal partitioning + block-parallel point operations with the
    /// given threshold.
    Block {
        /// Fractal threshold (`th`).
        threshold: usize,
    },
}

/// Result of one inference.
#[derive(Debug, Clone, PartialEq)]
pub struct Inference {
    /// Row-major `rows × classes` logits (1 row for classification, `n`
    /// rows for segmentation).
    pub logits: Vec<f32>,
    /// Number of classes (row width).
    pub classes: usize,
    /// For segmentation: the original-cloud index of each logit row (block
    /// mode reorders points); for classification a single `0`.
    pub row_index: Vec<usize>,
}

impl Inference {
    /// The argmax class of row `r`.
    pub fn predicted_class(&self, r: usize) -> usize {
        let row = &self.logits[r * self.classes..(r + 1) * self.classes];
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Deterministic-weight reference executor.
#[derive(Debug, Clone)]
pub struct ReferenceExecutor {
    model: ModelConfig,
    seed: u64,
}

struct Level {
    /// Point positions at this level.
    points: Vec<Point3>,
    /// Features, row-major `points × channels`.
    features: Vec<f32>,
    channels: usize,
    /// Original-cloud index of each point (for output alignment).
    origin: Vec<usize>,
}

impl ReferenceExecutor {
    /// Creates an executor for `model` with weights derived from `seed`.
    pub fn new(model: ModelConfig, seed: u64) -> ReferenceExecutor {
        ReferenceExecutor { model, seed }
    }

    /// The model being executed.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Runs inference on `cloud` (coordinates only; input features are the
    /// coordinates, zero-padded to the model's input channel count).
    ///
    /// # Errors
    ///
    /// Propagates point-operation errors (empty cloud, degenerate
    /// parameters).
    pub fn run(&self, cloud: &PointCloud, mode: ExecMode) -> Result<Inference> {
        if cloud.is_empty() {
            return Err(Error::EmptyCloud);
        }
        let mut layer_seed = self.seed;
        let mut next_linear = |cin: usize, cout: usize, relu: bool| {
            layer_seed =
                layer_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Linear::seeded(cin, cout, layer_seed, relu)
        };

        // Block mode machinery: one partition reused by every stage.
        let (partition, bppo): (Option<Partition>, BppoConfig) = match mode {
            ExecMode::Global => (None, BppoConfig::sequential()),
            ExecMode::Block { threshold } => {
                let part = Fractal::with_threshold(threshold).build(cloud)?.partition;
                (Some(part), BppoConfig::sequential())
            }
        };

        // Level 0: raw input.
        let in_ch = self.model.in_channels;
        let mut features = Vec::with_capacity(cloud.len() * in_ch);
        for p in cloud.iter() {
            let row = [p.x, p.y, p.z];
            features.extend_from_slice(&row[..in_ch.min(3)]);
            features.extend(std::iter::repeat_n(0.0, in_ch.saturating_sub(3)));
        }
        let mut level = Level {
            points: cloud.iter().collect(),
            features,
            channels: in_ch,
            origin: (0..cloud.len()).collect(),
        };

        if self.model.stem_width > 0 {
            let l = next_linear(level.channels, self.model.stem_width, true);
            level.features = l.forward(&level.features);
            level.channels = self.model.stem_width;
        }

        let mut skips: Vec<Level> = Vec::new();

        // ---- Abstraction ----
        for sa in &self.model.stages {
            let n_in = level.points.len();
            let n_out = ((n_in as f64) * sa.sample_ratio).round().max(1.0) as usize;

            // Sampling + grouping, global or block-wise.
            let (center_idx, neighbor_rows): (Vec<usize>, Vec<usize>) = match (&partition, mode) {
                (Some(part), ExecMode::Block { .. }) if level.origin.len() == cloud.len() => {
                    // First stage: the partition indexes the original cloud.
                    let lvl_cloud = level_cloud(&level);
                    let fps = block_fps(&lvl_cloud, part, sa.sample_ratio, &bppo)?;
                    let bq = block_ball_query(
                        &lvl_cloud,
                        part,
                        &fps.per_block,
                        sa.radius,
                        sa.nsample,
                        &bppo,
                    )?;
                    (bq.center_indices.clone(), bq.indices.clone())
                }
                _ => {
                    // Global search (and deeper block stages fall back to
                    // global over the already-reduced point set, matching
                    // the paper's tree reuse at coarser levels).
                    let lvl_cloud = level_cloud(&level);
                    let fps = farthest_point_sample(&lvl_cloud, n_out.min(n_in), 0)?;
                    let centers: Vec<Point3> =
                        fps.indices.iter().map(|&i| level.points[i]).collect();
                    let bq = ball_query(&lvl_cloud, &centers, sa.radius, sa.nsample)?;
                    (fps.indices.clone(), bq.indices.clone())
                }
            };

            // Gather: grouped tensor rows = centers × nsample of
            // (features ++ relative coords).
            let centers: Vec<Point3> = center_idx.iter().map(|&i| level.points[i]).collect();
            let cin = level.channels + 3;
            let mut grouped = Vec::with_capacity(centers.len() * sa.nsample * cin);
            for (c, &center) in centers.iter().enumerate() {
                for s in 0..sa.nsample {
                    let ni = neighbor_rows[c * sa.nsample + s];
                    let f = &level.features[ni * level.channels..(ni + 1) * level.channels];
                    grouped.extend_from_slice(f);
                    let rel = level.points[ni] - center;
                    grouped.extend_from_slice(&rel.to_array());
                }
            }

            // Grouped MLP chain + pool.
            let mut cur = grouped;
            let mut ch = cin;
            for &cout in &sa.mlp {
                let l = next_linear(ch, cout, true);
                cur = l.forward(&cur);
                ch = cout;
            }
            let mut pooled = max_pool(&cur, centers.len(), sa.nsample, ch);
            for _ in 0..sa.blocks {
                let up = next_linear(ch, ch * 4, true);
                let down = next_linear(ch * 4, ch, false);
                let expanded = down.forward(&up.forward(&pooled));
                for (p, e) in pooled.iter_mut().zip(&expanded) {
                    *p = (*p + e).max(0.0); // residual + relu
                }
            }

            let new_origin: Vec<usize> = center_idx.iter().map(|&i| level.origin[i]).collect();
            skips.push(std::mem::replace(
                &mut level,
                Level { points: centers, features: pooled, channels: ch, origin: new_origin },
            ));
        }

        // ---- Propagation ----
        if self.model.task.has_propagation() {
            for fp in &self.model.propagation {
                let target = skips.pop().expect("skip per FP stage");
                let src_cloud = PointCloud::from_points_features(
                    level.points.clone(),
                    level.features.clone(),
                    level.channels,
                )?;
                let k = fp.k.min(src_cloud.len());
                let interp = interpolate_features(&src_cloud, &target.points, k)?;
                let merged = concat_channels(
                    &interp.features,
                    level.channels,
                    &target.features,
                    target.channels,
                );
                let mut cur = merged;
                let mut ch = level.channels + target.channels;
                for &cout in &fp.mlp {
                    let l = next_linear(ch, cout, true);
                    cur = l.forward(&cur);
                    ch = cout;
                }
                level = Level {
                    points: target.points,
                    features: cur,
                    channels: ch,
                    origin: target.origin,
                };
            }
        }

        // ---- Head ----
        let (mut cur, mut ch, rows_index) = if self.model.task.has_propagation() {
            (level.features.clone(), level.channels, level.origin.clone())
        } else {
            // Global max over remaining points → one row.
            let pooled = max_pool(&level.features, 1, level.points.len(), level.channels);
            (pooled, level.channels, vec![0])
        };
        for &cout in &self.model.head {
            let l = next_linear(ch, cout, true);
            cur = l.forward(&cur);
            ch = cout;
        }
        let out = next_linear(ch, self.model.classes, false);
        let logits = out.forward(&cur);

        Ok(Inference { logits, classes: self.model.classes, row_index: rows_index })
    }
}

fn level_cloud(level: &Level) -> PointCloud {
    PointCloud::from_points(level.points.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_pointcloud::generate::{object_cloud, scene_cloud, ObjectKind, SceneConfig};

    #[test]
    fn classification_produces_one_logit_row() {
        let model = ModelConfig::pointnetpp_classification();
        let exec = ReferenceExecutor::new(model, 42);
        let cloud = object_cloud(ObjectKind::Chair, 512, 1);
        let out = exec.run(&cloud, ExecMode::Global).unwrap();
        assert_eq!(out.logits.len(), 40);
        assert!(out.logits.iter().all(|v| v.is_finite()));
        assert!(out.predicted_class(0) < 40);
    }

    #[test]
    fn segmentation_produces_per_point_logits() {
        let model = ModelConfig::pointnext_segmentation();
        let exec = ReferenceExecutor::new(model, 7);
        let cloud = scene_cloud(&SceneConfig::default(), 1024, 2);
        let out = exec.run(&cloud, ExecMode::Global).unwrap();
        assert_eq!(out.logits.len(), 1024 * 13);
        assert_eq!(out.row_index.len(), 1024);
        assert!(out.logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn block_mode_runs_and_matches_shapes() {
        let model = ModelConfig::pointnext_segmentation();
        let exec = ReferenceExecutor::new(model, 7);
        let cloud = scene_cloud(&SceneConfig::default(), 1024, 3);
        let out = exec.run(&cloud, ExecMode::Block { threshold: 128 }).unwrap();
        assert_eq!(out.logits.len(), 1024 * 13);
        // Every original point appears exactly once.
        let mut seen = out.row_index.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1024);
    }

    #[test]
    fn block_and_global_agree_on_most_predictions() {
        // The functional accuracy argument: identical weights, block vs
        // global search — predictions should agree for the large majority
        // of points (the paper reports <0.7 pp accuracy change after
        // retraining; without retraining we allow a wider margin).
        let model = ModelConfig::pointnetpp_segmentation();
        let exec = ReferenceExecutor::new(model, 11);
        let cloud = scene_cloud(&SceneConfig::default(), 768, 5);
        let g = exec.run(&cloud, ExecMode::Global).unwrap();
        let b = exec.run(&cloud, ExecMode::Block { threshold: 256 }).unwrap();
        // Align block rows to original indices.
        let mut g_pred = vec![0usize; 768];
        for (r, &oi) in g.row_index.iter().enumerate() {
            g_pred[oi] = g.predicted_class(r);
        }
        let mut agree = 0usize;
        for (r, &oi) in b.row_index.iter().enumerate() {
            if b.predicted_class(r) == g_pred[oi] {
                agree += 1;
            }
        }
        let frac = agree as f64 / 768.0;
        assert!(frac > 0.7, "agreement {frac} too low");
    }

    #[test]
    fn deterministic_given_seed() {
        let model = ModelConfig::pointnetpp_classification();
        let exec = ReferenceExecutor::new(model.clone(), 3);
        let cloud = object_cloud(ObjectKind::Sphere, 256, 9);
        let a = exec.run(&cloud, ExecMode::Global).unwrap();
        let b = ReferenceExecutor::new(model, 3).run(&cloud, ExecMode::Global).unwrap();
        assert_eq!(a.logits, b.logits);
    }

    #[test]
    fn different_seeds_differ() {
        let cloud = object_cloud(ObjectKind::Sphere, 256, 9);
        let a = ReferenceExecutor::new(ModelConfig::pointnetpp_classification(), 1)
            .run(&cloud, ExecMode::Global)
            .unwrap();
        let b = ReferenceExecutor::new(ModelConfig::pointnetpp_classification(), 2)
            .run(&cloud, ExecMode::Global)
            .unwrap();
        assert_ne!(a.logits, b.logits);
    }

    #[test]
    fn empty_cloud_errors() {
        let exec = ReferenceExecutor::new(ModelConfig::pointnetpp_classification(), 0);
        assert!(exec.run(&PointCloud::new(), ExecMode::Global).is_err());
    }
}

//! The PNN model zoo of Table I: PointNet++, PointNeXt, PointVector.
//!
//! Configurations follow the public reference implementations (Openpoints
//! for PointNeXt/PointVector, the original repo for PointNet++), expressed
//! with *sampling ratios* rather than absolute point counts so each network
//! scales from 1K to 289K inputs the way the paper's Fig. 4/13 sweeps do.

use serde::{Deserialize, Serialize};

/// The task a network instance performs (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Object classification (ModelNet40).
    Classification,
    /// Object part segmentation (ShapeNet).
    PartSegmentation,
    /// Scene semantic segmentation (S3DIS).
    Segmentation,
}

impl Task {
    /// The paper's notation suffix: (c), (ps), (s).
    pub fn suffix(&self) -> &'static str {
        match self {
            Task::Classification => "c",
            Task::PartSegmentation => "ps",
            Task::Segmentation => "s",
        }
    }

    /// True for tasks with propagation (feature-propagation) stages.
    pub fn has_propagation(&self) -> bool {
        !matches!(self, Task::Classification)
    }
}

/// One set-abstraction stage: sample → group → gather → MLP → pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetAbstraction {
    /// Fraction of incoming points kept by FPS (1/4 in all Table I nets).
    pub sample_ratio: f64,
    /// Ball-query radius, in normalized scene units.
    pub radius: f32,
    /// Neighbors gathered per center.
    pub nsample: usize,
    /// Pointwise-MLP channel widths applied to the grouped tensor.
    pub mlp: Vec<usize>,
    /// Residual MLP blocks appended after the reduction (PointNeXt
    /// InvResMLP / PointVector blocks; 0 for PointNet++).
    pub blocks: usize,
}

/// One feature-propagation stage: interpolate → concat skip → MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeaturePropagation {
    /// Neighbors used by inverse-distance interpolation (always 3).
    pub k: usize,
    /// MLP widths applied after the skip concatenation.
    pub mlp: Vec<usize>,
}

/// A full network architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Family name ("PointNet++", "PointNeXt", "PointVector").
    pub family: &'static str,
    /// The paper's short notation, e.g. "PNXt (s)".
    pub notation: String,
    /// The task.
    pub task: Task,
    /// Input feature channels fed to the stem (xyz + color/height…).
    pub in_channels: usize,
    /// Stem MLP width (0 = no stem, PointNet++).
    pub stem_width: usize,
    /// Abstraction stages, outermost first.
    pub stages: Vec<SetAbstraction>,
    /// Propagation stages (empty for classification), innermost first.
    pub propagation: Vec<FeaturePropagation>,
    /// Classifier / per-point head widths.
    pub head: Vec<usize>,
    /// Output classes.
    pub classes: usize,
}

impl ModelConfig {
    /// PointNet++ (SSG) for classification — PN++ (c).
    pub fn pointnetpp_classification() -> ModelConfig {
        ModelConfig {
            family: "PointNet++",
            notation: "PN++ (c)".into(),
            task: Task::Classification,
            in_channels: 3,
            stem_width: 0,
            stages: vec![
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.2,
                    nsample: 32,
                    mlp: vec![64, 64, 128],
                    blocks: 0,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.4,
                    nsample: 64,
                    mlp: vec![128, 128, 256],
                    blocks: 0,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.8,
                    nsample: 64,
                    mlp: vec![256, 512, 1024],
                    blocks: 0,
                },
            ],
            propagation: vec![],
            head: vec![512, 256],
            classes: 40,
        }
    }

    /// PointNet++ for part segmentation — PN++ (ps).
    pub fn pointnetpp_part_segmentation() -> ModelConfig {
        let mut m = ModelConfig::pointnetpp_segmentation();
        m.notation = "PN++ (ps)".into();
        m.task = Task::PartSegmentation;
        m.classes = 50;
        m
    }

    /// PointNet++ for semantic segmentation — PN++ (s).
    pub fn pointnetpp_segmentation() -> ModelConfig {
        ModelConfig {
            family: "PointNet++",
            notation: "PN++ (s)".into(),
            task: Task::Segmentation,
            in_channels: 6,
            stem_width: 0,
            stages: vec![
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.1,
                    nsample: 32,
                    mlp: vec![32, 32, 64],
                    blocks: 0,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.2,
                    nsample: 32,
                    mlp: vec![64, 64, 128],
                    blocks: 0,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.4,
                    nsample: 32,
                    mlp: vec![128, 128, 256],
                    blocks: 0,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.8,
                    nsample: 32,
                    mlp: vec![256, 256, 512],
                    blocks: 0,
                },
            ],
            propagation: vec![
                FeaturePropagation { k: 3, mlp: vec![256, 256] },
                FeaturePropagation { k: 3, mlp: vec![256, 256] },
                FeaturePropagation { k: 3, mlp: vec![256, 128] },
                FeaturePropagation { k: 3, mlp: vec![128, 128, 128] },
            ],
            head: vec![128],
            classes: 13,
        }
    }

    /// PointNeXt-S for classification — PNXt (c).
    pub fn pointnext_classification() -> ModelConfig {
        ModelConfig {
            family: "PointNeXt",
            notation: "PNXt (c)".into(),
            task: Task::Classification,
            in_channels: 3,
            stem_width: 32,
            stages: vec![
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.15,
                    nsample: 32,
                    mlp: vec![64],
                    blocks: 1,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.3,
                    nsample: 32,
                    mlp: vec![128],
                    blocks: 1,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.6,
                    nsample: 32,
                    mlp: vec![256],
                    blocks: 1,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 1.2,
                    nsample: 32,
                    mlp: vec![512],
                    blocks: 1,
                },
            ],
            propagation: vec![],
            head: vec![512, 256],
            classes: 40,
        }
    }

    /// PointNeXt-S for part segmentation — PNXt (ps).
    pub fn pointnext_part_segmentation() -> ModelConfig {
        let mut m = ModelConfig::pointnext_segmentation();
        m.notation = "PNXt (ps)".into();
        m.task = Task::PartSegmentation;
        m.classes = 50;
        m
    }

    /// PointNeXt-S for semantic segmentation — PNXt (s).
    pub fn pointnext_segmentation() -> ModelConfig {
        ModelConfig {
            family: "PointNeXt",
            notation: "PNXt (s)".into(),
            task: Task::Segmentation,
            in_channels: 7,
            stem_width: 32,
            stages: vec![
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.1,
                    nsample: 32,
                    mlp: vec![64],
                    blocks: 1,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.2,
                    nsample: 32,
                    mlp: vec![128],
                    blocks: 1,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.4,
                    nsample: 32,
                    mlp: vec![256],
                    blocks: 1,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.8,
                    nsample: 32,
                    mlp: vec![512],
                    blocks: 1,
                },
            ],
            propagation: vec![
                FeaturePropagation { k: 3, mlp: vec![256] },
                FeaturePropagation { k: 3, mlp: vec![128] },
                FeaturePropagation { k: 3, mlp: vec![64] },
                FeaturePropagation { k: 3, mlp: vec![32] },
            ],
            head: vec![32],
            classes: 13,
        }
    }

    /// PointVector-L for semantic segmentation — PVr (s).
    ///
    /// PointVector-L widens PointNeXt (base width 96 vs 32) and deepens the
    /// per-stage vector-representation blocks. We model its cost structure
    /// with equivalent widths/blocks calibrated so its tensor cost is ≈2×
    /// PointNeXt-S — the ratio the paper's Fig. 4 GPU latencies imply
    /// (documented substitution).
    pub fn pointvector_segmentation() -> ModelConfig {
        ModelConfig {
            family: "PointVector",
            notation: "PVr (s)".into(),
            task: Task::Segmentation,
            in_channels: 7,
            stem_width: 96,
            stages: vec![
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.1,
                    nsample: 32,
                    mlp: vec![128],
                    blocks: 1,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.2,
                    nsample: 32,
                    mlp: vec![256],
                    blocks: 2,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.4,
                    nsample: 32,
                    mlp: vec![512],
                    blocks: 2,
                },
                SetAbstraction {
                    sample_ratio: 0.25,
                    radius: 0.8,
                    nsample: 32,
                    mlp: vec![512],
                    blocks: 1,
                },
            ],
            propagation: vec![
                FeaturePropagation { k: 3, mlp: vec![256] },
                FeaturePropagation { k: 3, mlp: vec![128] },
                FeaturePropagation { k: 3, mlp: vec![96] },
                FeaturePropagation { k: 3, mlp: vec![96] },
            ],
            head: vec![96],
            classes: 13,
        }
    }

    /// All seven Table I workloads, in the figure order of Fig. 13.
    pub fn table1() -> Vec<ModelConfig> {
        vec![
            ModelConfig::pointnetpp_classification(),
            ModelConfig::pointnext_classification(),
            ModelConfig::pointnetpp_part_segmentation(),
            ModelConfig::pointnext_part_segmentation(),
            ModelConfig::pointnetpp_segmentation(),
            ModelConfig::pointnext_segmentation(),
            ModelConfig::pointvector_segmentation(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_workloads() {
        let t = ModelConfig::table1();
        assert_eq!(t.len(), 7);
        let notations: Vec<&str> = t.iter().map(|m| m.notation.as_str()).collect();
        assert_eq!(
            notations,
            vec![
                "PN++ (c)",
                "PNXt (c)",
                "PN++ (ps)",
                "PNXt (ps)",
                "PN++ (s)",
                "PNXt (s)",
                "PVr (s)"
            ]
        );
    }

    #[test]
    fn segmentation_models_have_symmetric_propagation() {
        for m in ModelConfig::table1() {
            if m.task.has_propagation() {
                assert_eq!(
                    m.stages.len(),
                    m.propagation.len(),
                    "{}: FP stages must mirror SA stages",
                    m.notation
                );
            } else {
                assert!(m.propagation.is_empty());
            }
        }
    }

    #[test]
    fn all_ratios_are_quarter() {
        for m in ModelConfig::table1() {
            for s in &m.stages {
                assert_eq!(s.sample_ratio, 0.25, "{}", m.notation);
            }
        }
    }

    #[test]
    fn radii_grow_with_depth() {
        for m in ModelConfig::table1() {
            for w in m.stages.windows(2) {
                assert!(w[1].radius > w[0].radius, "{}", m.notation);
            }
        }
    }

    #[test]
    fn pointvector_is_the_widest() {
        let pv = ModelConfig::pointvector_segmentation();
        let pn = ModelConfig::pointnext_segmentation();
        assert!(pv.stem_width > pn.stem_width);
        assert!(pv.stages[0].mlp[0] > pn.stages[0].mlp[0]);
    }

    #[test]
    fn task_suffixes() {
        assert_eq!(Task::Classification.suffix(), "c");
        assert_eq!(Task::PartSegmentation.suffix(), "ps");
        assert_eq!(Task::Segmentation.suffix(), "s");
    }
}

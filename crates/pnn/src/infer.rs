//! Network inference executor with selectable aggregation schedule:
//! **eager** (gather-then-MLP, the PointNet++ baseline) or **delayed**
//! (MLP-then-aggregate, Mesorasi's delayed aggregation).
//!
//! Both schedules run the same Mesorasi-restructured layer form — a grouped
//! input row is the neighbor's features concatenated with its *absolute*
//! coordinates, so the per-row MLP value depends only on the unique point,
//! never on which centroid grouped it. That makes the two schedules exactly
//! interchangeable:
//!
//! * **Eager** materializes the `centers × nsample × cin` grouped matrix
//!   (duplicating every shared neighbor), runs the MLP chain over all
//!   grouped rows, then max-pools each neighborhood.
//! * **Delayed** runs the MLP chain once per *unique* level point and then
//!   max-aggregates MLP outputs over each centroid's neighbor index list —
//!   no feature-matrix materialization, `centers × nsample − n` rows of MLP
//!   work saved.
//!
//! Both schedules pool through the same fused
//! [`kernels::segmented_max_into`] primitive (eager over identity index
//! lists, delayed over the real neighbor lists), so their logits are
//! **bit-identical** on every kernel backend — asserted by the tests below.
//!
//! Unlike [`ReferenceExecutor`](crate::ReferenceExecutor) (which allocates
//! freely and uses centroid-relative coordinates), this executor runs
//! entirely inside [`Workspace::infer`] scratch: a warmed workspace executes
//! a whole forward pass without heap allocation.

use crate::layers::Linear;
use crate::zoo::ModelConfig;
use fractalcloud_core::{InferScratch, LevelMeta, PipelineOutput, Workspace};
use fractalcloud_pointcloud::kernels;
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::{Error, PointCloud, Result};

/// Aggregation schedule of the set-abstraction stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Gather-then-MLP: materialize the grouped feature matrix, run the MLP
    /// over every duplicated row, then pool (the PointNet++ baseline).
    Eager,
    /// MLP-then-aggregate: run the MLP once per unique point, then
    /// max-aggregate over neighbor index lists (Mesorasi).
    Delayed,
}

impl Aggregation {
    /// Canonical lowercase name (`eager` / `delayed`).
    pub fn name(self) -> &'static str {
        match self {
            Aggregation::Eager => "eager",
            Aggregation::Delayed => "delayed",
        }
    }

    /// Parses a schedule name (case-insensitive); `None` when unknown.
    pub fn from_name(name: &str) -> Option<Aggregation> {
        match name.trim().to_ascii_lowercase().as_str() {
            "eager" => Some(Aggregation::Eager),
            "delayed" => Some(Aggregation::Delayed),
            _ => None,
        }
    }

    /// Resolves the schedule from `FRACTALCLOUD_AGGREGATION` (unset or
    /// unrecognized values fall back to [`Aggregation::Delayed`], the
    /// optimized path).
    pub fn from_env() -> Aggregation {
        match std::env::var("FRACTALCLOUD_AGGREGATION") {
            Ok(v) => Aggregation::from_name(&v).unwrap_or(Aggregation::Delayed),
            Err(_) => Aggregation::Delayed,
        }
    }
}

/// Configuration of a [`NetworkExecutor`].
#[derive(Debug, Clone)]
pub struct InferenceConfig {
    /// The network to execute.
    pub model: ModelConfig,
    /// Weight seed (same derivation chain as the reference executor).
    pub seed: u64,
    /// Aggregation schedule of the set-abstraction stages.
    pub aggregation: Aggregation,
}

impl InferenceConfig {
    /// Creates a config with the schedule taken from
    /// [`Aggregation::from_env`].
    pub fn new(model: ModelConfig, seed: u64) -> InferenceConfig {
        InferenceConfig { model, seed, aggregation: Aggregation::from_env() }
    }
}

/// Result of one inference, with the work accounting attached.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InferOutput {
    /// Row-major `rows × classes` logits (1 row for classification, one per
    /// point for segmentation).
    pub logits: Vec<f32>,
    /// Number of classes (row width).
    pub classes: usize,
    /// Original-cloud index of each logit row (a single `0` for
    /// classification).
    pub row_index: Vec<usize>,
    /// Work performed, including the Mesorasi MACs-moved / MACs-saved and
    /// grouped-matrix gather-bytes accounting.
    pub counters: OpCounters,
}

impl InferOutput {
    /// The argmax class of row `r`.
    pub fn predicted_class(&self, r: usize) -> usize {
        let row = &self.logits[r * self.classes..(r + 1) * self.classes];
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[derive(Debug, Clone)]
struct StageWeights {
    mlp: Vec<Linear>,
    blocks: Vec<(Linear, Linear)>,
}

/// Runnable network executor with pre-materialized weights and a
/// selectable aggregation schedule.
///
/// Weights follow the exact seed-derivation chain of
/// [`ReferenceExecutor`](crate::ReferenceExecutor), so a given
/// `(model, seed)` pair always denotes the same network.
#[derive(Debug, Clone)]
pub struct NetworkExecutor {
    config: InferenceConfig,
    stem: Option<Linear>,
    stages: Vec<StageWeights>,
    props: Vec<Vec<Linear>>,
    head: Vec<Linear>,
    out: Linear,
}

impl NetworkExecutor {
    /// Materializes all layer weights for `config`.
    pub fn new(config: InferenceConfig) -> NetworkExecutor {
        let mut layer_seed = config.seed;
        let mut next = |cin: usize, cout: usize, relu: bool| {
            layer_seed =
                layer_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Linear::seeded(cin, cout, layer_seed, relu)
        };

        let model = &config.model;
        let mut ch = model.in_channels;
        let stem = if model.stem_width > 0 {
            let l = next(ch, model.stem_width, true);
            ch = model.stem_width;
            Some(l)
        } else {
            None
        };

        let mut stages = Vec::with_capacity(model.stages.len());
        let mut skip_ch = Vec::with_capacity(model.stages.len());
        for sa in &model.stages {
            skip_ch.push(ch);
            let mut cin = ch + 3;
            let mut mlp = Vec::with_capacity(sa.mlp.len());
            for &cout in &sa.mlp {
                mlp.push(next(cin, cout, true));
                cin = cout;
            }
            ch = cin;
            let mut blocks = Vec::with_capacity(sa.blocks);
            for _ in 0..sa.blocks {
                let up = next(ch, ch * 4, true);
                let down = next(ch * 4, ch, false);
                blocks.push((up, down));
            }
            stages.push(StageWeights { mlp, blocks });
        }

        let mut props = Vec::new();
        if model.task.has_propagation() {
            for fp in &model.propagation {
                let t_ch = skip_ch.pop().expect("skip per FP stage");
                let mut cin = ch + t_ch;
                let mut mlp = Vec::with_capacity(fp.mlp.len());
                for &cout in &fp.mlp {
                    mlp.push(next(cin, cout, true));
                    cin = cout;
                }
                ch = cin;
                props.push(mlp);
            }
        }

        let mut head = Vec::with_capacity(model.head.len());
        for &cout in &model.head {
            head.push(next(ch, cout, true));
            ch = cout;
        }
        let out = next(ch, model.classes, false);

        NetworkExecutor { config, stem, stages, props, head, out }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &InferenceConfig {
        &self.config
    }

    /// Runs inference with global-search sampling and grouping at every
    /// stage (input features are the coordinates, zero-padded to the
    /// model's input channel count — same convention as the reference
    /// executor).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for an empty cloud.
    pub fn run(&self, cloud: &PointCloud, ws: &mut Workspace) -> Result<InferOutput> {
        let mut out = InferOutput::default();
        self.run_into(cloud, ws, &mut out)?;
        Ok(out)
    }

    /// [`NetworkExecutor::run`] writing into a caller-owned output (whose
    /// buffers are reused), so a warmed `(ws, out)` pair performs no heap
    /// allocation.
    ///
    /// # Errors
    ///
    /// As [`NetworkExecutor::run`].
    pub fn run_into(
        &self,
        cloud: &PointCloud,
        ws: &mut Workspace,
        out: &mut InferOutput,
    ) -> Result<()> {
        self.run_internal(cloud, None, ws, out)
    }

    /// Runs inference reusing an already-computed first-stage sampling +
    /// grouping — the serving seam: a `PipelineOutput` produced by
    /// [`Pipeline::run_with_partition`](fractalcloud_core::Pipeline) over
    /// the same cloud (with `sample_rate`, `radius` and `neighbors` taken
    /// from the model's first set-abstraction stage) feeds stage 1
    /// directly, sharing the serving layer's partition cache. Deeper
    /// stages search globally over the already-reduced set, matching the
    /// paper's tree reuse at coarser levels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for an empty cloud and
    /// [`Error::InvalidParameter`] when `stage1` does not match the model's
    /// first stage (wrong neighbor count, empty centers, out-of-range
    /// indices).
    pub fn run_with_stage1(
        &self,
        cloud: &PointCloud,
        stage1: &PipelineOutput,
        ws: &mut Workspace,
    ) -> Result<InferOutput> {
        let mut out = InferOutput::default();
        self.run_with_stage1_into(cloud, stage1, ws, &mut out)?;
        Ok(out)
    }

    /// [`NetworkExecutor::run_with_stage1`] writing into a caller-owned
    /// output.
    ///
    /// # Errors
    ///
    /// As [`NetworkExecutor::run_with_stage1`].
    pub fn run_with_stage1_into(
        &self,
        cloud: &PointCloud,
        stage1: &PipelineOutput,
        ws: &mut Workspace,
        out: &mut InferOutput,
    ) -> Result<()> {
        self.validate_stage1(cloud, stage1)?;
        self.run_internal(cloud, Some(stage1), ws, out)
    }

    fn validate_stage1(&self, cloud: &PointCloud, po: &PipelineOutput) -> Result<()> {
        let sa = self.config.model.stages.first().ok_or(Error::InvalidParameter {
            name: "stage1",
            message: "model has no set-abstraction stage to feed".into(),
        })?;
        if po.grouped.num != sa.nsample {
            return Err(Error::InvalidParameter {
                name: "stage1",
                message: format!(
                    "pipeline grouped {} neighbors per center but the model's first stage \
                     expects {}",
                    po.grouped.num, sa.nsample
                ),
            });
        }
        let c_cnt = po.grouped.center_indices.len();
        if c_cnt == 0 {
            return Err(Error::InvalidParameter {
                name: "stage1",
                message: "pipeline output has no centers".into(),
            });
        }
        if po.grouped.indices.len() != c_cnt * sa.nsample {
            return Err(Error::InvalidParameter {
                name: "stage1",
                message: format!(
                    "pipeline neighbor list holds {} indices, expected {} centers × {}",
                    po.grouped.indices.len(),
                    c_cnt,
                    sa.nsample
                ),
            });
        }
        let n = cloud.len();
        if po.grouped.center_indices.iter().chain(po.grouped.indices.iter()).any(|&i| i >= n) {
            return Err(Error::InvalidParameter {
                name: "stage1",
                message: "pipeline output indexes beyond the cloud".into(),
            });
        }
        Ok(())
    }

    fn run_internal(
        &self,
        cloud: &PointCloud,
        stage1: Option<&PipelineOutput>,
        ws: &mut Workspace,
        out: &mut InferOutput,
    ) -> Result<()> {
        if cloud.is_empty() {
            return Err(Error::EmptyCloud);
        }
        let mut counters = OpCounters::new();
        let model = &self.config.model;
        let backend = kernels::active_backend();

        let InferScratch {
            lvl_xs,
            lvl_ys,
            lvl_zs,
            lvl_feat,
            lvl_origin,
            lvl_meta,
            rows,
            feat_a,
            feat_b,
            pooled,
            centers,
            neighbors,
            counts,
            queries,
            dist,
            select,
        } = &mut ws.infer;

        // ---- Level 0: raw input (optionally through the stem) ----
        lvl_xs.clear();
        lvl_ys.clear();
        lvl_zs.clear();
        lvl_feat.clear();
        lvl_origin.clear();
        lvl_meta.clear();

        let n = cloud.len();
        lvl_xs.extend_from_slice(cloud.xs());
        lvl_ys.extend_from_slice(cloud.ys());
        lvl_zs.extend_from_slice(cloud.zs());
        lvl_origin.extend(0..n);

        let in_ch = model.in_channels;
        rows.clear();
        for i in 0..n {
            let xyz = [cloud.xs()[i], cloud.ys()[i], cloud.zs()[i]];
            rows.extend_from_slice(&xyz[..in_ch.min(3)]);
            rows.extend(std::iter::repeat_n(0.0, in_ch.saturating_sub(3)));
        }
        let mut ch0 = in_ch;
        if let Some(stem) = &self.stem {
            stem.forward_into(rows, feat_a);
            std::mem::swap(rows, feat_a);
            ch0 = stem.cout;
        }
        lvl_feat.extend_from_slice(rows);
        lvl_meta.push(LevelMeta { coord_off: 0, len: n, feat_off: 0, channels: ch0 });

        // ---- Set abstraction ----
        for (s, (sa, sw)) in model.stages.iter().zip(&self.stages).enumerate() {
            let m = *lvl_meta.last().expect("level 0 exists");
            let c_cnt;
            let ch_out;
            {
                let xs = &lvl_xs[m.coord_off..m.coord_off + m.len];
                let ys = &lvl_ys[m.coord_off..m.coord_off + m.len];
                let zs = &lvl_zs[m.coord_off..m.coord_off + m.len];
                let feats = &lvl_feat[m.feat_off..m.feat_off + m.len * m.channels];
                let origin = &lvl_origin[m.coord_off..m.coord_off + m.len];
                let ch = m.channels;
                let n_in = m.len;

                // Sampling + grouping: pipeline-fed for the first stage in
                // serving mode, global search otherwise.
                match (s, stage1) {
                    (0, Some(po)) => {
                        centers.clear();
                        centers.extend_from_slice(&po.grouped.center_indices);
                        neighbors.clear();
                        neighbors.extend_from_slice(&po.grouped.indices);
                    }
                    _ => {
                        let n_out = ((n_in as f64) * sa.sample_ratio).round().max(1.0) as usize;
                        let m_samp = n_out.min(n_in);

                        dist.clear();
                        dist.resize(n_in, f32::INFINITY);
                        centers.clear();
                        let mut current = 0usize;
                        centers.push(current);
                        for _ in 1..m_samp {
                            let q = [xs[current], ys[current], zs[current]];
                            current = kernels::fps_relax_argmax_with(backend, xs, ys, zs, q, dist);
                            centers.push(current);
                        }
                        counters.writes += m_samp as u64;
                        let scans = (m_samp - 1) as u64;
                        counters.coord_reads += scans * n_in as u64;
                        counters.distance_evals += scans * n_in as u64;
                        counters.comparisons += 2 * scans * n_in as u64;

                        queries.clear();
                        queries.extend(centers.iter().map(|&i| [xs[i], ys[i], zs[i]]));
                        let r_sq = sa.radius * sa.radius;
                        let nsample = sa.nsample;
                        neighbors.clear();
                        kernels::ball_select_batch_into(
                            backend,
                            xs,
                            ys,
                            zs,
                            queries,
                            r_sq,
                            nsample,
                            select,
                            |_, best, nearest| {
                                let start = neighbors.len();
                                neighbors.extend(best.iter().map(|&(_, i)| i));
                                if neighbors.len() == start {
                                    // Empty ball: fall back to the globally
                                    // nearest candidate.
                                    neighbors.push(nearest.1);
                                }
                                let first = neighbors[start];
                                while neighbors.len() < start + nsample {
                                    neighbors.push(first);
                                }
                            },
                        );
                        let scans = centers.len() as u64 * n_in as u64;
                        counters.coord_reads += scans;
                        counters.distance_evals += scans;
                        counters.comparisons += scans;
                        counters.writes += (centers.len() * nsample) as u64;
                    }
                }
                c_cnt = centers.len();
                counts.clear();
                counts.resize(c_cnt, sa.nsample);

                // Grouped-row MLP + segmented max-pool, eager or delayed.
                let cin = ch + 3;
                match self.config.aggregation {
                    Aggregation::Eager => {
                        // Materialize the duplicated grouped matrix.
                        rows.clear();
                        rows.reserve(c_cnt * sa.nsample * cin);
                        for c in 0..c_cnt {
                            for j in 0..sa.nsample {
                                let ni = neighbors[c * sa.nsample + j];
                                rows.extend_from_slice(&feats[ni * ch..(ni + 1) * ch]);
                                rows.push(xs[ni]);
                                rows.push(ys[ni]);
                                rows.push(zs[ni]);
                            }
                        }
                        counters.gather_bytes += (rows.len() * std::mem::size_of::<f32>()) as u64;
                        counters.feature_reads += (c_cnt * sa.nsample) as u64;
                        let span =
                            fractalcloud_obs::span(fractalcloud_obs::SpanKind::StageMlp, s as u32);
                        mlp_chain(&sw.mlp, rows, feat_a);
                        span.done();
                        ch_out = sw.mlp.last().map(|l| l.cout).unwrap_or(cin);
                        // Pool the grouped rows through the same segmented
                        // kernel the delayed schedule uses, over identity
                        // index lists — shared reduction code keeps the two
                        // schedules bit-identical.
                        neighbors.clear();
                        neighbors.extend(0..c_cnt * sa.nsample);
                    }
                    Aggregation::Delayed => {
                        // One MLP row per *unique* level point.
                        rows.clear();
                        rows.reserve(n_in * cin);
                        for i in 0..n_in {
                            rows.extend_from_slice(&feats[i * ch..(i + 1) * ch]);
                            rows.push(xs[i]);
                            rows.push(ys[i]);
                            rows.push(zs[i]);
                        }
                        counters.feature_reads += n_in as u64;
                        let per_row = macs_per_row(&sw.mlp);
                        let moved = per_row * n_in as u64;
                        counters.macs_moved += moved;
                        counters.macs_saved +=
                            (per_row * (c_cnt * sa.nsample) as u64).saturating_sub(moved);
                        let span =
                            fractalcloud_obs::span(fractalcloud_obs::SpanKind::StageMlp, s as u32);
                        mlp_chain(&sw.mlp, rows, feat_a);
                        span.done();
                        ch_out = sw.mlp.last().map(|l| l.cout).unwrap_or(cin);
                    }
                }
                pooled.clear();
                pooled.resize(c_cnt * ch_out, 0.0);
                let agg_span =
                    fractalcloud_obs::span(fractalcloud_obs::SpanKind::Aggregate, s as u32);
                kernels::segmented_max_into_with(
                    backend, rows, ch_out, neighbors, counts, sa.nsample, pooled,
                );
                agg_span.done();
                counters.feature_reads += (c_cnt * sa.nsample) as u64;
                counters.writes += c_cnt as u64;

                // Residual blocks on the pooled features (identical in both
                // schedules — they operate post-aggregation).
                for (up, down) in &sw.blocks {
                    up.forward_into(pooled, feat_a);
                    down.forward_into(feat_a, feat_b);
                    for (p, e) in pooled.iter_mut().zip(feat_b.iter()) {
                        *p = (*p + e).max(0.0);
                    }
                }

                // Stage the new level while the current one is still
                // borrowed: coordinates into `queries`, origins in place.
                queries.clear();
                for &ci in centers.iter().take(c_cnt) {
                    queries.push([xs[ci], ys[ci], zs[ci]]);
                }
                for c in centers.iter_mut() {
                    *c = origin[*c];
                }
            }

            // Append the new level to the pyramid.
            let coord_off = lvl_xs.len();
            let feat_off = lvl_feat.len();
            for q in queries.iter() {
                lvl_xs.push(q[0]);
                lvl_ys.push(q[1]);
                lvl_zs.push(q[2]);
            }
            lvl_origin.extend_from_slice(centers);
            lvl_feat.extend_from_slice(pooled);
            lvl_meta.push(LevelMeta { coord_off, len: c_cnt, feat_off, channels: ch_out });
        }

        // ---- Feature propagation ----
        // `pooled` holds the current features throughout (it ends the
        // abstraction loop as the deepest level's features).
        let s_cnt = model.stages.len();
        let has_prop = model.task.has_propagation();
        let mut cur_ch = lvl_meta.last().expect("level 0 exists").channels;
        if has_prop {
            const EPS: f32 = 1e-10;
            for (i, (fp, pw)) in model.propagation.iter().zip(&self.props).enumerate() {
                let src = lvl_meta[s_cnt - i];
                let tgt = lvl_meta[s_cnt - 1 - i];
                let sxs = &lvl_xs[src.coord_off..src.coord_off + src.len];
                let sys = &lvl_ys[src.coord_off..src.coord_off + src.len];
                let szs = &lvl_zs[src.coord_off..src.coord_off + src.len];
                let t_ch = tgt.channels;
                let merged = cur_ch + t_ch;
                let k = fp.k.min(src.len).max(1);

                queries.clear();
                for t in tgt.coord_off..tgt.coord_off + tgt.len {
                    queries.push([lvl_xs[t], lvl_ys[t], lvl_zs[t]]);
                }

                // Merged rows: inverse-distance-weighted interpolation of
                // the source features, then the skip level's own features.
                rows.clear();
                rows.resize(tgt.len * merged, 0.0);
                {
                    let src_feat: &Vec<f32> = pooled;
                    let src_ch = cur_ch;
                    kernels::knn_select_batch_into(
                        backend,
                        sxs,
                        sys,
                        szs,
                        queries,
                        k,
                        select,
                        |t, best| {
                            let orow = &mut rows[t * merged..t * merged + src_ch];
                            if best[0].0 <= EPS {
                                let i = best[0].1;
                                orow.copy_from_slice(&src_feat[i * src_ch..(i + 1) * src_ch]);
                            } else {
                                let wsum: f32 = best.iter().map(|&(d, _)| 1.0 / (d + EPS)).sum();
                                for &(d, i) in best {
                                    let wn = (1.0 / (d + EPS)) / wsum;
                                    let frow = &src_feat[i * src_ch..(i + 1) * src_ch];
                                    for (o, &fv) in orow.iter_mut().zip(frow) {
                                        *o += wn * fv;
                                    }
                                }
                            }
                        },
                        |_| {},
                    );
                }
                let tfeats = &lvl_feat[tgt.feat_off..tgt.feat_off + tgt.len * t_ch];
                for t in 0..tgt.len {
                    rows[t * merged + cur_ch..(t + 1) * merged]
                        .copy_from_slice(&tfeats[t * t_ch..(t + 1) * t_ch]);
                }
                let scans = tgt.len as u64 * src.len as u64;
                counters.coord_reads += scans;
                counters.distance_evals += scans;
                counters.feature_reads += (k * tgt.len) as u64;
                counters.writes += tgt.len as u64;

                mlp_chain(pw, rows, feat_a);
                cur_ch = pw.last().map(|l| l.cout).unwrap_or(merged);
                std::mem::swap(pooled, rows);
            }
        }

        // ---- Head ----
        if !has_prop {
            // Global max over the remaining points → one row; the strict-`>`
            // select idiom matches the segmented kernel exactly.
            let last = *lvl_meta.last().expect("level 0 exists");
            rows.clear();
            rows.resize(cur_ch, f32::NEG_INFINITY);
            for r in 0..last.len {
                let frow = &pooled[r * cur_ch..(r + 1) * cur_ch];
                for (o, &v) in rows.iter_mut().zip(frow) {
                    *o = if v > *o { v } else { *o };
                }
            }
            std::mem::swap(pooled, rows);
        }
        mlp_chain(&self.head, pooled, feat_a);
        self.out.forward_into(pooled, feat_b);

        out.logits.clear();
        out.logits.extend_from_slice(feat_b);
        out.classes = model.classes;
        out.row_index.clear();
        if has_prop {
            let cur = lvl_meta[s_cnt - model.propagation.len().min(s_cnt)];
            out.row_index.extend_from_slice(&lvl_origin[cur.coord_off..cur.coord_off + cur.len]);
        } else {
            out.row_index.push(0);
        }
        counters.writes += out.row_index.len() as u64;
        out.counters = counters;
        Ok(())
    }
}

/// Runs `cur` through the layer chain, ping-ponging through `tmp`; the
/// result always lands back in `cur`.
fn mlp_chain(layers: &[Linear], cur: &mut Vec<f32>, tmp: &mut Vec<f32>) {
    for l in layers {
        l.forward_into(cur, tmp);
        std::mem::swap(cur, tmp);
    }
}

/// Multiply-accumulates one row performs across the whole chain.
fn macs_per_row(layers: &[Linear]) -> u64 {
    layers.iter().map(|l| (l.cin * l.cout) as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_core::{Pipeline, PipelineConfig};
    use fractalcloud_pointcloud::generate::{object_cloud, scene_cloud, ObjectKind, SceneConfig};
    use fractalcloud_pointcloud::kernels::{with_backend, Backend};

    fn exec(model: ModelConfig, agg: Aggregation) -> NetworkExecutor {
        NetworkExecutor::new(InferenceConfig { model, seed: 42, aggregation: agg })
    }

    fn run_agg(model: ModelConfig, agg: Aggregation, cloud: &PointCloud) -> InferOutput {
        let mut ws = Workspace::default();
        exec(model, agg).run(cloud, &mut ws).unwrap()
    }

    #[test]
    fn eager_and_delayed_are_bit_identical_classification() {
        let cloud = object_cloud(ObjectKind::Chair, 512, 1);
        let e = run_agg(ModelConfig::pointnetpp_classification(), Aggregation::Eager, &cloud);
        let d = run_agg(ModelConfig::pointnetpp_classification(), Aggregation::Delayed, &cloud);
        assert_eq!(e.logits, d.logits);
        assert_eq!(e.row_index, d.row_index);
        assert_eq!(e.classes, 40);
        assert!(e.logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn eager_and_delayed_are_bit_identical_segmentation() {
        let cloud = scene_cloud(&SceneConfig::default(), 768, 2);
        for model in [ModelConfig::pointnext_segmentation(), ModelConfig::pointnetpp_segmentation()]
        {
            let e = run_agg(model.clone(), Aggregation::Eager, &cloud);
            let d = run_agg(model, Aggregation::Delayed, &cloud);
            assert_eq!(e.logits, d.logits);
            assert_eq!(e.row_index, d.row_index);
            assert_eq!(e.row_index.len(), 768);
        }
    }

    #[test]
    fn outputs_are_bit_identical_across_backends() {
        let cloud = scene_cloud(&SceneConfig::default(), 512, 3);
        let model = ModelConfig::pointnetpp_segmentation;
        let base = with_backend(Backend::Scalar, || run_agg(model(), Aggregation::Delayed, &cloud));
        for b in [Backend::Soa, Backend::Avx2] {
            for agg in [Aggregation::Eager, Aggregation::Delayed] {
                let got = with_backend(b, || run_agg(model(), agg, &cloud));
                assert_eq!(base.logits, got.logits, "backend {b:?} aggregation {agg:?}");
                assert_eq!(base.row_index, got.row_index);
            }
        }
    }

    #[test]
    fn warm_rerun_is_identical() {
        let cloud = object_cloud(ObjectKind::Sphere, 300, 5);
        let ex = exec(ModelConfig::pointnetpp_classification(), Aggregation::Delayed);
        let mut ws = Workspace::default();
        let mut a = InferOutput::default();
        let mut b = InferOutput::default();
        ex.run_into(&cloud, &mut ws, &mut a).unwrap();
        ex.run_into(&cloud, &mut ws, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn delayed_reports_moved_and_saved_macs() {
        let cloud = object_cloud(ObjectKind::Cylinder, 512, 7);
        let d = run_agg(ModelConfig::pointnetpp_classification(), Aggregation::Delayed, &cloud);
        assert!(d.counters.macs_moved > 0);
        assert!(d.counters.macs_saved > 0);
        assert_eq!(d.counters.gather_bytes, 0);
    }

    #[test]
    fn eager_reports_gather_traffic_not_saved_macs() {
        let cloud = object_cloud(ObjectKind::Cylinder, 512, 7);
        let e = run_agg(ModelConfig::pointnetpp_classification(), Aggregation::Eager, &cloud);
        assert!(e.counters.gather_bytes > 0);
        assert_eq!(e.counters.macs_moved, 0);
        assert_eq!(e.counters.macs_saved, 0);
    }

    #[test]
    fn stage1_pipeline_path_is_bit_identical_between_schedules() {
        let cloud = scene_cloud(&SceneConfig::default(), 1024, 9);
        let model = ModelConfig::pointnetpp_segmentation();
        let sa = &model.stages[0];
        let cfg = PipelineConfig::new(128, sa.sample_ratio, sa.radius, sa.nsample);
        let pipe = Pipeline::new(cfg).unwrap();
        let built = pipe.partition(&cloud, false).unwrap();
        let po = pipe.run_with_partition(&cloud, &built, false).unwrap();

        let mut ws = Workspace::default();
        let e =
            exec(model.clone(), Aggregation::Eager).run_with_stage1(&cloud, &po, &mut ws).unwrap();
        let d = exec(model, Aggregation::Delayed).run_with_stage1(&cloud, &po, &mut ws).unwrap();
        assert_eq!(e.logits, d.logits);
        assert_eq!(e.row_index, d.row_index);
        assert!(d.counters.macs_saved > 0);
        // Per-point rows cover the whole cloud exactly once.
        let mut seen = d.row_index.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1024);
    }

    #[test]
    fn stage1_neighbor_count_mismatch_errors() {
        let cloud = scene_cloud(&SceneConfig::default(), 256, 4);
        let model = ModelConfig::pointnetpp_segmentation();
        let sa = &model.stages[0];
        let cfg = PipelineConfig::new(128, sa.sample_ratio, sa.radius, sa.nsample + 1);
        let po = Pipeline::new(cfg).unwrap().run(&cloud, false).unwrap();
        let mut ws = Workspace::default();
        let err = exec(model, Aggregation::Delayed).run_with_stage1(&cloud, &po, &mut ws);
        assert!(err.is_err());
    }

    #[test]
    fn empty_cloud_errors() {
        let ex = exec(ModelConfig::pointnetpp_classification(), Aggregation::Delayed);
        let mut ws = Workspace::default();
        assert!(ex.run(&PointCloud::new(), &mut ws).is_err());
    }

    #[test]
    fn aggregation_names_round_trip() {
        assert_eq!(Aggregation::from_name("eager"), Some(Aggregation::Eager));
        assert_eq!(Aggregation::from_name(" Delayed "), Some(Aggregation::Delayed));
        assert_eq!(Aggregation::from_name("bogus"), None);
        for a in [Aggregation::Eager, Aggregation::Delayed] {
            assert_eq!(Aggregation::from_name(a.name()), Some(a));
        }
    }
}

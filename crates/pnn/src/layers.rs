//! Minimal real-arithmetic neural layers for the CPU reference executor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense layer `y = relu(W·x + b)` with deterministic seeded weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Input width.
    pub cin: usize,
    /// Output width.
    pub cout: usize,
    weights: Vec<f32>, // cout × cin, row-major
    bias: Vec<f32>,
    relu: bool,
}

impl Linear {
    /// Creates a layer with Kaiming-ish uniform weights from `seed`.
    pub fn seeded(cin: usize, cout: usize, seed: u64, relu: bool) -> Linear {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11ea5);
        let bound = (6.0 / (cin as f32)).sqrt();
        let weights = (0..cin * cout).map(|_| rng.gen_range(-bound..bound)).collect();
        let bias = (0..cout).map(|_| rng.gen_range(-0.01..0.01)).collect();
        Linear { cin, cout, weights, bias, relu }
    }

    /// Applies the layer to a row-major `rows × cin` matrix, producing
    /// `rows × cout`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` is not a multiple of `cin`.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_into(input, &mut out);
        out
    }

    /// [`Linear::forward`] writing into a caller-owned buffer (cleared and
    /// resized to `rows × cout`), so a warmed buffer performs no heap
    /// allocation. Results are bit-identical to [`Linear::forward`] — the
    /// allocating form calls this one.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` is not a multiple of `cin`.
    pub fn forward_into(&self, input: &[f32], out: &mut Vec<f32>) {
        assert_eq!(input.len() % self.cin, 0, "input width mismatch");
        let rows = input.len() / self.cin;
        out.clear();
        out.resize(rows * self.cout, 0.0);
        for r in 0..rows {
            let x = &input[r * self.cin..(r + 1) * self.cin];
            let y = &mut out[r * self.cout..(r + 1) * self.cout];
            for (o, yo) in y.iter_mut().enumerate() {
                let w = &self.weights[o * self.cin..(o + 1) * self.cin];
                let mut acc = self.bias[o];
                for (wi, xi) in w.iter().zip(x) {
                    acc += wi * xi;
                }
                *yo = if self.relu { acc.max(0.0) } else { acc };
            }
        }
    }

    /// Multiply-accumulates performed by a forward pass over `rows` rows.
    pub fn macs(&self, rows: usize) -> u64 {
        (rows * self.cin * self.cout) as u64
    }
}

/// Max-pools a row-major `(groups × size) × channels` tensor over the
/// `size` axis, producing `groups × channels`.
///
/// # Panics
///
/// Panics if the buffer does not match `groups × size × channels`.
pub fn max_pool(input: &[f32], groups: usize, size: usize, channels: usize) -> Vec<f32> {
    assert_eq!(input.len(), groups * size * channels, "pool shape mismatch");
    let mut out = vec![f32::NEG_INFINITY; groups * channels];
    for g in 0..groups {
        for s in 0..size {
            let row = &input[(g * size + s) * channels..(g * size + s + 1) * channels];
            let o = &mut out[g * channels..(g + 1) * channels];
            for (ov, rv) in o.iter_mut().zip(row) {
                *ov = ov.max(*rv);
            }
        }
    }
    out
}

/// Concatenates two row-major matrices with equal row counts along the
/// channel axis.
///
/// # Panics
///
/// Panics if row counts disagree.
pub fn concat_channels(a: &[f32], ca: usize, b: &[f32], cb: usize) -> Vec<f32> {
    let rows = a.len().checked_div(ca).unwrap_or(b.len() / cb.max(1));
    assert_eq!(rows * ca, a.len(), "lhs shape mismatch");
    assert_eq!(rows * cb, b.len(), "rhs shape mismatch");
    let mut out = Vec::with_capacity(rows * (ca + cb));
    for r in 0..rows {
        out.extend_from_slice(&a[r * ca..(r + 1) * ca]);
        out.extend_from_slice(&b[r * cb..(r + 1) * cb]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_determinism() {
        let l = Linear::seeded(4, 8, 1, true);
        let out = l.forward(&[0.5; 12]);
        assert_eq!(out.len(), 3 * 8);
        let l2 = Linear::seeded(4, 8, 1, true);
        assert_eq!(l.forward(&[0.5; 12]), l2.forward(&[0.5; 12]));
    }

    #[test]
    fn relu_clamps_negatives() {
        let l = Linear::seeded(2, 4, 3, true);
        let out = l.forward(&[-10.0, -10.0]);
        assert!(out.iter().all(|&v| v >= 0.0));
        let l = Linear::seeded(2, 4, 3, false);
        let out = l.forward(&[-10.0, -10.0]);
        assert!(out.iter().any(|&v| v < 0.0));
    }

    #[test]
    fn max_pool_picks_maxima() {
        // 1 group, 3 elements, 2 channels.
        let input = [1.0, 5.0, 3.0, 2.0, -1.0, 9.0];
        assert_eq!(max_pool(&input, 1, 3, 2), vec![3.0, 9.0]);
    }

    #[test]
    fn concat_interleaves_rows() {
        let a = [1.0, 2.0, 3.0, 4.0]; // 2×2
        let b = [9.0, 8.0]; // 2×1
        assert_eq!(concat_channels(&a, 2, &b, 1), vec![1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn linear_checks_width() {
        let l = Linear::seeded(3, 2, 0, true);
        let _ = l.forward(&[1.0; 4]);
    }
}

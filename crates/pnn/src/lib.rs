//! Point-based neural network (PNN) model zoo, operation traces, and a CPU
//! reference executor.
//!
//! This crate provides the workload side of the FractalCloud evaluation:
//!
//! * [`ModelConfig`] — the Table I networks (PointNet++, PointNeXt,
//!   PointVector) across classification / part-segmentation / segmentation;
//! * [`OpTrace`] — shape-level operation traces that accelerator models
//!   cost (sampling, grouping, gather, MLP, pooling, interpolation);
//! * [`ReferenceExecutor`] — real-arithmetic end-to-end inference in global
//!   or block-parallel mode, the functional-correctness anchor;
//! * [`NetworkExecutor`] — the serving executor: workspace-backed,
//!   allocation-free when warm, with selectable eager vs Mesorasi delayed
//!   [`Aggregation`] (bit-identical outputs, `FRACTALCLOUD_AGGREGATION`
//!   selects the schedule).
//!
//! # Example
//!
//! ```
//! use fractalcloud_pnn::{ModelConfig, OpTrace};
//!
//! let model = ModelConfig::pointnext_segmentation();
//! let trace = OpTrace::build(&model, 16384);
//! assert!(trace.global_distance_evals() > trace.total_macs() / 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod infer;
pub mod layers;
mod reference;
mod trace;
mod zoo;

pub use infer::{Aggregation, InferOutput, InferenceConfig, NetworkExecutor};
pub use reference::{ExecMode, Inference, ReferenceExecutor};
pub use trace::{MlpKind, OpTrace, PnnOp};
pub use zoo::{FeaturePropagation, ModelConfig, SetAbstraction, Task};

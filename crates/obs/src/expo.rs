//! Prometheus-style text exposition: a line builder for the `METRICS`
//! endpoint and a strict parser for format tests.
//!
//! The grammar emitted (and accepted) is the metric-sample subset of the
//! Prometheus text format:
//!
//! ```text
//! line  := name ( "{" label ("," label)* "}" )? " " value
//! label := name "=" "\"" <no quotes or backslashes> "\""
//! name  := [a-zA-Z_][a-zA-Z0-9_]*
//! value := f64 (integral values print without a decimal point)
//! ```

use std::fmt::Write;

/// Append one exposition line. Label values must not contain `"` or `\`
/// (every caller in this workspace uses fixed snake_case vocabulary).
pub fn line(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

/// One parsed exposition line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedLine {
    /// Metric name.
    pub name: String,
    /// Label key/value pairs, in emission order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse one line of the grammar above. Returns `None` for anything
/// malformed — format tests assert every emitted line parses.
pub fn parse_line(line: &str) -> Option<ParsedLine> {
    let line = line.trim_end_matches(['\n', '\r']);
    let (head, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match head.split_once('{') {
        Some((name, rest)) => {
            let rest = rest.strip_suffix('}')?;
            let mut labels = Vec::new();
            for pair in rest.split(',') {
                let (k, v) = pair.split_once('=')?;
                if !is_name(k) {
                    return None;
                }
                let v = v.strip_prefix('"')?.strip_suffix('"')?;
                if v.contains(['"', '\\']) {
                    return None;
                }
                labels.push((k.to_string(), v.to_string()));
            }
            (name, labels)
        }
        None => (head, Vec::new()),
    };
    if !is_name(name) {
        return None;
    }
    Some(ParsedLine { name: name.to_string(), labels, value })
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_labeled_and_bare_lines() {
        let mut out = String::new();
        line(&mut out, "fractalcloud_uptime_ms", &[], 1234.0);
        line(&mut out, "fractalcloud_latency_us", &[("stat", "p99"), ("class", "bulk")], 8192.0);
        let parsed: Vec<_> = out.lines().map(|l| parse_line(l).unwrap()).collect();
        assert_eq!(parsed[0].name, "fractalcloud_uptime_ms");
        assert!(parsed[0].labels.is_empty());
        assert_eq!(parsed[0].value, 1234.0);
        assert_eq!(
            parsed[1].labels,
            vec![
                ("stat".to_string(), "p99".to_string()),
                ("class".to_string(), "bulk".to_string())
            ]
        );
        // Integral f64s print without a decimal point.
        assert!(out.contains(" 8192\n"));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "name_only",
            "1leading_digit 3",
            "unterminated{a=\"b\" 1",
            "noquotes{a=b} 1",
            "bad value",
            "name{} 1",
            "name{a=\"b\"} notanumber",
        ] {
            assert!(parse_line(bad).is_none(), "should reject: {bad:?}");
        }
        assert!(parse_line("ok_metric 0.5").is_some());
    }
}

//! # fractalcloud-obs: flight-recorder tracing for the serving stack
//!
//! A crash-box style **flight recorder**: every thread that records spans
//! owns a lock-free ring buffer of fixed-size span events. Recording on the
//! hot path is a handful of relaxed atomic stores into pre-allocated slots —
//! no allocation, no locks, no syscalls. When tracing is disabled (the
//! default) every instrumentation point reduces to a single relaxed load and
//! branch, so the serving hot path stays allocation-free and within noise of
//! an uninstrumented build.
//!
//! * `FRACTALCLOUD_TRACE=off|on[:capacity]` — lazily parsed on first probe;
//!   [`enable`] / [`disable`] flip the recorder programmatically.
//! * Spans carry a **request id** and **priority class**, so a fused batch
//!   fanned out across worker lanes reassembles into one per-request
//!   timeline ([`spans_for`]).
//! * [`drain`] empties every ring (accounting events lost to wraparound) and
//!   [`chrome::trace_json`] renders the result as Chrome trace-event JSON
//!   for `chrome://tracing` / Perfetto.
//! * [`expo`] holds the Prometheus-style text exposition line builder and a
//!   parser used by format tests.
//!
//! Concurrent drains are serialized on the ring registry lock; a drain that
//! races a still-recording thread may observe a torn slot for an event being
//! overwritten at that instant — acceptable for a diagnostics recorder, and
//! impossible once the workload is quiescent (how the tests and the
//! `TRACE_DUMP` endpoint use it).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod expo;

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Ring capacity (events per thread) when `FRACTALCLOUD_TRACE=on` does not
/// name one.
pub const DEFAULT_CAPACITY: usize = 16_384;

/// Sentinel priority class for spans recorded outside any request context.
pub const NO_CLASS: u8 = 0xFF;

/// What a span measures. The discriminant is packed into the ring slot, so
/// variants must stay dense from zero (see [`SpanKind::ALL`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Admission to start-of-execution wait in the priority queue.
    QueueWait = 0,
    /// A request was fused into a batch; `aux` = batch size.
    BatchFuse = 1,
    /// Fractal partition construction for a frame.
    PartitionBuild = 2,
    /// Partition served from the LRU cache (instantaneous).
    PartitionCacheHit = 3,
    /// Block-FPS sampling; `aux` = block index (`u32::MAX` = whole frame).
    BlockSample = 4,
    /// Ball-query grouping; `aux` = block index (`u32::MAX` = whole frame).
    BlockGroup = 5,
    /// One set-abstraction stage's shared MLP; `aux` = stage index.
    StageMlp = 6,
    /// Segmented-max aggregation after a stage MLP; `aux` = stage index.
    Aggregate = 7,
    /// A fault-injection point fired; `aux` = `FaultPoint` index.
    FaultFire = 8,
    /// Wire-format response encoding.
    WireEncode = 9,
    /// Response write to the socket.
    WireWrite = 10,
    /// One streaming refinement chunk sliced and emitted; `aux` = chunk
    /// end depth (`hi`, clamped to `u32`).
    ChunkEmit = 11,
}

impl SpanKind {
    /// Every kind, indexable by discriminant.
    pub const ALL: [SpanKind; 12] = [
        SpanKind::QueueWait,
        SpanKind::BatchFuse,
        SpanKind::PartitionBuild,
        SpanKind::PartitionCacheHit,
        SpanKind::BlockSample,
        SpanKind::BlockGroup,
        SpanKind::StageMlp,
        SpanKind::Aggregate,
        SpanKind::FaultFire,
        SpanKind::WireEncode,
        SpanKind::WireWrite,
        SpanKind::ChunkEmit,
    ];

    /// Stable snake_case name (used in trace dumps and stage breakdowns).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::QueueWait => "queue_wait",
            SpanKind::BatchFuse => "batch_fuse",
            SpanKind::PartitionBuild => "partition_build",
            SpanKind::PartitionCacheHit => "partition_cache_hit",
            SpanKind::BlockSample => "block_sample",
            SpanKind::BlockGroup => "block_group",
            SpanKind::StageMlp => "stage_mlp",
            SpanKind::Aggregate => "aggregate",
            SpanKind::FaultFire => "fault_fire",
            SpanKind::WireEncode => "wire_encode",
            SpanKind::WireWrite => "wire_write",
            SpanKind::ChunkEmit => "chunk_emit",
        }
    }

    fn from_code(code: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(code as usize).copied()
    }
}

/// One recorded span, as read back out of a ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Request id minted at admission ([`next_request_id`]); 0 = no request.
    pub request_id: u64,
    /// Priority class index at record time ([`NO_CLASS`] outside a request).
    pub class: u8,
    /// What was measured.
    pub kind: SpanKind,
    /// Kind-specific payload (block index, stage index, batch size, ...).
    pub aux: u32,
    /// Start, microseconds since the recorder epoch (first enablement).
    pub start_us: u64,
    /// Duration in microseconds (0 for instantaneous events).
    pub dur_us: u64,
    /// Ordinal of the recording thread's ring (Chrome trace `tid`).
    pub thread: u64,
}

// One ring slot: four atomics so the recorder needs no unsafe and drains can
// tolerate racing writers. `meta` packs kind | class << 8 | aux << 32.
struct Slot {
    request_id: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
    meta: AtomicU64,
}

struct Ring {
    id: u64,
    slots: Box<[Slot]>,
    /// Total events ever recorded on this ring (monotonic; single writer).
    written: AtomicU64,
    /// Drain watermark (only advanced under the registry lock).
    consumed: AtomicU64,
    /// Events lost to wraparound, folded in at drain time.
    dropped: AtomicU64,
}

impl Ring {
    fn new(id: u64, capacity: usize) -> Ring {
        let slots = (0..capacity)
            .map(|_| Slot {
                request_id: AtomicU64::new(0),
                start_us: AtomicU64::new(0),
                dur_us: AtomicU64::new(0),
                meta: AtomicU64::new(u64::MAX),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            id,
            slots,
            written: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    // Hot path. Only ever called from the owning thread, so plain
    // load/store on `written` is race-free; Release publishes the slot
    // contents to drains.
    fn push(
        &self,
        request_id: u64,
        class: u8,
        kind: SpanKind,
        aux: u32,
        start_us: u64,
        dur_us: u64,
    ) {
        let seq = self.written.load(Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        slot.request_id.store(request_id, Ordering::Relaxed);
        slot.start_us.store(start_us, Ordering::Relaxed);
        slot.dur_us.store(dur_us, Ordering::Relaxed);
        slot.meta.store(kind as u64 | (class as u64) << 8 | (aux as u64) << 32, Ordering::Relaxed);
        self.written.store(seq + 1, Ordering::Release);
    }

    fn read_range(&self) -> (u64, u64) {
        let written = self.written.load(Ordering::Acquire);
        let consumed = self.consumed.load(Ordering::Relaxed);
        let available = written - consumed;
        (written - available.min(self.slots.len() as u64), written)
    }

    fn read_slot(&self, seq: u64) -> Option<SpanEvent> {
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let meta = slot.meta.load(Ordering::Relaxed);
        let kind = SpanKind::from_code((meta & 0xFF) as u8)?;
        Some(SpanEvent {
            request_id: slot.request_id.load(Ordering::Relaxed),
            class: (meta >> 8 & 0xFF) as u8,
            kind,
            aux: (meta >> 32) as u32,
            start_us: slot.start_us.load(Ordering::Relaxed),
            dur_us: slot.dur_us.load(Ordering::Relaxed),
            thread: self.id,
        })
    }

    fn drain_into(&self, out: &mut Vec<SpanEvent>) {
        let written = self.written.load(Ordering::Acquire);
        let consumed = self.consumed.load(Ordering::Relaxed);
        let lost = (written - consumed).saturating_sub(self.slots.len() as u64);
        if lost > 0 {
            self.dropped.fetch_add(lost, Ordering::Relaxed);
        }
        let (start, end) = self.read_range();
        for seq in start..end {
            if let Some(event) = self.read_slot(seq) {
                out.push(event);
            }
        }
        self.consumed.store(written, Ordering::Relaxed);
    }

    fn pending_lost(&self) -> u64 {
        let written = self.written.load(Ordering::Acquire);
        let consumed = self.consumed.load(Ordering::Relaxed);
        (written - consumed).saturating_sub(self.slots.len() as u64)
    }
}

struct State {
    capacity: usize,
    epoch: Instant,
    rings: Mutex<Vec<Arc<Ring>>>,
}

impl State {
    fn new(capacity: usize) -> State {
        State { capacity: capacity.max(16), epoch: Instant::now(), rings: Mutex::new(Vec::new()) }
    }

    fn register(&self) -> Arc<Ring> {
        let mut rings = self.rings.lock().unwrap();
        let ring = Arc::new(Ring::new(rings.len() as u64, self.capacity));
        rings.push(Arc::clone(&ring));
        ring
    }
}

const FLAG_UNINIT: u8 = 0;
const FLAG_OFF: u8 = 1;
const FLAG_ON: u8 = 2;

static FLAG: AtomicU8 = AtomicU8::new(FLAG_UNINIT);
static STATE: OnceLock<State> = OnceLock::new();
static NEXT_REQUEST: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
    static CTX: Cell<(u64, u8)> = const { Cell::new((0, NO_CLASS)) };
}

/// Is the flight recorder on? A single relaxed load + branch in steady
/// state; the first call parses `FRACTALCLOUD_TRACE`.
#[inline]
pub fn enabled() -> bool {
    match FLAG.load(Ordering::Relaxed) {
        FLAG_OFF => false,
        FLAG_ON => true,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let spec = std::env::var("FRACTALCLOUD_TRACE").unwrap_or_default();
    let spec = spec.trim();
    let on = match spec.split_once(':') {
        Some((mode, cap)) => {
            let on = matches!(mode, "on" | "1" | "true");
            if on {
                let capacity = cap.parse().unwrap_or(DEFAULT_CAPACITY);
                STATE.get_or_init(|| State::new(capacity));
            }
            on
        }
        None => matches!(spec, "on" | "1" | "true"),
    };
    if on {
        enable(DEFAULT_CAPACITY);
    } else {
        FLAG.store(FLAG_OFF, Ordering::Relaxed);
    }
    on
}

/// Turn the recorder on programmatically. `capacity` (events per thread)
/// only takes effect the first time the recorder state is created; later
/// calls just flip the switch back on.
pub fn enable(capacity: usize) {
    STATE.get_or_init(|| State::new(capacity));
    FLAG.store(FLAG_ON, Ordering::Relaxed);
}

/// Turn the recorder off. Rings (and any undrained events) are retained.
pub fn disable() {
    FLAG.store(FLAG_OFF, Ordering::Relaxed);
}

/// Mint a process-unique request id (monotonic from 1; 0 means "none").
pub fn next_request_id() -> u64 {
    NEXT_REQUEST.fetch_add(1, Ordering::Relaxed)
}

/// Read the calling thread's `(request_id, class)` tracing context.
pub fn current_context() -> (u64, u8) {
    CTX.with(|c| c.get())
}

/// Restores the previous thread-local tracing context on drop.
#[must_use = "dropping the guard immediately restores the previous context"]
pub struct ContextGuard {
    prev: (u64, u8),
}

/// Set the calling thread's tracing context for the span sites below the
/// current frame (worker lanes set this per work item so fan-out spans
/// carry the originating request).
pub fn scoped_context(request_id: u64, class: u8) -> ContextGuard {
    let prev = CTX.with(|c| c.replace((request_id, class)));
    ContextGuard { prev }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// An in-flight span. Records on [`Span::done`] or drop; when tracing is
/// off, creation is a branch and `Option::None` — no clock read.
#[must_use = "a span measures until it is dropped or `done()`"]
pub struct Span {
    kind: SpanKind,
    aux: u32,
    start: Option<Instant>,
}

/// Start a span of `kind` with kind-specific payload `aux`, attributed to
/// the current thread context.
#[inline]
pub fn span(kind: SpanKind, aux: u32) -> Span {
    Span { kind, aux, start: if enabled() { Some(Instant::now()) } else { None } }
}

impl Span {
    /// Finish the span now (otherwise it finishes when dropped).
    pub fn done(self) {}

    fn finish(&mut self) {
        if let Some(start) = self.start.take() {
            let (request_id, class) = current_context();
            record_span_at(self.kind, request_id, class, start, Instant::now(), self.aux);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Record an instantaneous event attributed to the current thread context.
#[inline]
pub fn event(kind: SpanKind, aux: u32) {
    if !enabled() {
        return;
    }
    let now = Instant::now();
    let (request_id, class) = current_context();
    record_span_at(kind, request_id, class, now, now, aux);
}

/// Record a span with explicit attribution and endpoints — for callers that
/// hold both timestamps already (e.g. queue wait: admission → dequeue).
pub fn record_span_at(
    kind: SpanKind,
    request_id: u64,
    class: u8,
    start: Instant,
    end: Instant,
    aux: u32,
) {
    if !enabled() {
        return;
    }
    let state = STATE.get_or_init(|| State::new(DEFAULT_CAPACITY));
    let start_us = start.checked_duration_since(state.epoch).map_or(0, |d| d.as_micros() as u64);
    let dur_us = end.checked_duration_since(start).map_or(0, |d| d.as_micros() as u64);
    RING.with(|cell| {
        cell.get_or_init(|| state.register()).push(request_id, class, kind, aux, start_us, dur_us);
    });
}

/// Drain every thread's ring: returns all undrained events sorted by start
/// time and advances the consumed watermark (folding wraparound losses into
/// [`status`]'s `dropped`).
pub fn drain() -> Vec<SpanEvent> {
    let Some(state) = STATE.get() else {
        return Vec::new();
    };
    let rings = state.rings.lock().unwrap();
    let mut out = Vec::new();
    for ring in rings.iter() {
        ring.drain_into(&mut out);
    }
    out.sort_by_key(|e| (e.start_us, e.request_id, e.thread));
    out
}

/// Non-consuming scan: every retained event for `request_id`, sorted by
/// start time. Used by the slow-request log so a diagnostic print does not
/// steal events from a later `TRACE_DUMP`.
pub fn spans_for(request_id: u64) -> Vec<SpanEvent> {
    let Some(state) = STATE.get() else {
        return Vec::new();
    };
    let rings = state.rings.lock().unwrap();
    let mut out = Vec::new();
    for ring in rings.iter() {
        let (start, end) = ring.read_range();
        for seq in start..end {
            if let Some(event) = ring.read_slot(seq) {
                if event.request_id == request_id {
                    out.push(event);
                }
            }
        }
    }
    out.sort_by_key(|e| (e.start_us, e.thread));
    out
}

/// Recorder health, surfaced through `Engine::health()` / FCS1 HEALTH.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStatus {
    /// Is the recorder currently on?
    pub enabled: bool,
    /// Per-thread ring capacity in events (0 = recorder never initialized).
    pub capacity: u64,
    /// Events lost to ring wraparound (drained + still-pending losses).
    pub dropped: u64,
}

/// Current recorder status (see [`TraceStatus`]).
pub fn status() -> TraceStatus {
    let enabled = enabled();
    let Some(state) = STATE.get() else {
        return TraceStatus { enabled, capacity: 0, dropped: 0 };
    };
    let rings = state.rings.lock().unwrap();
    let mut dropped = 0;
    for ring in rings.iter() {
        dropped += ring.dropped.load(Ordering::Relaxed) + ring.pending_lost();
    }
    TraceStatus { enabled, capacity: state.capacity as u64, dropped }
}

/// `FRACTALCLOUD_SLOW_MS` threshold, parsed once. `None` disables the
/// slow-request log.
pub fn slow_threshold_ms() -> Option<u64> {
    static SLOW: OnceLock<Option<u64>> = OnceLock::new();
    *SLOW.get_or_init(|| {
        std::env::var("FRACTALCLOUD_SLOW_MS").ok().and_then(|v| v.trim().parse().ok())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The recorder is process-global; serialize tests that enable/drain it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_drops() {
        let _guard = lock();
        enable(64);
        drain();
        let capacity = STATE.get().unwrap().capacity as u64;
        let req = next_request_id();
        let total = capacity + 37;
        let t = Instant::now();
        for i in 0..total {
            record_span_at(SpanKind::BlockSample, req, 1, t, t, i as u32);
        }
        let before = status().dropped;
        let events: Vec<_> = drain().into_iter().filter(|e| e.request_id == req).collect();
        // Only this thread's ring wrapped; the newest `capacity` survive.
        assert_eq!(events.len(), capacity as usize);
        let mut auxes: Vec<u64> = events.iter().map(|e| e.aux as u64).collect();
        auxes.sort_unstable();
        assert_eq!(auxes.first(), Some(&(total - capacity)));
        assert_eq!(auxes.last(), Some(&(total - 1)));
        assert!(status().dropped >= before.max(37));
    }

    #[test]
    fn cross_thread_spans_reassemble_by_request_id() {
        let _guard = lock();
        enable(64);
        drain();
        let req = next_request_id();
        let other = next_request_id();
        let threads: Vec<_> = (0..4)
            .map(|lane| {
                std::thread::spawn(move || {
                    let _ctx = scoped_context(req, (lane % 3) as u8);
                    let s = span(SpanKind::BlockSample, lane);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    s.done();
                    event(SpanKind::PartitionCacheHit, lane);
                    // Noise under a different request id.
                    record_span_at(
                        SpanKind::BlockGroup,
                        other,
                        NO_CLASS,
                        Instant::now(),
                        Instant::now(),
                        lane,
                    );
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mine = spans_for(req);
        assert_eq!(mine.len(), 8, "4 spans + 4 events for the request");
        let samples: Vec<_> = mine.iter().filter(|e| e.kind == SpanKind::BlockSample).collect();
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|e| e.dur_us >= 1_000));
        // Each lane recorded on its own ring.
        let rings: std::collections::HashSet<u64> = mine.iter().map(|e| e.thread).collect();
        assert_eq!(rings.len(), 4);
        // The non-consuming scan left everything for drain().
        let drained: Vec<_> = drain().into_iter().filter(|e| e.request_id == req).collect();
        assert_eq!(drained.len(), 8);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _guard = lock();
        enable(64);
        drain();
        disable();
        let req = next_request_id();
        span(SpanKind::StageMlp, 0).done();
        event(SpanKind::Aggregate, 1);
        record_span_at(SpanKind::QueueWait, req, 0, Instant::now(), Instant::now(), 0);
        enable(64);
        assert!(drain().iter().all(|e| e.request_id != req));
    }

    #[test]
    fn context_guard_nests_and_restores() {
        let _guard = lock();
        assert_eq!(current_context(), (0, NO_CLASS));
        {
            let _outer = scoped_context(7, 1);
            assert_eq!(current_context(), (7, 1));
            {
                let _inner = scoped_context(9, 2);
                assert_eq!(current_context(), (9, 2));
            }
            assert_eq!(current_context(), (7, 1));
        }
        assert_eq!(current_context(), (0, NO_CLASS));
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        let events = [SpanEvent {
            request_id: 42,
            class: 1,
            kind: SpanKind::StageMlp,
            aux: 2,
            start_us: 10,
            dur_us: 5,
            thread: 3,
        }];
        let json = chrome::trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"stage_mlp\""));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"request_id\":42"));
        assert!(chrome::trace_json(&[]).contains("\"traceEvents\":[]"));
    }
}

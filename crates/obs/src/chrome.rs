//! Chrome trace-event JSON rendering for drained flight-recorder spans.
//!
//! The output is the stable "JSON object format" understood by
//! `chrome://tracing` and Perfetto: complete (`"ph":"X"`) events with
//! microsecond timestamps, one track per recording thread, and the request
//! id / priority class / kind-specific payload in `args`.

use crate::SpanEvent;
use std::fmt::Write;

/// Render drained span events as a Chrome trace-event JSON document.
pub fn trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(32 + events.len() * 120);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\
             \"args\":{{\"request_id\":{},\"class\":{},\"aux\":{}}}}}",
            e.kind.name(),
            e.thread,
            e.start_us,
            e.dur_us,
            e.request_id,
            e.class,
            e.aux,
        );
    }
    out.push_str("]}");
    out
}

//! A small two-pass RV32IM assembler for control programs.
//!
//! Supports the instructions of [`crate::isa`], ABI register names,
//! `#` comments, labels, and the pseudo-instructions `li`, `mv`, `nop`,
//! `j`, and `ret`. Enough to write the configuration programs the RISC-V
//! core runs in the examples and tests.

use std::collections::HashMap;
use std::fmt;

/// Assembly error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn reg(name: &str, line: usize) -> Result<u8, AsmError> {
    let name = name.trim();
    let abi = [
        ("zero", 0),
        ("ra", 1),
        ("sp", 2),
        ("gp", 3),
        ("tp", 4),
        ("t0", 5),
        ("t1", 6),
        ("t2", 7),
        ("s0", 8),
        ("fp", 8),
        ("s1", 9),
        ("a0", 10),
        ("a1", 11),
        ("a2", 12),
        ("a3", 13),
        ("a4", 14),
        ("a5", 15),
        ("a6", 16),
        ("a7", 17),
        ("s2", 18),
        ("s3", 19),
        ("s4", 20),
        ("s5", 21),
        ("s6", 22),
        ("s7", 23),
        ("s8", 24),
        ("s9", 25),
        ("s10", 26),
        ("s11", 27),
        ("t3", 28),
        ("t4", 29),
        ("t5", 30),
        ("t6", 31),
    ];
    for (n, v) in abi {
        if n == name {
            return Ok(v);
        }
    }
    if let Some(num) = name.strip_prefix('x') {
        if let Ok(v) = num.parse::<u8>() {
            if v < 32 {
                return Ok(v);
            }
        }
    }
    Err(AsmError { line, message: format!("unknown register `{name}`") })
}

fn imm(text: &str, line: usize) -> Result<i64, AsmError> {
    let t = text.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(hex) = t.strip_prefix("0X") {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| AsmError { line, message: format!("bad immediate `{text}`") })?;
    Ok(if neg { -v } else { v })
}

// ---- encoders ----

fn enc_r(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn enc_i(imm: i32, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    ((imm as u32 & 0xfff) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn enc_s(imm: i32, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    let u = imm as u32;
    ((u >> 5 & 0x7f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((u & 0x1f) << 7)
        | opcode
}

fn enc_b(imm: i32, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    let u = imm as u32;
    ((u >> 12 & 1) << 31)
        | ((u >> 5 & 0x3f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((u >> 1 & 0xf) << 8)
        | ((u >> 11 & 1) << 7)
        | 0x63
}

fn enc_u(imm: i32, rd: u8, opcode: u32) -> u32 {
    (imm as u32 & 0xffff_f000) | ((rd as u32) << 7) | opcode
}

fn enc_j(imm: i32, rd: u8) -> u32 {
    let u = imm as u32;
    ((u >> 20 & 1) << 31)
        | ((u >> 1 & 0x3ff) << 21)
        | ((u >> 11 & 1) << 20)
        | ((u >> 12 & 0xff) << 12)
        | ((rd as u32) << 7)
        | 0x6f
}

/// One parsed line awaiting encoding.
#[derive(Debug, Clone)]
enum Item {
    /// Fully-encodable now.
    Word(u32),
    /// Branch to a label: (mnemonic funct3, rs1, rs2, label).
    Branch(u32, u8, u8, String),
    /// `jal rd, label`.
    Jal(u8, String),
}

fn fits12(v: i64) -> bool {
    (-2048..=2047).contains(&v)
}

/// Assembles RV32IM source into little-endian machine code.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on syntax errors, unknown
/// mnemonics/registers, or undefined labels.
///
/// # Examples
///
/// ```
/// use fractalcloud_riscv::assemble;
///
/// let code = assemble("li a0, 1\necall").unwrap();
/// assert_eq!(code.len(), 8); // two instructions
/// ```
pub fn assemble(source: &str) -> Result<Vec<u8>, AsmError> {
    let mut items: Vec<(usize, Item)> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();

    for (line_idx, raw) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let mut text = raw;
        if let Some(hash) = text.find('#') {
            text = &text[..hash];
        }
        let mut text = text.trim();
        // Leading labels (possibly several).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            let addr = (items.len() * 4) as u32;
            if labels.insert(label.to_string(), addr).is_some() {
                return Err(AsmError {
                    line: line_no,
                    message: format!("duplicate label `{label}`"),
                });
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnem, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let args: Vec<&str> =
            if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
        let e = |msg: &str| AsmError { line: line_no, message: msg.to_string() };
        let need = |n: usize| -> Result<(), AsmError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(AsmError {
                    line: line_no,
                    message: format!("`{mnem}` expects {n} operands, got {}", args.len()),
                })
            }
        };

        // mem operand "imm(reg)"
        let mem = |s: &str| -> Result<(i32, u8), AsmError> {
            let open = s.find('(').ok_or_else(|| e("expected `imm(reg)`"))?;
            let close = s.rfind(')').ok_or_else(|| e("expected `imm(reg)`"))?;
            let off = if open == 0 { 0 } else { imm(&s[..open], line_no)? as i32 };
            let r = reg(&s[open + 1..close], line_no)?;
            Ok((off, r))
        };

        let mut push = |item: Item| items.push((line_no, item));

        match mnem {
            "nop" => push(Item::Word(enc_i(0, 0, 0, 0, 0x13))),
            "ecall" => push(Item::Word(0x0000_0073)),
            "ebreak" => push(Item::Word(0x0010_0073)),
            "fence" | "fence.i" => push(Item::Word(0x0000_000f)),
            "ret" => push(Item::Word(enc_i(0, 1, 0, 0, 0x67))),
            "li" => {
                need(2)?;
                let rd = reg(args[0], line_no)?;
                let v = imm(args[1], line_no)?;
                let v32 = v as i32;
                if fits12(v) {
                    push(Item::Word(enc_i(v32, 0, 0, rd, 0x13)));
                } else {
                    let lo = (v32 << 20) >> 20; // sign-extended low 12
                    let hi = v32.wrapping_sub(lo);
                    push(Item::Word(enc_u(hi, rd, 0x37)));
                    if lo != 0 {
                        push(Item::Word(enc_i(lo, rd, 0, rd, 0x13)));
                    }
                }
            }
            "mv" => {
                need(2)?;
                let rd = reg(args[0], line_no)?;
                let rs = reg(args[1], line_no)?;
                push(Item::Word(enc_i(0, rs, 0, rd, 0x13)));
            }
            "lui" | "auipc" => {
                need(2)?;
                let rd = reg(args[0], line_no)?;
                let v = imm(args[1], line_no)? as i32;
                let op = if mnem == "lui" { 0x37 } else { 0x17 };
                push(Item::Word(enc_u(v << 12, rd, op)));
            }
            "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" => {
                need(3)?;
                let rd = reg(args[0], line_no)?;
                let rs1 = reg(args[1], line_no)?;
                let v = imm(args[2], line_no)?;
                if !fits12(v) {
                    return Err(e("immediate out of 12-bit range"));
                }
                let f3 = match mnem {
                    "addi" => 0,
                    "slti" => 2,
                    "sltiu" => 3,
                    "xori" => 4,
                    "ori" => 6,
                    _ => 7,
                };
                push(Item::Word(enc_i(v as i32, rs1, f3, rd, 0x13)));
            }
            "slli" | "srli" | "srai" => {
                need(3)?;
                let rd = reg(args[0], line_no)?;
                let rs1 = reg(args[1], line_no)?;
                let sh = imm(args[2], line_no)?;
                if !(0..32).contains(&sh) {
                    return Err(e("shift amount out of range"));
                }
                let (f7, f3) = match mnem {
                    "slli" => (0, 1),
                    "srli" => (0, 5),
                    _ => (0b0100000, 5),
                };
                push(Item::Word(enc_r(f7, sh as u8, rs1, f3, rd, 0x13)));
            }
            "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and"
            | "mul" | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
                need(3)?;
                let rd = reg(args[0], line_no)?;
                let rs1 = reg(args[1], line_no)?;
                let rs2 = reg(args[2], line_no)?;
                let (f7, f3) = match mnem {
                    "add" => (0b0000000, 0b000),
                    "sub" => (0b0100000, 0b000),
                    "sll" => (0b0000000, 0b001),
                    "slt" => (0b0000000, 0b010),
                    "sltu" => (0b0000000, 0b011),
                    "xor" => (0b0000000, 0b100),
                    "srl" => (0b0000000, 0b101),
                    "sra" => (0b0100000, 0b101),
                    "or" => (0b0000000, 0b110),
                    "and" => (0b0000000, 0b111),
                    "mul" => (1, 0b000),
                    "mulh" => (1, 0b001),
                    "mulhsu" => (1, 0b010),
                    "mulhu" => (1, 0b011),
                    "div" => (1, 0b100),
                    "divu" => (1, 0b101),
                    "rem" => (1, 0b110),
                    _ => (1, 0b111),
                };
                push(Item::Word(enc_r(f7, rs2, rs1, f3, rd, 0x33)));
            }
            "lb" | "lh" | "lw" | "lbu" | "lhu" => {
                need(2)?;
                let rd = reg(args[0], line_no)?;
                let (off, rs1) = mem(args[1])?;
                let f3 = match mnem {
                    "lb" => 0,
                    "lh" => 1,
                    "lw" => 2,
                    "lbu" => 4,
                    _ => 5,
                };
                push(Item::Word(enc_i(off, rs1, f3, rd, 0x03)));
            }
            "sb" | "sh" | "sw" => {
                need(2)?;
                let rs2 = reg(args[0], line_no)?;
                let (off, rs1) = mem(args[1])?;
                let f3 = match mnem {
                    "sb" => 0,
                    "sh" => 1,
                    _ => 2,
                };
                push(Item::Word(enc_s(off, rs2, rs1, f3, 0x23)));
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                need(3)?;
                let rs1 = reg(args[0], line_no)?;
                let rs2 = reg(args[1], line_no)?;
                let f3 = match mnem {
                    "beq" => 0b000,
                    "bne" => 0b001,
                    "blt" => 0b100,
                    "bge" => 0b101,
                    "bltu" => 0b110,
                    _ => 0b111,
                };
                push(Item::Branch(f3, rs1, rs2, args[2].to_string()));
            }
            "jal" => match args.len() {
                1 => push(Item::Jal(1, args[0].to_string())),
                2 => {
                    let rd = reg(args[0], line_no)?;
                    push(Item::Jal(rd, args[1].to_string()));
                }
                _ => return Err(e("`jal` expects `label` or `rd, label`")),
            },
            "j" => {
                need(1)?;
                push(Item::Jal(0, args[0].to_string()));
            }
            "jalr" => {
                need(3)?;
                let rd = reg(args[0], line_no)?;
                let rs1 = reg(args[1], line_no)?;
                let v = imm(args[2], line_no)? as i32;
                push(Item::Word(enc_i(v, rs1, 0, rd, 0x67)));
            }
            other => return Err(e(&format!("unknown mnemonic `{other}`"))),
        }
    }

    // Pass 2: resolve labels.
    let mut out = Vec::with_capacity(items.len() * 4);
    for (idx, (line, item)) in items.iter().enumerate() {
        let pc = (idx * 4) as i64;
        let word = match item {
            Item::Word(w) => *w,
            Item::Branch(f3, rs1, rs2, label) => {
                let target = *labels.get(label).ok_or_else(|| AsmError {
                    line: *line,
                    message: format!("undefined label `{label}`"),
                })? as i64;
                let off = target - pc;
                if !(-4096..=4094).contains(&off) {
                    return Err(AsmError { line: *line, message: "branch out of range".into() });
                }
                enc_b(off as i32, *rs2, *rs1, *f3)
            }
            Item::Jal(rd, label) => {
                let target = *labels.get(label).ok_or_else(|| AsmError {
                    line: *line,
                    message: format!("undefined label `{label}`"),
                })? as i64;
                let off = target - pc;
                enc_j(off as i32, *rd)
            }
        };
        out.extend_from_slice(&word.to_le_bytes());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{decode, Instr};

    fn words(code: &[u8]) -> Vec<u32> {
        code.chunks(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
    }

    #[test]
    fn assemble_and_decode_round_trip() {
        let code = assemble(
            "addi a0, zero, 42
             add  a1, a0, a0
             sw   a1, 8(sp)
             lw   a2, 8(sp)",
        )
        .unwrap();
        let ws = words(&code);
        assert_eq!(decode(ws[0]).unwrap(), Instr::Addi { rd: 10, rs1: 0, imm: 42 });
        assert_eq!(decode(ws[1]).unwrap(), Instr::Add { rd: 11, rs1: 10, rs2: 10 });
        assert_eq!(decode(ws[2]).unwrap(), Instr::Sw { rs1: 2, rs2: 11, imm: 8 });
        assert_eq!(decode(ws[3]).unwrap(), Instr::Lw { rd: 12, rs1: 2, imm: 8 });
    }

    #[test]
    fn li_small_is_one_instruction() {
        let code = assemble("li t0, -7").unwrap();
        assert_eq!(code.len(), 4);
        assert_eq!(decode(words(&code)[0]).unwrap(), Instr::Addi { rd: 5, rs1: 0, imm: -7 });
    }

    #[test]
    fn li_large_is_lui_addi() {
        let code = assemble("li t0, 0x12345678").unwrap();
        let ws = words(&code);
        assert_eq!(ws.len(), 2);
        match (decode(ws[0]).unwrap(), decode(ws[1]).unwrap()) {
            (Instr::Lui { rd: 5, imm: hi }, Instr::Addi { rd: 5, rs1: 5, imm: lo }) => {
                assert_eq!(hi.wrapping_add(lo), 0x12345678);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branch_targets_resolve_backwards_and_forwards() {
        let code = assemble(
            "start:
             beq zero, zero, end
             j start
            end:
             ecall",
        )
        .unwrap();
        let ws = words(&code);
        match decode(ws[0]).unwrap() {
            Instr::Beq { imm, .. } => assert_eq!(imm, 8),
            other => panic!("{other:?}"),
        }
        match decode(ws[1]).unwrap() {
            Instr::Jal { rd: 0, imm } => assert_eq!(imm, -4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let code = assemble("# header\n\n  nop # trailing\n").unwrap();
        assert_eq!(code.len(), 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbadop x1, x2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("badop"));
        let err = assemble("beq zero, zero, nowhere").unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let err = assemble("a:\nnop\na:\nnop").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn abi_and_numeric_registers_agree() {
        let a = assemble("add a0, sp, t6").unwrap();
        let b = assemble("add x10, x2, x31").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn immediate_range_checked() {
        assert!(assemble("addi a0, a0, 5000").is_err());
        assert!(assemble("slli a0, a0, 32").is_err());
    }
}

//! Memory bus: RAM plus the memory-mapped configuration module of §V-A.

use std::collections::VecDeque;

/// Memory-bus interface the CPU core drives.
pub trait Bus {
    /// Loads a 32-bit word (little-endian). `addr` need not be aligned.
    fn load32(&mut self, addr: u32) -> u32;
    /// Stores a 32-bit word.
    fn store32(&mut self, addr: u32, value: u32);

    /// Loads one byte.
    fn load8(&mut self, addr: u32) -> u8;
    /// Stores one byte.
    fn store8(&mut self, addr: u32, value: u8);

    /// Loads a 16-bit halfword.
    fn load16(&mut self, addr: u32) -> u16 {
        (self.load8(addr) as u16) | ((self.load8(addr + 1) as u16) << 8)
    }
    /// Stores a 16-bit halfword.
    fn store16(&mut self, addr: u32, value: u16) {
        self.store8(addr, value as u8);
        self.store8(addr + 1, (value >> 8) as u8);
    }
}

/// Base address of the configuration-module MMIO window.
pub const CONFIG_MMIO_BASE: u32 = 0x4000_0000;
/// Size of the MMIO window in bytes.
pub const CONFIG_MMIO_SIZE: u32 = 0x1000;

/// MMIO register offsets of the [`ConfigModule`].
pub mod config_regs {
    /// W: select the target computation module (0 = fractal engine,
    /// 1 = RSPU array, 2 = gather units, 3 = pooling, 4 = PE array,
    /// 5 = DMA).
    pub const MODULE_SEL: u32 = 0x00;
    /// W: push one 32-bit control word into the staging buffer.
    pub const DATA_FIFO: u32 = 0x04;
    /// W: commit the staging buffer — the module segments and packages it
    /// into one instruction for the selected unit.
    pub const COMMIT: u32 = 0x08;
    /// R: number of packets dispatched so far.
    pub const DISPATCH_COUNT: u32 = 0x0c;
    /// R: busy flag (always 0 in this functional model — dispatch is
    /// instantaneous; timing is charged by the accelerator model).
    pub const STATUS: u32 = 0x10;
}

/// Target computation modules, by MODULE_SEL value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetModule {
    /// The fractal engine.
    FractalEngine,
    /// The RSPU array.
    Rspu,
    /// The gather units.
    Gather,
    /// The pooling unit.
    Pooling,
    /// The systolic PE array.
    PeArray,
    /// The DMA engine.
    Dma,
}

impl TargetModule {
    fn from_sel(v: u32) -> Option<TargetModule> {
        Some(match v {
            0 => TargetModule::FractalEngine,
            1 => TargetModule::Rspu,
            2 => TargetModule::Gather,
            3 => TargetModule::Pooling,
            4 => TargetModule::PeArray,
            5 => TargetModule::Dma,
            _ => return None,
        })
    }

    /// The instruction length (in 32-bit words) of this module — the
    /// configuration module "segments and packages the data based on each
    /// computation module's instruction length" (§V-A).
    pub fn instruction_words(&self) -> usize {
        match self {
            TargetModule::FractalEngine => 4, // th, base, count, mode
            TargetModule::Rspu => 6,          // op, space base/len, centers, num, radius
            TargetModule::Gather => 3,
            TargetModule::Pooling => 2,
            TargetModule::PeArray => 5, // m, n, k, act, base
            TargetModule::Dma => 4,     // src, dst, len, pattern
        }
    }
}

/// A packaged configuration packet dispatched to a computation module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigPacket {
    /// The destination unit.
    pub target: TargetModule,
    /// The packaged control words (length = `target.instruction_words()`,
    /// zero-padded or truncated from the staging buffer).
    pub words: Vec<u32>,
}

/// Functional model of the lightweight configuration module between the
/// RISC-V core and the computation modules (§V-A): the core writes control
/// data into a buffer; the module segments and packages it per the target's
/// instruction length and dispatches it.
#[derive(Debug, Clone, Default)]
pub struct ConfigModule {
    selected: u32,
    staging: Vec<u32>,
    dispatched: VecDeque<ConfigPacket>,
    dispatch_count: u32,
}

impl ConfigModule {
    /// A new, empty module.
    pub fn new() -> ConfigModule {
        ConfigModule::default()
    }

    fn write(&mut self, offset: u32, value: u32) {
        match offset {
            config_regs::MODULE_SEL => self.selected = value,
            config_regs::DATA_FIFO => self.staging.push(value),
            config_regs::COMMIT => self.commit(),
            _ => {}
        }
    }

    fn read(&self, offset: u32) -> u32 {
        match offset {
            config_regs::MODULE_SEL => self.selected,
            config_regs::DISPATCH_COUNT => self.dispatch_count,
            config_regs::STATUS => 0,
            _ => 0,
        }
    }

    fn commit(&mut self) {
        let Some(target) = TargetModule::from_sel(self.selected) else {
            self.staging.clear();
            return;
        };
        let len = target.instruction_words();
        let mut words: Vec<u32> = self.staging.drain(..).collect();
        words.resize(len, 0);
        self.dispatched.push_back(ConfigPacket { target, words });
        self.dispatch_count += 1;
    }

    /// Pops the oldest dispatched packet (the accelerator model consumes
    /// these).
    pub fn pop_packet(&mut self) -> Option<ConfigPacket> {
        self.dispatched.pop_front()
    }

    /// Number of packets dispatched since reset.
    pub fn dispatch_count(&self) -> u32 {
        self.dispatch_count
    }
}

/// The system bus: flat RAM at address 0 plus the configuration module at
/// [`CONFIG_MMIO_BASE`].
#[derive(Debug, Clone)]
pub struct SystemBus {
    ram: Vec<u8>,
    /// The configuration module (public so harnesses can drain packets).
    pub config: ConfigModule,
}

impl SystemBus {
    /// Creates a bus with `ram_bytes` of zeroed RAM.
    pub fn new(ram_bytes: usize) -> SystemBus {
        SystemBus { ram: vec![0; ram_bytes], config: ConfigModule::new() }
    }

    /// Copies `program` into RAM at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds RAM.
    pub fn load_program(&mut self, addr: u32, program: &[u8]) {
        let a = addr as usize;
        assert!(a + program.len() <= self.ram.len(), "program exceeds RAM");
        self.ram[a..a + program.len()].copy_from_slice(program);
    }

    fn in_mmio(addr: u32) -> bool {
        (CONFIG_MMIO_BASE..CONFIG_MMIO_BASE + CONFIG_MMIO_SIZE).contains(&addr)
    }
}

impl Bus for SystemBus {
    fn load32(&mut self, addr: u32) -> u32 {
        if Self::in_mmio(addr) {
            return self.config.read(addr - CONFIG_MMIO_BASE);
        }
        let a = addr as usize;
        if a + 4 > self.ram.len() {
            return 0;
        }
        u32::from_le_bytes([self.ram[a], self.ram[a + 1], self.ram[a + 2], self.ram[a + 3]])
    }

    fn store32(&mut self, addr: u32, value: u32) {
        if Self::in_mmio(addr) {
            self.config.write(addr - CONFIG_MMIO_BASE, value);
            return;
        }
        let a = addr as usize;
        if a + 4 <= self.ram.len() {
            self.ram[a..a + 4].copy_from_slice(&value.to_le_bytes());
        }
    }

    fn load8(&mut self, addr: u32) -> u8 {
        if Self::in_mmio(addr) {
            return (self.config.read(addr - CONFIG_MMIO_BASE) & 0xff) as u8;
        }
        *self.ram.get(addr as usize).unwrap_or(&0)
    }

    fn store8(&mut self, addr: u32, value: u8) {
        if Self::in_mmio(addr) {
            self.config.write(addr - CONFIG_MMIO_BASE, value as u32);
            return;
        }
        if let Some(b) = self.ram.get_mut(addr as usize) {
            *b = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_round_trips() {
        let mut bus = SystemBus::new(1024);
        bus.store32(16, 0xdead_beef);
        assert_eq!(bus.load32(16), 0xdead_beef);
        assert_eq!(bus.load8(16), 0xef); // little-endian
        bus.store16(100, 0x1234);
        assert_eq!(bus.load16(100), 0x1234);
    }

    #[test]
    fn out_of_range_ram_is_benign() {
        let mut bus = SystemBus::new(64);
        bus.store32(1 << 20, 5);
        assert_eq!(bus.load32(1 << 20), 0);
    }

    #[test]
    fn config_module_packages_per_instruction_length() {
        let mut bus = SystemBus::new(64);
        // Select the PE array (5 words), push 3 words, commit.
        bus.store32(CONFIG_MMIO_BASE + config_regs::MODULE_SEL, 4);
        for w in [100, 200, 300] {
            bus.store32(CONFIG_MMIO_BASE + config_regs::DATA_FIFO, w);
        }
        bus.store32(CONFIG_MMIO_BASE + config_regs::COMMIT, 1);
        let pkt = bus.config.pop_packet().unwrap();
        assert_eq!(pkt.target, TargetModule::PeArray);
        assert_eq!(pkt.words, vec![100, 200, 300, 0, 0]); // zero-padded to 5
        assert_eq!(bus.load32(CONFIG_MMIO_BASE + config_regs::DISPATCH_COUNT), 1);
    }

    #[test]
    fn invalid_module_select_drops_commit() {
        let mut bus = SystemBus::new(64);
        bus.store32(CONFIG_MMIO_BASE + config_regs::MODULE_SEL, 99);
        bus.store32(CONFIG_MMIO_BASE + config_regs::DATA_FIFO, 7);
        bus.store32(CONFIG_MMIO_BASE + config_regs::COMMIT, 1);
        assert!(bus.config.pop_packet().is_none());
        assert_eq!(bus.config.dispatch_count(), 0);
    }

    #[test]
    fn instruction_lengths_differ_per_module() {
        assert_eq!(TargetModule::Rspu.instruction_words(), 6);
        assert_eq!(TargetModule::Pooling.instruction_words(), 2);
    }

    #[test]
    fn load_program_places_bytes() {
        let mut bus = SystemBus::new(128);
        bus.load_program(8, &[1, 2, 3, 4]);
        assert_eq!(bus.load32(8), u32::from_le_bytes([1, 2, 3, 4]));
    }
}

//! RV32IM control core, assembler, and MMIO configuration bus.
//!
//! The FractalCloud chip is managed by "a single-core six-stage RV32IMAC
//! RISC-V processor … \[that\] writes control data into a buffer within
//! \[a\] configuration module, which then segments and packages the data
//! based on each computation module's instruction length" (§V-A). This
//! crate provides that control plane:
//!
//! * [`Cpu`] — an RV32IM functional core with a six-stage timing model;
//! * [`assemble`] — a small two-pass assembler for control programs;
//! * [`SystemBus`] / [`ConfigModule`] — RAM + the memory-mapped
//!   configuration module that packages per-unit instruction words;
//! * [`program`] — canned configuration programs used by examples/tests.
//!
//! # Example
//!
//! ```
//! use fractalcloud_riscv::{assemble, Cpu, SystemBus};
//!
//! let code = assemble("li a0, 21\nadd a0, a0, a0\necall").unwrap();
//! let mut bus = SystemBus::new(4096);
//! bus.load_program(0, &code);
//! let mut cpu = Cpu::new(bus);
//! cpu.run(100).unwrap();
//! assert_eq!(cpu.reg(10), 42);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod asm;
mod bus;
mod cpu;
mod isa;
pub mod program;

pub use asm::{assemble, AsmError};
pub use bus::{
    config_regs, Bus, ConfigModule, ConfigPacket, SystemBus, TargetModule, CONFIG_MMIO_BASE,
    CONFIG_MMIO_SIZE,
};
pub use cpu::{Cpu, Halt, PipelineModel};
pub use isa::{decode, DecodeError, Instr};

//! RV32IM instruction set: decoded form and decoder.

use std::fmt;

/// A decoded RV32IM instruction.
///
/// Field conventions: `rd`/`rs1`/`rs2` are register numbers, `imm` is the
/// sign-extended immediate (already shifted for branches/jumps/U-types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror the ISA mnemonics 1:1
pub enum Instr {
    Lui {
        rd: u8,
        imm: i32,
    },
    Auipc {
        rd: u8,
        imm: i32,
    },
    Jal {
        rd: u8,
        imm: i32,
    },
    Jalr {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Beq {
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    Bne {
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    Blt {
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    Bge {
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    Bltu {
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    Bgeu {
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    Lb {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Lh {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Lw {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Lbu {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Lhu {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Sb {
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    Sh {
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    Sw {
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    Addi {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Slti {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Sltiu {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Xori {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Ori {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Andi {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Slli {
        rd: u8,
        rs1: u8,
        shamt: u8,
    },
    Srli {
        rd: u8,
        rs1: u8,
        shamt: u8,
    },
    Srai {
        rd: u8,
        rs1: u8,
        shamt: u8,
    },
    Add {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sub {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sll {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Slt {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sltu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Xor {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Srl {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sra {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Or {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    And {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mul {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mulh {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mulhsu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mulhu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Div {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Divu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Rem {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Remu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    /// FENCE / FENCE.I — a no-op in this single-hart model (Zifencei is
    /// accepted for compatibility with the paper's core).
    Fence,
    /// ECALL — used as the "halt and report" convention by control programs.
    Ecall,
    /// EBREAK.
    Ebreak,
}

/// Error for an undecodable instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The raw instruction word.
    pub word: u32,
    /// Program counter at which it was fetched (0 when unknown).
    pub pc: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction {:#010x} at pc {:#010x}", self.word, self.pc)
    }
}

impl std::error::Error for DecodeError {}

const fn bits(w: u32, hi: u32, lo: u32) -> u32 {
    (w >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

fn imm_s(w: u32) -> i32 {
    (((w & 0xfe00_0000) as i32) >> 20) | bits(w, 11, 7) as i32
}

fn imm_b(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 12
    ((sign << 12) & !0xfff)
        | ((bits(w, 7, 7) << 11) | (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1)) as i32
}

fn imm_u(w: u32) -> i32 {
    (w & 0xffff_f000) as i32
}

fn imm_j(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 20
    ((sign << 20) & !0xf_ffff)
        | ((bits(w, 19, 12) << 12) | (bits(w, 20, 20) << 11) | (bits(w, 30, 21) << 1)) as i32
}

/// Decodes one 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for unsupported or malformed encodings.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = DecodeError { word, pc: 0 };
    let opcode = bits(word, 6, 0);
    let rd = bits(word, 11, 7) as u8;
    let rs1 = bits(word, 19, 15) as u8;
    let rs2 = bits(word, 24, 20) as u8;
    let funct3 = bits(word, 14, 12);
    let funct7 = bits(word, 31, 25);

    Ok(match opcode {
        0b0110111 => Instr::Lui { rd, imm: imm_u(word) },
        0b0010111 => Instr::Auipc { rd, imm: imm_u(word) },
        0b1101111 => Instr::Jal { rd, imm: imm_j(word) },
        0b1100111 if funct3 == 0 => Instr::Jalr { rd, rs1, imm: imm_i(word) },
        0b1100011 => {
            let imm = imm_b(word);
            match funct3 {
                0b000 => Instr::Beq { rs1, rs2, imm },
                0b001 => Instr::Bne { rs1, rs2, imm },
                0b100 => Instr::Blt { rs1, rs2, imm },
                0b101 => Instr::Bge { rs1, rs2, imm },
                0b110 => Instr::Bltu { rs1, rs2, imm },
                0b111 => Instr::Bgeu { rs1, rs2, imm },
                _ => return Err(err),
            }
        }
        0b0000011 => {
            let imm = imm_i(word);
            match funct3 {
                0b000 => Instr::Lb { rd, rs1, imm },
                0b001 => Instr::Lh { rd, rs1, imm },
                0b010 => Instr::Lw { rd, rs1, imm },
                0b100 => Instr::Lbu { rd, rs1, imm },
                0b101 => Instr::Lhu { rd, rs1, imm },
                _ => return Err(err),
            }
        }
        0b0100011 => {
            let imm = imm_s(word);
            match funct3 {
                0b000 => Instr::Sb { rs1, rs2, imm },
                0b001 => Instr::Sh { rs1, rs2, imm },
                0b010 => Instr::Sw { rs1, rs2, imm },
                _ => return Err(err),
            }
        }
        0b0010011 => {
            let imm = imm_i(word);
            let shamt = rs2;
            match funct3 {
                0b000 => Instr::Addi { rd, rs1, imm },
                0b010 => Instr::Slti { rd, rs1, imm },
                0b011 => Instr::Sltiu { rd, rs1, imm },
                0b100 => Instr::Xori { rd, rs1, imm },
                0b110 => Instr::Ori { rd, rs1, imm },
                0b111 => Instr::Andi { rd, rs1, imm },
                0b001 if funct7 == 0 => Instr::Slli { rd, rs1, shamt },
                0b101 if funct7 == 0 => Instr::Srli { rd, rs1, shamt },
                0b101 if funct7 == 0b0100000 => Instr::Srai { rd, rs1, shamt },
                _ => return Err(err),
            }
        }
        0b0110011 => match (funct7, funct3) {
            (0b0000000, 0b000) => Instr::Add { rd, rs1, rs2 },
            (0b0100000, 0b000) => Instr::Sub { rd, rs1, rs2 },
            (0b0000000, 0b001) => Instr::Sll { rd, rs1, rs2 },
            (0b0000000, 0b010) => Instr::Slt { rd, rs1, rs2 },
            (0b0000000, 0b011) => Instr::Sltu { rd, rs1, rs2 },
            (0b0000000, 0b100) => Instr::Xor { rd, rs1, rs2 },
            (0b0000000, 0b101) => Instr::Srl { rd, rs1, rs2 },
            (0b0100000, 0b101) => Instr::Sra { rd, rs1, rs2 },
            (0b0000000, 0b110) => Instr::Or { rd, rs1, rs2 },
            (0b0000000, 0b111) => Instr::And { rd, rs1, rs2 },
            (0b0000001, 0b000) => Instr::Mul { rd, rs1, rs2 },
            (0b0000001, 0b001) => Instr::Mulh { rd, rs1, rs2 },
            (0b0000001, 0b010) => Instr::Mulhsu { rd, rs1, rs2 },
            (0b0000001, 0b011) => Instr::Mulhu { rd, rs1, rs2 },
            (0b0000001, 0b100) => Instr::Div { rd, rs1, rs2 },
            (0b0000001, 0b101) => Instr::Divu { rd, rs1, rs2 },
            (0b0000001, 0b110) => Instr::Rem { rd, rs1, rs2 },
            (0b0000001, 0b111) => Instr::Remu { rd, rs1, rs2 },
            _ => return Err(err),
        },
        0b0001111 => Instr::Fence,
        0b1110011 => match bits(word, 31, 20) {
            0 => Instr::Ecall,
            1 => Instr::Ebreak,
            _ => return Err(err),
        },
        _ => return Err(err),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_addi() {
        // addi x1, x2, -5  → imm=0xffb, rs1=2, funct3=0, rd=1, op=0x13
        let w = (0xffbu32 << 20) | (2 << 15) | (1 << 7) | 0x13;
        assert_eq!(decode(w).unwrap(), Instr::Addi { rd: 1, rs1: 2, imm: -5 });
    }

    #[test]
    fn decode_lui_auipc() {
        let w = 0xdead_b0b7; // lui x1, 0xdeadb
        assert_eq!(decode(w).unwrap(), Instr::Lui { rd: 1, imm: 0xdeadb000u32 as i32 });
    }

    #[test]
    fn decode_branch_negative_offset() {
        // beq x0, x0, -4 : imm[12|10:5]=0x7f<<25 sign part...
        // Encode: imm=-4 → bits: imm[12]=1, imm[11]=1, imm[10:5]=0b111111,
        // imm[4:1]=0b1110.
        let w = 0b1111_1110_0000_0000_0000_1110_1110_0011u32;
        match decode(w).unwrap() {
            Instr::Beq { rs1: 0, rs2: 0, imm } => assert_eq!(imm, -4),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn decode_jal_positive() {
        // jal x1, +8 → imm[20|10:1|11|19:12]
        let imm = 8u32;
        let w = ((imm & 0x7fe) << 20) | (1 << 7) | 0x6f;
        assert_eq!(decode(w).unwrap(), Instr::Jal { rd: 1, imm: 8 });
    }

    #[test]
    fn decode_store() {
        // sw x5, 12(x2): imm=12 → imm[11:5]=0, imm[4:0]=12
        let w = (5 << 20) | (2 << 15) | (0b010 << 12) | (12 << 7) | 0x23;
        assert_eq!(decode(w).unwrap(), Instr::Sw { rs1: 2, rs2: 5, imm: 12 });
    }

    #[test]
    fn decode_m_extension() {
        let w = (1 << 25) | (3 << 20) | (4 << 15) | (0b100 << 12) | (2 << 7) | 0x33;
        assert_eq!(decode(w).unwrap(), Instr::Div { rd: 2, rs1: 4, rs2: 3 });
    }

    #[test]
    fn decode_system() {
        assert_eq!(decode(0x0000_0073).unwrap(), Instr::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Instr::Ebreak);
    }

    #[test]
    fn undecodable_word_errors() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0).is_err());
    }

    #[test]
    fn shift_immediates() {
        // srai x1, x1, 4
        let w = (0b0100000u32 << 25) | (4 << 20) | (1 << 15) | (0b101 << 12) | (1 << 7) | 0x13;
        assert_eq!(decode(w).unwrap(), Instr::Srai { rd: 1, rs1: 1, shamt: 4 });
    }
}

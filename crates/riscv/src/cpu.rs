//! The RV32IM core: functional execution plus a six-stage timing model.

use crate::bus::Bus;
use crate::isa::{decode, DecodeError, Instr};

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// An `ecall` was executed (the control-program exit convention).
    Ecall,
    /// An `ebreak` was executed.
    Ebreak,
    /// The step budget was exhausted.
    OutOfFuel,
}

/// Timing parameters of the six-stage in-order pipeline (§V-A's RV32IMAC
/// control core). Base CPI is 1; the listed penalties add stall cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineModel {
    /// Extra cycles for a taken branch/jump (fetch redirect).
    pub branch_penalty: u64,
    /// Extra cycles for a load (assume dependent use; conservative).
    pub load_penalty: u64,
    /// Extra cycles for MUL-class instructions.
    pub mul_penalty: u64,
    /// Extra cycles for DIV/REM (iterative divider).
    pub div_penalty: u64,
}

impl Default for PipelineModel {
    fn default() -> PipelineModel {
        PipelineModel { branch_penalty: 2, load_penalty: 1, mul_penalty: 2, div_penalty: 16 }
    }
}

/// The RV32IM CPU.
///
/// # Examples
///
/// ```
/// use fractalcloud_riscv::{assemble, Cpu, SystemBus};
///
/// let prog = assemble("
///     li   a0, 6
///     li   a1, 7
///     mul  a0, a0, a1
///     ecall
/// ").unwrap();
/// let mut bus = SystemBus::new(4096);
/// bus.load_program(0, &prog);
/// let mut cpu = Cpu::new(bus);
/// cpu.run(1000).unwrap();
/// assert_eq!(cpu.reg(10), 42); // a0
/// ```
#[derive(Debug, Clone)]
pub struct Cpu<B: Bus> {
    regs: [u32; 32],
    pc: u32,
    cycles: u64,
    instret: u64,
    timing: PipelineModel,
    bus: B,
}

impl<B: Bus> Cpu<B> {
    /// Creates a CPU with pc = 0 and zeroed registers.
    pub fn new(bus: B) -> Cpu<B> {
        Cpu { regs: [0; 32], pc: 0, cycles: 0, instret: 0, timing: PipelineModel::default(), bus }
    }

    /// Register `x<i>` (x0 always reads 0).
    pub fn reg(&self, i: usize) -> u32 {
        if i == 0 {
            0
        } else {
            self.regs[i]
        }
    }

    /// Sets register `x<i>` (writes to x0 are ignored).
    pub fn set_reg(&mut self, i: usize, v: u32) {
        if i != 0 {
            self.regs[i] = v;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Elapsed pipeline cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Retired instruction count.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// The bus (for inspecting MMIO state after a run).
    pub fn bus(&self) -> &B {
        &self.bus
    }

    /// Mutable bus access.
    pub fn bus_mut(&mut self) -> &mut B {
        &mut self.bus
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on an undecodable word.
    pub fn step(&mut self) -> Result<Option<Halt>, DecodeError> {
        let word = self.bus.load32(self.pc);
        let instr = decode(word).map_err(|mut e| {
            e.pc = self.pc;
            e
        })?;
        let mut next_pc = self.pc.wrapping_add(4);
        let mut penalty = 0u64;
        let t = self.timing;

        macro_rules! rr {
            ($i:expr) => {
                self.reg($i as usize)
            };
        }

        match instr {
            Instr::Lui { rd, imm } => self.set_reg(rd as usize, imm as u32),
            Instr::Auipc { rd, imm } => self.set_reg(rd as usize, self.pc.wrapping_add(imm as u32)),
            Instr::Jal { rd, imm } => {
                self.set_reg(rd as usize, next_pc);
                next_pc = self.pc.wrapping_add(imm as u32);
                penalty = t.branch_penalty;
            }
            Instr::Jalr { rd, rs1, imm } => {
                let target = rr!(rs1).wrapping_add(imm as u32) & !1;
                self.set_reg(rd as usize, next_pc);
                next_pc = target;
                penalty = t.branch_penalty;
            }
            Instr::Beq { rs1, rs2, imm } => {
                if rr!(rs1) == rr!(rs2) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                    penalty = t.branch_penalty;
                }
            }
            Instr::Bne { rs1, rs2, imm } => {
                if rr!(rs1) != rr!(rs2) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                    penalty = t.branch_penalty;
                }
            }
            Instr::Blt { rs1, rs2, imm } => {
                if (rr!(rs1) as i32) < (rr!(rs2) as i32) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                    penalty = t.branch_penalty;
                }
            }
            Instr::Bge { rs1, rs2, imm } => {
                if (rr!(rs1) as i32) >= (rr!(rs2) as i32) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                    penalty = t.branch_penalty;
                }
            }
            Instr::Bltu { rs1, rs2, imm } => {
                if rr!(rs1) < rr!(rs2) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                    penalty = t.branch_penalty;
                }
            }
            Instr::Bgeu { rs1, rs2, imm } => {
                if rr!(rs1) >= rr!(rs2) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                    penalty = t.branch_penalty;
                }
            }
            Instr::Lb { rd, rs1, imm } => {
                let v = self.bus.load8(rr!(rs1).wrapping_add(imm as u32)) as i8 as i32 as u32;
                self.set_reg(rd as usize, v);
                penalty = t.load_penalty;
            }
            Instr::Lh { rd, rs1, imm } => {
                let v = self.bus.load16(rr!(rs1).wrapping_add(imm as u32)) as i16 as i32 as u32;
                self.set_reg(rd as usize, v);
                penalty = t.load_penalty;
            }
            Instr::Lw { rd, rs1, imm } => {
                let v = self.bus.load32(rr!(rs1).wrapping_add(imm as u32));
                self.set_reg(rd as usize, v);
                penalty = t.load_penalty;
            }
            Instr::Lbu { rd, rs1, imm } => {
                let v = self.bus.load8(rr!(rs1).wrapping_add(imm as u32)) as u32;
                self.set_reg(rd as usize, v);
                penalty = t.load_penalty;
            }
            Instr::Lhu { rd, rs1, imm } => {
                let v = self.bus.load16(rr!(rs1).wrapping_add(imm as u32)) as u32;
                self.set_reg(rd as usize, v);
                penalty = t.load_penalty;
            }
            Instr::Sb { rs1, rs2, imm } => {
                self.bus.store8(rr!(rs1).wrapping_add(imm as u32), rr!(rs2) as u8)
            }
            Instr::Sh { rs1, rs2, imm } => {
                self.bus.store16(rr!(rs1).wrapping_add(imm as u32), rr!(rs2) as u16)
            }
            Instr::Sw { rs1, rs2, imm } => {
                self.bus.store32(rr!(rs1).wrapping_add(imm as u32), rr!(rs2))
            }
            Instr::Addi { rd, rs1, imm } => {
                self.set_reg(rd as usize, rr!(rs1).wrapping_add(imm as u32))
            }
            Instr::Slti { rd, rs1, imm } => {
                self.set_reg(rd as usize, ((rr!(rs1) as i32) < imm) as u32)
            }
            Instr::Sltiu { rd, rs1, imm } => {
                self.set_reg(rd as usize, (rr!(rs1) < imm as u32) as u32)
            }
            Instr::Xori { rd, rs1, imm } => self.set_reg(rd as usize, rr!(rs1) ^ imm as u32),
            Instr::Ori { rd, rs1, imm } => self.set_reg(rd as usize, rr!(rs1) | imm as u32),
            Instr::Andi { rd, rs1, imm } => self.set_reg(rd as usize, rr!(rs1) & imm as u32),
            Instr::Slli { rd, rs1, shamt } => self.set_reg(rd as usize, rr!(rs1) << shamt),
            Instr::Srli { rd, rs1, shamt } => self.set_reg(rd as usize, rr!(rs1) >> shamt),
            Instr::Srai { rd, rs1, shamt } => {
                self.set_reg(rd as usize, ((rr!(rs1) as i32) >> shamt) as u32)
            }
            Instr::Add { rd, rs1, rs2 } => {
                self.set_reg(rd as usize, rr!(rs1).wrapping_add(rr!(rs2)))
            }
            Instr::Sub { rd, rs1, rs2 } => {
                self.set_reg(rd as usize, rr!(rs1).wrapping_sub(rr!(rs2)))
            }
            Instr::Sll { rd, rs1, rs2 } => self.set_reg(rd as usize, rr!(rs1) << (rr!(rs2) & 31)),
            Instr::Slt { rd, rs1, rs2 } => {
                self.set_reg(rd as usize, ((rr!(rs1) as i32) < (rr!(rs2) as i32)) as u32)
            }
            Instr::Sltu { rd, rs1, rs2 } => self.set_reg(rd as usize, (rr!(rs1) < rr!(rs2)) as u32),
            Instr::Xor { rd, rs1, rs2 } => self.set_reg(rd as usize, rr!(rs1) ^ rr!(rs2)),
            Instr::Srl { rd, rs1, rs2 } => self.set_reg(rd as usize, rr!(rs1) >> (rr!(rs2) & 31)),
            Instr::Sra { rd, rs1, rs2 } => {
                self.set_reg(rd as usize, ((rr!(rs1) as i32) >> (rr!(rs2) & 31)) as u32)
            }
            Instr::Or { rd, rs1, rs2 } => self.set_reg(rd as usize, rr!(rs1) | rr!(rs2)),
            Instr::And { rd, rs1, rs2 } => self.set_reg(rd as usize, rr!(rs1) & rr!(rs2)),
            Instr::Mul { rd, rs1, rs2 } => {
                self.set_reg(rd as usize, rr!(rs1).wrapping_mul(rr!(rs2)));
                penalty = t.mul_penalty;
            }
            Instr::Mulh { rd, rs1, rs2 } => {
                let v = ((rr!(rs1) as i32 as i64) * (rr!(rs2) as i32 as i64)) >> 32;
                self.set_reg(rd as usize, v as u32);
                penalty = t.mul_penalty;
            }
            Instr::Mulhsu { rd, rs1, rs2 } => {
                let v = ((rr!(rs1) as i32 as i64) * (rr!(rs2) as u64 as i64)) >> 32;
                self.set_reg(rd as usize, v as u32);
                penalty = t.mul_penalty;
            }
            Instr::Mulhu { rd, rs1, rs2 } => {
                let v = ((rr!(rs1) as u64) * (rr!(rs2) as u64)) >> 32;
                self.set_reg(rd as usize, v as u32);
                penalty = t.mul_penalty;
            }
            Instr::Div { rd, rs1, rs2 } => {
                let a = rr!(rs1) as i32;
                let b = rr!(rs2) as i32;
                let v = if b == 0 {
                    -1i32
                } else if a == i32::MIN && b == -1 {
                    i32::MIN // RISC-V overflow semantics
                } else {
                    a / b
                };
                self.set_reg(rd as usize, v as u32);
                penalty = t.div_penalty;
            }
            Instr::Divu { rd, rs1, rs2 } => {
                let b = rr!(rs2);
                let v = rr!(rs1).checked_div(b).unwrap_or(u32::MAX);
                self.set_reg(rd as usize, v);
                penalty = t.div_penalty;
            }
            Instr::Rem { rd, rs1, rs2 } => {
                let a = rr!(rs1) as i32;
                let b = rr!(rs2) as i32;
                let v = if b == 0 {
                    a
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    a % b
                };
                self.set_reg(rd as usize, v as u32);
                penalty = t.div_penalty;
            }
            Instr::Remu { rd, rs1, rs2 } => {
                let b = rr!(rs2);
                let v = if b == 0 { rr!(rs1) } else { rr!(rs1) % b };
                self.set_reg(rd as usize, v);
                penalty = t.div_penalty;
            }
            Instr::Fence => {}
            Instr::Ecall => {
                self.cycles += 1;
                self.instret += 1;
                return Ok(Some(Halt::Ecall));
            }
            Instr::Ebreak => {
                self.cycles += 1;
                self.instret += 1;
                return Ok(Some(Halt::Ebreak));
            }
        }

        self.pc = next_pc;
        self.cycles += 1 + penalty;
        self.instret += 1;
        Ok(None)
    }

    /// Runs until `ecall`/`ebreak` or `fuel` instructions.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on an undecodable word.
    pub fn run(&mut self, fuel: u64) -> Result<Halt, DecodeError> {
        for _ in 0..fuel {
            if let Some(h) = self.step()? {
                return Ok(h);
            }
        }
        Ok(Halt::OutOfFuel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::bus::SystemBus;

    fn run_asm(src: &str) -> Cpu<SystemBus> {
        let prog = assemble(src).expect("assembles");
        let mut bus = SystemBus::new(1 << 16);
        bus.load_program(0, &prog);
        let mut cpu = Cpu::new(bus);
        let halt = cpu.run(1_000_000).expect("no decode error");
        assert_eq!(halt, Halt::Ecall, "program must end in ecall");
        cpu
    }

    #[test]
    fn arithmetic_basics() {
        let cpu = run_asm(
            "li a0, 10
             li a1, 3
             add a2, a0, a1
             sub a3, a0, a1
             mul a4, a0, a1
             div a5, a0, a1
             rem a6, a0, a1
             ecall",
        );
        assert_eq!(cpu.reg(12), 13);
        assert_eq!(cpu.reg(13), 7);
        assert_eq!(cpu.reg(14), 30);
        assert_eq!(cpu.reg(15), 3);
        assert_eq!(cpu.reg(16), 1);
    }

    #[test]
    fn division_edge_cases_match_spec() {
        let cpu = run_asm(
            "li a0, 5
             li a1, 0
             div a2, a0, a1      # /0 -> -1
             rem a3, a0, a1      # %0 -> a0
             li a4, -2147483648
             li a5, -1
             div a6, a4, a5      # overflow -> INT_MIN
             rem a7, a4, a5      # overflow -> 0
             ecall",
        );
        assert_eq!(cpu.reg(12) as i32, -1);
        assert_eq!(cpu.reg(13), 5);
        assert_eq!(cpu.reg(16), i32::MIN as u32);
        assert_eq!(cpu.reg(17), 0);
    }

    #[test]
    fn loop_computes_fibonacci() {
        let cpu = run_asm(
            "li a0, 0
             li a1, 1
             li t0, 10          # iterations
            loop:
             add t1, a0, a1
             mv a0, a1
             mv a1, t1
             addi t0, t0, -1
             bne t0, zero, loop
             ecall",
        );
        // fib: after 10 iterations from (0,1): a0 = fib(10) = 55.
        assert_eq!(cpu.reg(10), 55);
    }

    #[test]
    fn memory_store_load_round_trip() {
        let cpu = run_asm(
            "li t0, 4096
             li t1, -123
             sw t1, 0(t0)
             lw a0, 0(t0)
             lb a1, 0(t0)
             lbu a2, 0(t0)
             ecall",
        );
        assert_eq!(cpu.reg(10) as i32, -123);
        assert_eq!(cpu.reg(11) as i32, -123i8 as i32);
        assert_eq!(cpu.reg(12), (-123i8 as u8) as u32);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let cpu = run_asm(
            "li t0, 99
             add zero, t0, t0
             mv a0, zero
             ecall",
        );
        assert_eq!(cpu.reg(10), 0);
    }

    #[test]
    fn branch_penalty_shows_in_cycles() {
        // Straight-line vs loop with the same instruction count.
        let straight = run_asm("nop\nnop\nnop\nnop\nnop\nnop\necall");
        let loopy = run_asm(
            "li t0, 3
            l: addi t0, t0, -1
             bne t0, zero, l
             ecall",
        );
        let straight_cpi = straight.cycles() as f64 / straight.instret() as f64;
        let loopy_cpi = loopy.cycles() as f64 / loopy.instret() as f64;
        assert!(loopy_cpi > straight_cpi, "taken branches must cost extra");
    }

    #[test]
    fn shifts_and_logic() {
        let cpu = run_asm(
            "li a0, -16
             srai a1, a0, 2
             srli a2, a0, 28
             slli a3, a0, 1
             li t0, 0xf0
             andi a4, t0, 0x3c
             ori  a5, t0, 0x0f
             xori a6, t0, 0xff
             ecall",
        );
        assert_eq!(cpu.reg(11) as i32, -4);
        assert_eq!(cpu.reg(12), 0xf);
        assert_eq!(cpu.reg(13) as i32, -32);
        assert_eq!(cpu.reg(14), 0x30);
        assert_eq!(cpu.reg(15), 0xff);
        assert_eq!(cpu.reg(16), 0x0f);
    }

    #[test]
    fn jal_and_jalr_link() {
        let cpu = run_asm(
            "jal ra, target
             ecall
            target:
             li a0, 7
             jalr zero, ra, 0",
        );
        assert_eq!(cpu.reg(10), 7);
        assert_eq!(cpu.reg(1), 4); // return address after the jal
    }

    #[test]
    fn mulh_variants() {
        let cpu = run_asm(
            "li a0, -1
             li a1, -1
             mulh a2, a0, a1     # (-1)*(-1) high = 0
             mulhu a3, a0, a1    # max*max high = 0xfffffffe
             mulhsu a4, a0, a1   # -1 * max(unsigned) high = -1
             ecall",
        );
        assert_eq!(cpu.reg(12), 0);
        assert_eq!(cpu.reg(13), 0xffff_fffe);
        assert_eq!(cpu.reg(14), 0xffff_ffff);
    }

    #[test]
    fn decode_error_reports_pc() {
        let mut bus = SystemBus::new(64);
        bus.store32(0, 0xffff_ffff);
        let mut cpu = Cpu::new(bus);
        let err = cpu.step().unwrap_err();
        assert_eq!(err.pc, 0);
    }
}

//! Canned control programs for the configuration module.
//!
//! These helpers generate the assembly a driver would run on the RV32IM
//! core to configure the accelerator's units, exercising the full
//! core → MMIO → configuration-module → packet path end to end.

use crate::bus::{config_regs, CONFIG_MMIO_BASE};

/// Generates a program that configures the fractal engine for a partition
/// run: threshold `th`, point-buffer base `base`, `count` points, mode
/// (0 = fractal, 1 = uniform, 2 = KD-tree).
pub fn configure_fractal_engine(th: u32, base: u32, count: u32, mode: u32) -> String {
    let mmio = CONFIG_MMIO_BASE;
    let sel = config_regs::MODULE_SEL;
    let fifo = config_regs::DATA_FIFO;
    let commit = config_regs::COMMIT;
    format!(
        "# configure fractal engine: th={th} base={base:#x} count={count} mode={mode}
         li t0, {mmio:#x}
         li t1, 0            # MODULE_SEL = fractal engine
         sw t1, {sel}(t0)
         li t1, {th}
         sw t1, {fifo}(t0)
         li t1, {base:#x}
         sw t1, {fifo}(t0)
         li t1, {count}
         sw t1, {fifo}(t0)
         li t1, {mode}
         sw t1, {fifo}(t0)
         sw zero, {commit}(t0)
         ecall"
    )
}

/// Generates a program that launches a block-parallel point operation on
/// the RSPU array: `op` (0 = FPS, 1 = ball query, 2 = KNN), search-space
/// base/length, center count, neighbors, and the radius bit pattern.
pub fn configure_rspu(
    op: u32,
    space_base: u32,
    space_len: u32,
    centers: u32,
    num: u32,
    radius_bits: u32,
) -> String {
    let mmio = CONFIG_MMIO_BASE;
    let sel = config_regs::MODULE_SEL;
    let fifo = config_regs::DATA_FIFO;
    let commit = config_regs::COMMIT;
    format!(
        "# configure RSPU: op={op}
         li t0, {mmio:#x}
         li t1, 1            # MODULE_SEL = RSPU
         sw t1, {sel}(t0)
         li t1, {op}
         sw t1, {fifo}(t0)
         li t1, {space_base:#x}
         sw t1, {fifo}(t0)
         li t1, {space_len}
         sw t1, {fifo}(t0)
         li t1, {centers}
         sw t1, {fifo}(t0)
         li t1, {num}
         sw t1, {fifo}(t0)
         li t1, {radius_bits:#x}
         sw t1, {fifo}(t0)
         sw zero, {commit}(t0)
         ecall"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::bus::{SystemBus, TargetModule};
    use crate::cpu::{Cpu, Halt};

    fn run(src: &str) -> Cpu<SystemBus> {
        let prog = assemble(src).expect("assembles");
        let mut bus = SystemBus::new(1 << 16);
        bus.load_program(0, &prog);
        let mut cpu = Cpu::new(bus);
        assert_eq!(cpu.run(10_000).unwrap(), Halt::Ecall);
        cpu
    }

    #[test]
    fn fractal_engine_config_dispatches_one_packet() {
        let mut cpu = run(&configure_fractal_engine(256, 0x1000, 289_000, 0));
        let pkt = cpu.bus_mut().config.pop_packet().expect("one packet");
        assert_eq!(pkt.target, TargetModule::FractalEngine);
        assert_eq!(pkt.words, vec![256, 0x1000, 289_000, 0]);
        assert!(cpu.bus_mut().config.pop_packet().is_none());
    }

    #[test]
    fn rspu_config_carries_all_six_words() {
        let mut cpu = run(&configure_rspu(1, 0x2000, 512, 128, 16, 0x3e4c_cccd));
        let pkt = cpu.bus_mut().config.pop_packet().expect("one packet");
        assert_eq!(pkt.target, TargetModule::Rspu);
        assert_eq!(pkt.words, vec![1, 0x2000, 512, 128, 16, 0x3e4c_cccd]);
    }

    #[test]
    fn back_to_back_configs_queue_in_order() {
        let a = configure_fractal_engine(64, 0, 1024, 0);
        // strip the ecall from the first program and concatenate.
        let a = a.replace("ecall", "");
        let b = configure_rspu(0, 0, 0, 256, 1, 0);
        let mut cpu = run(&format!("{a}\n{b}"));
        let first = cpu.bus_mut().config.pop_packet().unwrap();
        let second = cpu.bus_mut().config.pop_packet().unwrap();
        assert_eq!(first.target, TargetModule::FractalEngine);
        assert_eq!(second.target, TargetModule::Rspu);
    }
}

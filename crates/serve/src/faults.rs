//! Deterministic, seeded fault injection for the serving layer.
//!
//! A [`FaultPlan`] names *where* faults strike (injection points: worker
//! execute, block task, cache insert, net read/write), *what* strikes
//! (panic, fixed delay, injected error), and *how often* (a per-million
//! rate), all driven by one seed. The decision for draw `i` at point `p`
//! is a pure function of `(seed, p, i)` — two engines configured with the
//! same plan and offered the same request sequence inject the same faults,
//! which is what makes chaos tests reproducible.
//!
//! The layer is **off by default and zero-cost when disabled**: an engine
//! whose plan is [`FaultPlan::OFF`] carries no [`FaultLayer`] at all, so
//! every injection site reduces to one `Option` discriminant test.
//!
//! # Grammar
//!
//! `FRACTALCLOUD_FAULTS` (and [`FaultPlan::parse`]) accept a spec of the
//! form:
//!
//! ```text
//! panic@worker:0.01,delay@block:5ms:0.05,err@net_write:0.02;seed=42
//! ```
//!
//! i.e. `;`-separated sections, each either `seed=N` or a comma-separated
//! list of `kind@point:rate` atoms — `delay` atoms carry their duration
//! before the rate (`delay@point:5ms:0.05`; `us`, `ms` and `s` suffixes).
//! Kinds: `panic`, `delay`, `err`. Points: `worker`, `block`,
//! `cache_insert`, `net_read`, `net_write`, `credit_stall`. Rates are
//! probabilities in `[0, 1]`, stored to parts-per-million precision.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Number of injection points (the length of [`FaultPoint::ALL`]).
pub const FAULT_POINTS: usize = 6;

/// Where in the serving path a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Worker batch execution, drawn once per batch before it runs.
    Worker,
    /// One per-block task (sampling + grouping of a single block).
    Block,
    /// A partition-cache insert (an injected `err` drops the insert —
    /// correctness is unaffected, the next request just misses).
    CacheInsert,
    /// A TCP request read on the server side.
    NetRead,
    /// A TCP response write on the server side.
    NetWrite,
    /// A streaming credit-wait poll: an injected `delay` models a viewer
    /// that stops sending `STREAM_CREDIT` (the slow-consumer stall the
    /// stream deadline must bound); an injected `err` drops the control
    /// read as if the socket died.
    CreditStall,
}

impl FaultPoint {
    /// Every injection point, in [`FaultPoint::index`] order.
    pub const ALL: [FaultPoint; FAULT_POINTS] = [
        FaultPoint::Worker,
        FaultPoint::Block,
        FaultPoint::CacheInsert,
        FaultPoint::NetRead,
        FaultPoint::NetWrite,
        FaultPoint::CreditStall,
    ];

    /// Dense index (0..[`FAULT_POINTS`]).
    pub fn index(self) -> usize {
        match self {
            FaultPoint::Worker => 0,
            FaultPoint::Block => 1,
            FaultPoint::CacheInsert => 2,
            FaultPoint::NetRead => 3,
            FaultPoint::NetWrite => 4,
            FaultPoint::CreditStall => 5,
        }
    }

    /// The grammar name (`worker`, `block`, `cache_insert`, `net_read`,
    /// `net_write`, `credit_stall`).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::Worker => "worker",
            FaultPoint::Block => "block",
            FaultPoint::CacheInsert => "cache_insert",
            FaultPoint::NetRead => "net_read",
            FaultPoint::NetWrite => "net_write",
            FaultPoint::CreditStall => "credit_stall",
        }
    }

    fn from_name(name: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// What an injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic on the executing thread (exercises unwind isolation).
    Panic,
    /// Sleep for the point's configured delay, then proceed normally
    /// (results are unaffected — the kind that can soak a whole test
    /// suite without changing any assertion).
    Delay,
    /// Report an injected error to the caller (internal-error response at
    /// engine points, synthetic IO error at net points, dropped insert at
    /// the cache point).
    Err,
}

impl FaultKind {
    const ALL: [FaultKind; 3] = [FaultKind::Panic, FaultKind::Delay, FaultKind::Err];

    fn index(self) -> usize {
        match self {
            FaultKind::Panic => 0,
            FaultKind::Delay => 1,
            FaultKind::Err => 2,
        }
    }

    fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Delay => "delay",
            FaultKind::Err => "err",
        }
    }

    fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// A complete, value-semantic fault-injection configuration.
///
/// Rates are stored in parts per million and delays in microseconds so the
/// plan is `Copy + Eq` and can ride inside
/// [`ServeConfig`](crate::ServeConfig) without breaking its equality
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed every injection decision derives from.
    pub seed: u64,
    /// `rates_ppm[point][kind]`: injection probability in parts per million.
    rates_ppm: [[u32; 3]; FAULT_POINTS],
    /// Per-point delay for [`FaultKind::Delay`], in microseconds.
    delay_us: [u64; FAULT_POINTS],
}

impl FaultPlan {
    /// The disabled plan (every rate zero) — the default everywhere.
    pub const OFF: FaultPlan =
        FaultPlan { seed: 0, rates_ppm: [[0; 3]; FAULT_POINTS], delay_us: [0; FAULT_POINTS] };

    /// Whether every rate is zero (the layer is then not instantiated).
    pub fn is_off(&self) -> bool {
        self.rates_ppm.iter().all(|kinds| kinds.iter().all(|&r| r == 0))
    }

    /// Returns `self` with `kind@point` firing at probability `rate`
    /// (clamped to `[0, 1]`, parts-per-million precision). For
    /// [`FaultKind::Delay`] also set [`FaultPlan::with_delay`].
    pub fn with_fault(mut self, kind: FaultKind, point: FaultPoint, rate: f64) -> FaultPlan {
        self.rates_ppm[point.index()][kind.index()] =
            (rate.clamp(0.0, 1.0) * 1_000_000.0).round() as u32;
        self
    }

    /// Returns `self` with the injected-delay duration for `point`.
    pub fn with_delay(mut self, point: FaultPoint, delay: Duration) -> FaultPlan {
        self.delay_us[point.index()] = delay.as_micros().min(u128::from(u64::MAX)) as u64;
        self
    }

    /// Returns `self` with the given seed.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Parses the `FRACTALCLOUD_FAULTS` grammar (see the module docs).
    /// An empty (or all-whitespace) spec parses to [`FaultPlan::OFF`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed atom.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::OFF;
        for section in spec.split(';') {
            let section = section.trim();
            if section.is_empty() {
                continue;
            }
            if let Some(seed) = section.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed `{seed}` (expected an unsigned integer)"))?;
                continue;
            }
            for atom in section.split(',') {
                let atom = atom.trim();
                if atom.is_empty() {
                    continue;
                }
                plan = plan.parse_atom(atom)?;
            }
        }
        Ok(plan)
    }

    fn parse_atom(mut self, atom: &str) -> Result<FaultPlan, String> {
        let (kind, rest) = atom
            .split_once('@')
            .ok_or_else(|| format!("bad fault atom `{atom}` (expected kind@point:rate)"))?;
        let kind = FaultKind::from_name(kind.trim())
            .ok_or_else(|| format!("unknown fault kind `{kind}` (panic, delay or err)"))?;
        let (point, args) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad fault atom `{atom}` (missing `:rate`)"))?;
        let point = FaultPoint::from_name(point.trim()).ok_or_else(|| {
            format!(
                "unknown fault point `{point}` (worker, block, cache_insert, net_read, \
                 net_write, credit_stall)"
            )
        })?;
        let rate_str = match kind {
            FaultKind::Delay => {
                let (delay, rate) = args
                    .split_once(':')
                    .ok_or_else(|| format!("bad delay atom `{atom}` (expected duration:rate)"))?;
                self = self.with_delay(point, parse_duration(delay.trim())?);
                rate
            }
            FaultKind::Panic | FaultKind::Err => args,
        };
        let rate: f64 = rate_str
            .trim()
            .parse()
            .map_err(|_| format!("bad rate `{rate_str}` (expected a number in [0, 1])"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("rate {rate} outside [0, 1]"));
        }
        Ok(self.with_fault(kind, point, rate))
    }

    /// The process-wide plan from `FRACTALCLOUD_FAULTS`, resolved once.
    /// A malformed spec disables injection (with a stderr warning) rather
    /// than taking the server down.
    pub fn from_env() -> FaultPlan {
        static PLAN: OnceLock<FaultPlan> = OnceLock::new();
        *PLAN.get_or_init(|| match std::env::var("FRACTALCLOUD_FAULTS") {
            Ok(spec) => FaultPlan::parse(&spec).unwrap_or_else(|e| {
                eprintln!("FRACTALCLOUD_FAULTS ignored: {e}");
                FaultPlan::OFF
            }),
            Err(_) => FaultPlan::OFF,
        })
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::OFF
    }
}

/// One stage of the splitmix64 output mix — a well-dispersed, cheap,
/// dependency-free 64-bit permutation.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The live injection state an engine carries when its plan is enabled.
///
/// Each point keeps an atomic draw counter, so decision `i` at a point is
/// the pure function `splitmix64(seed, point, i)` — deterministic per
/// engine regardless of which worker thread asks.
#[derive(Debug)]
pub struct FaultLayer {
    plan: FaultPlan,
    draws: [AtomicU64; FAULT_POINTS],
    injected: [AtomicU64; FAULT_POINTS],
}

impl FaultLayer {
    /// Builds the layer for `plan`, or `None` when the plan is off — the
    /// `None` is what makes disabled injection one branch per site.
    pub fn new(plan: FaultPlan) -> Option<Arc<FaultLayer>> {
        if plan.is_off() {
            None
        } else {
            Some(Arc::new(FaultLayer {
                plan,
                draws: std::array::from_fn(|_| AtomicU64::new(0)),
                injected: std::array::from_fn(|_| AtomicU64::new(0)),
            }))
        }
    }

    /// Total faults injected at `point` so far.
    pub fn injected_at(&self, point: FaultPoint) -> u64 {
        self.injected[point.index()].load(Ordering::Relaxed)
    }

    /// Draws the next decision for `point`. An injected **delay** is slept
    /// right here; an injected **panic** unwinds from here (message
    /// `injected fault: panic@<point>`); an injected **err** returns
    /// `true`, leaving the caller to fail the operation in its own idiom.
    pub fn fire(&self, point: FaultPoint) -> bool {
        let p = point.index();
        let idx = self.draws[p].fetch_add(1, Ordering::Relaxed);
        let word = splitmix64(self.plan.seed ^ splitmix64(((p as u64) << 56) | idx));
        let roll = (word % 1_000_000) as u32;
        // Disjoint windows over one uniform draw give each kind its
        // configured marginal rate (for the sane regime where the rates at
        // one point sum below 1).
        let [panic_ppm, delay_ppm, err_ppm] = self.plan.rates_ppm[p];
        if roll < panic_ppm {
            self.injected[p].fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: panic@{}", point.name());
        }
        if roll < panic_ppm.saturating_add(delay_ppm) {
            self.injected[p].fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(self.plan.delay_us[p]));
            return false;
        }
        if roll < panic_ppm.saturating_add(delay_ppm).saturating_add(err_ppm) {
            self.injected[p].fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// Parses `5ms` / `250us` / `1s` style durations.
fn parse_duration(s: &str) -> Result<Duration, String> {
    let num = |d: &str| {
        d.parse::<u64>().map_err(|_| format!("bad duration `{s}` (expected e.g. 5ms, 250us, 1s)"))
    };
    if let Some(d) = s.strip_suffix("us") {
        return Ok(Duration::from_micros(num(d)?));
    }
    if let Some(d) = s.strip_suffix("ms") {
        return Ok(Duration::from_millis(num(d)?));
    }
    if let Some(d) = s.strip_suffix('s') {
        return Ok(Duration::from_secs(num(d)?));
    }
    Err(format!("bad duration `{s}` (expected a us/ms/s suffix)"))
}

/// The one-branch disabled path: draws from the layer when present,
/// constant `false` when the engine runs fault-free.
#[inline]
pub(crate) fn fire(layer: &Option<Arc<FaultLayer>>, point: FaultPoint) -> bool {
    match layer {
        None => false,
        Some(l) => {
            let fired = l.fire(point);
            if fired {
                // Injected faults land in the flight recorder too, so a
                // chaos run's trace shows *which* request each fault hit.
                fractalcloud_obs::event(
                    fractalcloud_obs::SpanKind::FaultFire,
                    point.index() as u32,
                );
            }
            fired
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_parses_and_builds_no_layer() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::OFF);
        assert!(FaultPlan::OFF.is_off());
        assert!(FaultLayer::new(FaultPlan::OFF).is_none());
        assert_eq!(FaultPlan::default(), FaultPlan::OFF);
    }

    #[test]
    fn grammar_round_trips_the_documented_example() {
        let plan =
            FaultPlan::parse("panic@worker:0.01,delay@block:5ms:0.05,err@net_write:0.02;seed=42")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rates_ppm[FaultPoint::Worker.index()][FaultKind::Panic.index()], 10_000);
        assert_eq!(plan.rates_ppm[FaultPoint::Block.index()][FaultKind::Delay.index()], 50_000);
        assert_eq!(plan.delay_us[FaultPoint::Block.index()], 5_000);
        assert_eq!(plan.rates_ppm[FaultPoint::NetWrite.index()][FaultKind::Err.index()], 20_000);
        assert!(!plan.is_off());

        let built = FaultPlan::OFF
            .with_fault(FaultKind::Panic, FaultPoint::Worker, 0.01)
            .with_fault(FaultKind::Delay, FaultPoint::Block, 0.05)
            .with_delay(FaultPoint::Block, Duration::from_millis(5))
            .with_fault(FaultKind::Err, FaultPoint::NetWrite, 0.02)
            .with_seed(42);
        assert_eq!(plan, built, "grammar and builder agree");
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "panic@worker",             // missing rate
            "explode@worker:0.5",       // unknown kind
            "panic@gpu:0.5",            // unknown point
            "panic@worker:1.5",         // rate out of range
            "delay@worker:0.5",         // delay without duration
            "delay@worker:5parsec:0.5", // unknown duration unit
            "seed=banana",              // non-numeric seed
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn draws_are_deterministic_per_seed_and_point() {
        let plan = FaultPlan::OFF.with_fault(FaultKind::Err, FaultPoint::NetRead, 0.3).with_seed(7);
        let decisions = |plan| {
            let layer = FaultLayer::new(plan).unwrap();
            (0..256).map(|_| layer.fire(FaultPoint::NetRead)).collect::<Vec<bool>>()
        };
        let a = decisions(plan);
        assert_eq!(a, decisions(plan), "same seed, same decision stream");
        assert_ne!(a, decisions(plan.with_seed(8)), "different seed diverges");
        let hits = a.iter().filter(|&&e| e).count();
        assert!((32..=128).contains(&hits), "≈30% of 256 draws, got {hits}");
    }

    #[test]
    fn injected_panics_unwind_with_the_point_name() {
        let plan =
            FaultPlan::OFF.with_fault(FaultKind::Panic, FaultPoint::Worker, 1.0).with_seed(1);
        let layer = FaultLayer::new(plan).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            layer.fire(FaultPoint::Worker)
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("panic@worker"), "got `{msg}`");
        assert_eq!(layer.injected_at(FaultPoint::Worker), 1);
    }
}

//! LRU cache of built partitions, keyed by frame hash.
//!
//! Streaming workloads re-send frames: static scenes between keyframes,
//! retries, multi-query analysis of the same scan. The partition is the
//! expensive, *deterministic* half of a pipeline run — identical coordinate
//! bytes and threshold always produce the identical
//! [`FractalResult`](fractalcloud_core::FractalResult) — so cached entries
//! are shared by `Arc` and reused without any equivalence risk.

use fractalcloud_core::{fnv1a64, FractalResult, PipelineOutput, FNV1A64_SEED};
use fractalcloud_pointcloud::PointCloud;
use std::collections::HashMap;
use std::sync::Arc;

/// Hashes the coordinate bits of `cloud` together with the partition
/// threshold (the shared [`fnv1a64`] word fold over the raw `f32` bit
/// patterns, so `-0.0 != 0.0` and NaN payloads are distinguished — bit
/// identity, not float equality). With a 64-bit key over a
/// tens-of-entries cache, an accidental collision is a ≈2⁻⁵⁸-per-pair
/// event — negligible next to the hardware's own error rates.
pub fn frame_key(cloud: &PointCloud, threshold: usize) -> u64 {
    let mut h = fnv1a64(FNV1A64_SEED, threshold as u64);
    h = fnv1a64(h, cloud.len() as u64);
    for axis in [cloud.xs(), cloud.ys(), cloud.zs()] {
        for v in axis {
            h = fnv1a64(h, u64::from(v.to_bits()));
        }
    }
    h
}

/// A small LRU map from [`frame_key`] to shared [`FractalResult`]s, with a
/// sibling map of full-depth [`PipelineOutput`]s (the progressive-LOD
/// quality orderings streaming slices from).
///
/// Recency is tracked with a monotonic tick per entry — O(capacity) scan on
/// eviction, which is the right trade for the tens-of-entries capacities a
/// partition cache wants (entries are megabytes; the map is tiny). The
/// ordering map shares the tick and the capacity budget but evicts
/// independently: a partition can outlive its ordering and vice versa,
/// because either half alone still saves real work.
#[derive(Debug)]
pub struct PartitionCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, (u64, Arc<FractalResult>)>,
    orders: HashMap<u64, (u64, Arc<PipelineOutput>)>,
}

impl PartitionCache {
    /// Creates a cache holding at most `capacity` partitions (0 disables
    /// caching: every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> PartitionCache {
        PartitionCache { capacity, tick: 0, entries: HashMap::new(), orders: HashMap::new() }
    }

    /// Looks up a partition, refreshing its recency on hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<FractalResult>> {
        self.tick += 1;
        let tick = self.tick;
        let (at, v) = self.entries.get_mut(&key)?;
        *at = tick;
        Some(Arc::clone(v))
    }

    /// Inserts a partition, evicting the least-recently-used entry when at
    /// capacity.
    ///
    /// Recency is bumped on insert exactly as on [`PartitionCache::get`]:
    /// a re-insert of a present key is a pure refresh-and-replace — it can
    /// never evict anything (the update path is separated from the
    /// eviction path below, so the at-capacity check only ever sees
    /// genuinely new keys), and it moves the key to most-recently-used.
    pub fn insert(&mut self, key: u64, value: Arc<FractalResult>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            // Present key: refresh recency and replace the value in place.
            *entry = (self.tick, value);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(&oldest) =
                self.entries.iter().min_by_key(|(_, (at, _))| *at).map(|(k, _)| k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.tick, value));
    }

    /// Looks up a cached full-depth pipeline output (the quality ordering a
    /// stream slices from), refreshing its recency on hit. Keys are the
    /// caller's business — the engine folds the frame key with the pipeline
    /// compatibility key so distinct configs never alias.
    pub fn get_order(&mut self, key: u64) -> Option<Arc<PipelineOutput>> {
        self.tick += 1;
        let tick = self.tick;
        let (at, v) = self.orders.get_mut(&key)?;
        *at = tick;
        Some(Arc::clone(v))
    }

    /// Inserts a full-depth pipeline output under the same tick-LRU
    /// discipline as [`PartitionCache::insert`] (shared tick, same capacity
    /// bound, independent eviction).
    pub fn insert_order(&mut self, key: u64, value: Arc<PipelineOutput>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(entry) = self.orders.get_mut(&key) {
            *entry = (self.tick, value);
            return;
        }
        if self.orders.len() >= self.capacity {
            if let Some(&oldest) = self.orders.iter().min_by_key(|(_, (at, _))| *at).map(|(k, _)| k)
            {
                self.orders.remove(&oldest);
            }
        }
        self.orders.insert(key, (self.tick, value));
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of cached full-depth orderings.
    pub fn orders_len(&self) -> usize {
        self.orders.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.orders.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_core::Fractal;
    use fractalcloud_pointcloud::generate::uniform_cube;
    use fractalcloud_pointcloud::Point3;

    fn built(n: usize, seed: u64) -> Arc<FractalResult> {
        Arc::new(Fractal::with_threshold(64).build(&uniform_cube(n, seed)).unwrap())
    }

    #[test]
    fn frame_key_separates_clouds_and_thresholds() {
        let a = uniform_cube(256, 1);
        let b = uniform_cube(256, 2);
        assert_eq!(frame_key(&a, 64), frame_key(&a.clone(), 64));
        assert_ne!(frame_key(&a, 64), frame_key(&b, 64));
        assert_ne!(frame_key(&a, 64), frame_key(&a, 128));
    }

    #[test]
    fn frame_key_is_bitwise_not_float_equality() {
        let pos = PointCloud::from_points(vec![Point3::new(0.0, 0.0, 0.0)]);
        let neg = PointCloud::from_points(vec![Point3::new(-0.0, 0.0, 0.0)]);
        assert_ne!(frame_key(&pos, 64), frame_key(&neg, 64));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PartitionCache::new(2);
        c.insert(1, built(100, 1));
        c.insert(2, built(100, 2));
        assert!(c.get(1).is_some()); // refresh 1 → 2 is now LRU
        c.insert(3, built(100, 3));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut c = PartitionCache::new(2);
        c.insert(1, built(100, 1));
        c.insert(2, built(100, 2));
        c.insert(2, built(100, 2));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_some());
    }

    #[test]
    fn reinsert_refreshes_recency_like_get() {
        // Insert must bump the tick exactly as get does: after re-inserting
        // key 1, key 2 is the LRU and is the one evicted by key 3.
        let mut c = PartitionCache::new(2);
        c.insert(1, built(100, 1));
        c.insert(2, built(100, 2));
        c.insert(1, built(100, 1)); // refresh via insert, not get
        c.insert(3, built(100, 3));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "2 was least-recently-used after 1's re-insert");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn reinsert_at_capacity_replaces_value_without_evicting() {
        let mut c = PartitionCache::new(2);
        c.insert(1, built(100, 1));
        c.insert(2, built(100, 2));
        let replacement = built(64, 9);
        c.insert(2, Arc::clone(&replacement));
        assert_eq!(c.len(), 2, "refresh of a present key must not change occupancy");
        assert!(c.get(1).is_some(), "refresh of a present key must not evict");
        assert!(Arc::ptr_eq(&c.get(2).unwrap(), &replacement), "value must be replaced");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PartitionCache::new(0);
        c.insert(1, built(100, 1));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
        c.insert_order(1, order(100, 1));
        assert!(c.get_order(1).is_none());
    }

    fn order(n: usize, seed: u64) -> Arc<fractalcloud_core::PipelineOutput> {
        let cloud = uniform_cube(n, seed);
        let pipe = fractalcloud_core::Pipeline::new(fractalcloud_core::PipelineConfig::new(
            64, 0.25, 0.4, 4,
        ))
        .unwrap();
        Arc::new(pipe.run(&cloud, false).unwrap())
    }

    #[test]
    fn order_map_is_an_independent_lru() {
        let mut c = PartitionCache::new(2);
        c.insert_order(1, order(96, 1));
        c.insert_order(2, order(96, 2));
        assert!(c.get_order(1).is_some()); // refresh 1 → 2 is now LRU
        c.insert_order(3, order(96, 3));
        assert_eq!(c.orders_len(), 2);
        assert!(c.get_order(2).is_none());
        assert!(c.get_order(1).is_some());
        assert!(c.get_order(3).is_some());
        // Partition entries are untouched by ordering churn.
        assert_eq!(c.len(), 0);
        c.insert(9, built(100, 9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.orders_len(), 2);
    }
}

//! The request/response engine: bounded admission, adaptive batching, and a
//! budgeted worker pool over the core pipeline.
//!
//! # Lifecycle of a request
//!
//! 1. **Validation** — parameters and frame size are checked before any
//!    queueing; bad requests are *rejected* (caller bug), not shed.
//! 2. **Admission** — the bounded queue (one lane per [`Priority`] class)
//!    either accepts the job or sheds it with a counted [`ShedReason`]. At
//!    the bound an arrival may displace a queued job of strictly lower
//!    class (Bulk sheds first). The queue is the only buffer in the
//!    engine, so memory under overload is bounded by construction.
//! 3. **Batching** — a worker pops the next job per the weighted priority
//!    schedule (4 High : 2 Normal : 1 Bulk), then pulls up to
//!    `max_batch - 1` further *compatible* jobs (equal
//!    [`PipelineConfig`]) from every class, highest first, preserving each
//!    class's arrival order among what remains.
//! 4. **Execution** — with cross-frame block batching
//!    (`ServeConfig::batch_blocks`, the default) a fused batch flattens
//!    the union of all frames' blocks into one work list and runs a single
//!    [`fractalcloud_parallel::parallel_map_budget`] of `(frame, block)`
//!    tasks — each task fusing its block's sampling and grouping — so the
//!    thread budget saturates even when the batch holds few frames with
//!    many blocks each; a lone frame keeps the whole budget for its own
//!    build + blocks. The legacy schedule (one sequential lane per frame)
//!    serves single-worker budgets, where frame-at-a-time order wins on
//!    locality, and remains available everywhere for A/B measurement.
//!    Lane/task allowances are inherited by every nested fan-out
//!    ([`fractalcloud_parallel::effective_budget`]), so the batch's total
//!    worker count stays within the configured budget. Every schedule is
//!    bit-identical to direct library calls — the per-frame assembly is
//!    literally the code [`Pipeline::run_with_partition`] runs — so
//!    scheduling is purely a latency/throughput decision.
//! 5. **Completion** — the response is published through the request's
//!    [`Ticket`] and latency is recorded, globally and per class.
//!
//! Partition reuse: before building, each frame's [`frame_key`] is looked
//! up in the engine-wide [`PartitionCache`]; identical frame bytes at the
//! same threshold reuse the cached `Arc<FractalResult>` and skip straight
//! to the BPPO half ([`Pipeline::run_with_partition`]).
//!
//! # Failure model
//!
//! A request always gets **exactly one** terminal outcome, whatever happens
//! to the worker executing it:
//!
//! * Every admitted job carries a drop-guard ([`TicketGuard`]) that
//!   resolves its slot with the non-retryable [`ServeError::Internal`] if
//!   the job is dropped unresolved — so an executor panic (real or
//!   injected) can never strand a waiter in [`Ticket::wait`].
//! * Worker panics are supervised: the unwinding worker spawns a
//!   replacement (succession) and exits; `worker_panics` /
//!   `workers_respawned` count the events, and the engine keeps serving.
//!   Workspaces and output staging live during an unwind are discarded,
//!   never re-pooled (see [`fractalcloud_core::workspace::PoolGuard`]).
//! * Shared mutexes are recovered from poisoning with
//!   [`lock_unpoisoned`]: every critical section over the queue, cache,
//!   worker registry and ticket slots keeps its data valid even when
//!   interrupted by a panic (single `VecDeque`/`HashMap`/`Vec`/`Option`
//!   operations — each is exception-safe in isolation), so a poisoned
//!   lock still guards a valid-by-construction structure.
//! * Deadlines are cooperative: expired-in-queue jobs shed with the
//!   retryable [`ShedReason::DeadlineExceeded`], the batcher excludes
//!   expired frames from fusion, and mid-run expiry cancels at the
//!   pipeline stage seams ([`CancelToken`]).
//! * The seeded fault layer ([`crate::faults`]) injects panics, delays and
//!   errors at fixed points for chaos testing; it is off by default and
//!   its disabled cost is one `Option` check per site.

use crate::cache::{frame_key, PartitionCache};
use crate::config::ServeConfig;
use crate::faults::{self, FaultLayer, FaultPoint};
use crate::metrics::{Metrics, MetricsSnapshot};
use fractalcloud_core::workspace::{global_pool, Pool};
use fractalcloud_core::{CancelToken, Pipeline, PipelineConfig, PipelineOutput, Workspace};
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::{Error, PointCloud};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks `m`, recovering from poisoning instead of propagating the panic
/// of whichever thread died while holding the guard.
///
/// Soundness contract (checked at every call site in this crate): the data
/// behind the mutex must be valid after *any* prefix of the critical
/// section — which holds here because each critical section performs
/// individually exception-safe container operations (`VecDeque`
/// push/pop, `HashMap` get/insert, `Vec` push/drain, `Option` writes) and
/// never leaves a multi-step invariant half-established.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Request priority classes.
///
/// The admission queue keeps one lane per class and dequeues them with a
/// fixed weighted schedule (4 High : 2 Normal : 1 Bulk per cycle, falling
/// back to the highest non-empty class), so High work completes first under
/// overload while Bulk is never starved outright. At the queue bound the
/// policy inverts: an arriving request may displace a queued job of a
/// *strictly lower* class (youngest first), so Bulk sheds first when
/// capacity runs out.
///
/// On the wire the class rides in the high nibble of the `FCS1` request
/// kind byte ([`Priority::to_wire`]); pre-priority clients send zeros
/// there, which decodes as [`Priority::Normal`] — the backward-compatible
/// default.
// No PartialOrd/Ord: the declaration order (High first, for dequeue
// preference) would derive `High < Bulk`, inverting every natural
// urgency comparison a caller might write. Compare via [`Priority::index`]
// (smaller = more urgent) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic; dequeued first and never displaced by
    /// arrivals of equal or lower class.
    High,
    /// The default class (and what pre-priority clients get).
    Normal,
    /// Throughput traffic; first to shed at the queue bound.
    Bulk,
}

impl Priority {
    /// Every class, in dequeue-preference order (High first).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Bulk];

    /// Dense index (High = 0, Normal = 1, Bulk = 2) — the order used by
    /// per-class metrics arrays.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Bulk => 2,
        }
    }

    /// Lower-case class name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Bulk => "bulk",
        }
    }

    /// The wire nibble (`0` Normal, `1` High, `2` Bulk). Normal is zero so
    /// a pre-priority client's kind byte decodes to the default class.
    pub fn to_wire(self) -> u8 {
        match self {
            Priority::Normal => 0,
            Priority::High => 1,
            Priority::Bulk => 2,
        }
    }

    /// Decodes a wire nibble; `None` for unknown values (malformed).
    pub fn from_wire(bits: u8) -> Option<Priority> {
        match bits {
            0 => Some(Priority::Normal),
            1 => Some(Priority::High),
            2 => Some(Priority::Bulk),
            _ => None,
        }
    }
}

/// Why a request was load-shed instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    QueueFull,
    /// The frame exceeded the engine's `max_points` limit.
    Oversized {
        /// Points in the offered frame.
        points: usize,
        /// The configured admission limit.
        max_points: usize,
    },
    /// The engine is draining for shutdown.
    ShuttingDown,
    /// The request's deadline expired before it finished executing (in the
    /// queue, at batch assembly, or at a pipeline stage seam). Retryable —
    /// with a fresh deadline.
    DeadlineExceeded,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "admission queue full"),
            ShedReason::Oversized { points, max_points } => {
                write!(f, "frame of {points} points exceeds limit of {max_points}")
            }
            ShedReason::ShuttingDown => write!(f, "engine shutting down"),
            ShedReason::DeadlineExceeded => write!(f, "deadline exceeded before completion"),
        }
    }
}

/// Errors a request can complete with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Load-shed before execution (retryable; the engine is protecting
    /// itself, the request was fine).
    Shed(ShedReason),
    /// Rejected as invalid (not retryable as-is: empty frame or bad
    /// parameters).
    Invalid(Error),
    /// The request's executor failed (panicked, or hit an injected fault).
    /// Not retryable blindly — the same input may fail the same way; the
    /// engine itself survived and keeps serving.
    Internal,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed(r) => write!(f, "request shed: {r}"),
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServeError::Internal => write!(f, "internal error: the request's executor failed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A processed frame: the block-FPS samples and their ball-query groups,
/// exactly as the direct library calls would return them, plus serving
/// metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameResponse {
    /// Sampled global indices (block order), identical to
    /// `block_fps(..).indices`.
    pub sampled_indices: Vec<usize>,
    /// `centers × num` neighbor indices, row-major, identical to
    /// `block_ball_query(..).indices`.
    pub neighbor_indices: Vec<usize>,
    /// In-radius hits per center before padding.
    pub found: Vec<usize>,
    /// Neighbor slots per center.
    pub num: usize,
    /// Leaf blocks in the frame's partition.
    pub blocks: usize,
    /// Aggregated work counters of the sampling stage.
    pub sample_counters: OpCounters,
    /// Aggregated work counters of the grouping stage.
    pub group_counters: OpCounters,
    /// True when the partition came from the LRU cache.
    pub cache_hit: bool,
    /// Number of frames fused into the batch this one ran in.
    pub batch_size: usize,
}

/// Engine lifecycle states (stored in an `AtomicU8`).
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// A one-shot completion slot shared between a worker and a waiter.
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<Result<FrameResponse, ServeError>>>,
    ready: Condvar,
}

/// Handle to one in-flight request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the response (or terminal error) is ready. Never hangs:
    /// every admitted job carries a drop-guard that resolves the slot (with
    /// [`ServeError::Internal`]) even when its executor panics or its
    /// worker dies.
    pub fn wait(self) -> Result<FrameResponse, ServeError> {
        let mut guard = lock_unpoisoned(&self.slot.result);
        while guard.is_none() {
            guard = self.slot.ready.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
        guard.take().expect("checked above")
    }

    /// [`Ticket::wait`] bounded by a timeout: `None` when the response was
    /// still pending after `timeout` (the ticket is consumed; the request
    /// keeps running and resolves into the abandoned slot). The engine's
    /// failure model makes `None` an anomaly worth asserting on — chaos
    /// tests use exactly that.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<FrameResponse, ServeError>> {
        let deadline = Instant::now().checked_add(timeout)?;
        let mut guard = lock_unpoisoned(&self.slot.result);
        while guard.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _timed_out) = self
                .slot
                .ready
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
        Some(guard.take().expect("checked above"))
    }
}

/// The engine-side twin of a [`Ticket`]: owns the obligation to resolve
/// the slot exactly once. Explicit resolution goes through
/// [`TicketGuard::finish`]; if the guard is instead *dropped* unresolved —
/// an executor unwound, a worker died with jobs in hand, a batch vector
/// was discarded mid-panic — `Drop` resolves the slot with
/// [`ServeError::Internal`] so the waiter always wakes. First resolution
/// wins; later ones are no-ops.
struct TicketGuard {
    priority: Priority,
    admitted_at: Instant,
    slot: Arc<Slot>,
    metrics: Arc<Metrics>,
    /// Whether this guard already resolved its slot. Tracked on the guard
    /// (not inferred from the slot) because a waiter *takes* the result
    /// out of the slot — an emptied slot must not look unresolved to the
    /// guard's own `Drop`.
    resolved: bool,
}

impl TicketGuard {
    /// Resolves the ticket with `outcome` and records the outcome-class
    /// metrics (latency + completion for delivered responses, the
    /// dedicated counters for deadline sheds and internal failures;
    /// queue-bound sheds are counted by the displacing submitter).
    fn finish(mut self, outcome: Result<FrameResponse, ServeError>) {
        self.resolve(outcome);
        // The impending Drop finds `resolved` set: no-op.
    }

    fn resolve(&mut self, outcome: Result<FrameResponse, ServeError>) {
        if self.resolved {
            return;
        }
        self.resolved = true;
        let mut guard = lock_unpoisoned(&self.slot.result);
        if guard.is_some() {
            return;
        }
        match &outcome {
            Ok(_) | Err(ServeError::Invalid(_)) => {
                let elapsed = self.admitted_at.elapsed();
                self.metrics.latency.record(elapsed);
                self.metrics.latency_by_class[self.priority.index()].record(elapsed);
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                self.metrics.note_progress();
            }
            Err(ServeError::Shed(ShedReason::DeadlineExceeded)) => {
                self.metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServeError::Shed(_)) => {}
            Err(ServeError::Internal) => {
                self.metrics.failed_internal.fetch_add(1, Ordering::Relaxed);
            }
        }
        *guard = Some(outcome);
        drop(guard);
        self.slot.ready.notify_all();
    }
}

impl Drop for TicketGuard {
    fn drop(&mut self) {
        // Reached unresolved only when the job was abandoned by a panic
        // somewhere between admission and publication.
        self.resolve(Err(ServeError::Internal));
    }
}

/// One queued unit of work.
struct Job {
    cloud: PointCloud,
    config: PipelineConfig,
    compat: u64,
    priority: Priority,
    admitted_at: Instant,
    /// Absolute execution deadline (`None` = unbounded).
    deadline: Option<Instant>,
    ticket: TicketGuard,
}

impl Job {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// Weighted dequeue schedule over [`Priority::index`]es: per 7 pops, High
/// gets 4 turns, Normal 2, Bulk 1. An empty scheduled class falls through
/// to the highest non-empty one, so the weights only bite under contention.
const DEQUEUE_SCHEDULE: [usize; 7] = [0, 0, 0, 0, 1, 1, 2];

/// The admission queue: one FIFO lane per priority class plus the weighted
/// round-robin cursor. All mutation happens under one mutex, so the
/// dequeue order is deterministic given the submission order.
struct QueueState {
    classes: [VecDeque<Job>; 3],
    cursor: usize,
}

impl QueueState {
    fn new() -> QueueState {
        QueueState { classes: std::array::from_fn(|_| VecDeque::new()), cursor: 0 }
    }

    fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// Pops the next job per the weighted schedule (falling through to the
    /// highest non-empty class when the scheduled lane is empty).
    fn pop_weighted(&mut self) -> Option<Job> {
        if self.len() == 0 {
            return None;
        }
        let preferred = DEQUEUE_SCHEDULE[self.cursor];
        self.cursor = (self.cursor + 1) % DEQUEUE_SCHEDULE.len();
        self.classes[preferred]
            .pop_front()
            .or_else(|| self.classes.iter_mut().find_map(VecDeque::pop_front))
    }

    /// Removes (to be shed) the youngest queued job of the *lowest* class
    /// strictly below `incoming`, making room at the queue bound — Bulk
    /// sheds first, and nothing of equal or higher class is touched.
    fn displace_below(&mut self, incoming: Priority) -> Option<Job> {
        for class in (incoming.index() + 1..self.classes.len()).rev() {
            if let Some(job) = self.classes[class].pop_back() {
                return Some(job);
            }
        }
        None
    }
}

/// State shared between the public handle and the worker threads.
struct Shared {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    state: AtomicU8,
    metrics: Arc<Metrics>,
    cache: Mutex<PartitionCache>,
    /// Pooled [`PipelineOutput`] staging: workers refill a recycled output
    /// in place (`run_with_partition_into`), move the response vectors out,
    /// and return the staging — so the per-block rows and other assembly
    /// buffers are reused across frames. Workspaces themselves come from
    /// the core crate's process-wide pool, one per execution lane.
    /// Both pools discard (never re-pool) values whose guard drops during
    /// an unwind.
    outputs: Pool<PipelineOutput>,
    /// The seeded fault layer; `None` (the overwhelmingly common case)
    /// makes every injection site one discriminant test.
    faults: Option<Arc<FaultLayer>>,
    /// Live worker handles — including replacements spawned by panic
    /// supervision, which register themselves here so shutdown can join
    /// whatever generation of workers is current.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// The serving engine. See the [module docs](self) for the request
/// lifecycle; construct with [`Engine::start`].
///
/// # Examples
///
/// ```
/// use fractalcloud_serve::{Engine, ServeConfig};
/// use fractalcloud_core::PipelineConfig;
/// use fractalcloud_pointcloud::generate::uniform_cube;
///
/// let engine = Engine::start(ServeConfig::default().workers(2));
/// let frame = uniform_cube(2048, 7);
/// let response = engine.process(frame, PipelineConfig::default()).unwrap();
/// assert_eq!(response.sampled_indices.len(), 512);
/// engine.shutdown();
/// ```
pub struct Engine {
    shared: Arc<Shared>,
}

impl Engine {
    /// Starts `cfg.workers` worker threads and returns the handle.
    pub fn start(cfg: ServeConfig) -> Engine {
        let shared = Arc::new(Shared {
            cache: Mutex::new(PartitionCache::new(cfg.cache_capacity)),
            faults: FaultLayer::new(cfg.faults),
            cfg,
            queue: Mutex::new(QueueState::new()),
            available: Condvar::new(),
            state: AtomicU8::new(RUNNING),
            metrics: Arc::new(Metrics::default()),
            outputs: Pool::new(),
            workers: Mutex::new(Vec::new()),
        });
        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|i| {
                let h = spawn_worker(&shared, i).expect("spawn serve worker");
                shared.metrics.workers_alive.fetch_add(1, Ordering::Relaxed);
                h
            })
            .collect();
        lock_unpoisoned(&shared.workers).extend(workers);
        Engine { shared }
    }

    /// The engine's configuration.
    pub fn config(&self) -> ServeConfig {
        self.shared.cfg
    }

    /// Validates and admits one [`Priority::Normal`] frame, returning a
    /// [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn submit(&self, cloud: PointCloud, config: PipelineConfig) -> Result<Ticket, ServeError> {
        self.submit_with_priority(cloud, config, Priority::Normal)
    }

    /// Validates and admits one frame at the given [`Priority`], returning
    /// a [`Ticket`] to wait on.
    ///
    /// At the queue bound an arrival may displace a queued job of strictly
    /// lower class (Bulk first); the displaced job's ticket then resolves
    /// to [`ShedReason::QueueFull`] exactly as if it had been refused at
    /// admission.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for empty frames or bad parameters;
    /// [`ServeError::Shed`] when admission declines the request (queue
    /// full with nothing lower-class to displace, oversized frame,
    /// shutdown in progress).
    pub fn submit_with_priority(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
        priority: Priority,
    ) -> Result<Ticket, ServeError> {
        self.submit_with_options(cloud, config, priority, None)
    }

    /// [`Engine::submit_with_priority`] with an explicit per-request
    /// deadline, measured from admission. `None` falls back to the
    /// configured default ([`ServeConfig::deadline_ms`], 0 = unbounded).
    /// A job whose deadline passes before execution is shed with the
    /// retryable [`ShedReason::DeadlineExceeded`]; one that expires
    /// mid-run is cancelled at the next pipeline stage seam and resolves
    /// the same way.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn submit_with_options(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let m = &self.shared.metrics;
        m.submitted.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = config.validate() {
            m.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(e));
        }
        if cloud.is_empty() {
            m.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(Error::EmptyCloud));
        }
        if cloud.len() > self.shared.cfg.max_points {
            m.shed_oversized.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Shed(ShedReason::Oversized {
                points: cloud.len(),
                max_points: self.shared.cfg.max_points,
            }));
        }

        let admitted_at = Instant::now();
        let budget = deadline.or_else(|| {
            (self.shared.cfg.deadline_ms > 0)
                .then(|| Duration::from_millis(self.shared.cfg.deadline_ms))
        });
        let deadline = budget.and_then(|d| admitted_at.checked_add(d));
        let slot = Arc::new(Slot::default());
        let displaced = {
            let mut queue = lock_unpoisoned(&self.shared.queue);
            // State is checked under the queue lock: shutdown() transitions
            // under the same lock, so no admission can slip past a drain.
            if self.shared.state.load(Ordering::SeqCst) != RUNNING {
                m.shed_shutdown.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Shed(ShedReason::ShuttingDown));
            }
            let mut displaced = None;
            if queue.len() >= self.shared.cfg.queue_capacity {
                // Bulk sheds first at the bound: a strictly-lower-class
                // queued job makes room, otherwise the arrival itself sheds.
                match queue.displace_below(priority) {
                    Some(victim) => displaced = Some(victim),
                    None => {
                        m.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                        m.shed_by_class[priority.index()].fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Shed(ShedReason::QueueFull));
                    }
                }
            }
            // The job (and the resolution obligation its guard carries) is
            // only constructed once admission is certain.
            queue.classes[priority.index()].push_back(Job {
                compat: config.compat_key(),
                cloud,
                config,
                priority,
                admitted_at,
                deadline,
                ticket: TicketGuard {
                    priority,
                    admitted_at,
                    slot: Arc::clone(&slot),
                    metrics: Arc::clone(m),
                    resolved: false,
                },
            });
            m.admitted.fetch_add(1, Ordering::Relaxed);
            m.set_queue_depth(queue.len());
            displaced
        };
        if let Some(victim) = displaced {
            m.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            m.shed_by_class[victim.priority.index()].fetch_add(1, Ordering::Relaxed);
            victim.ticket.finish(Err(ServeError::Shed(ShedReason::QueueFull)));
        }
        self.shared.available.notify_one();
        Ok(Ticket { slot })
    }

    /// Submits a frame and blocks for its response — the in-process client
    /// call ([`Priority::Normal`]).
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`].
    pub fn process(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
    ) -> Result<FrameResponse, ServeError> {
        self.submit(cloud, config)?.wait()
    }

    /// Submits a frame at the given [`Priority`] and blocks for its
    /// response.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn process_with_priority(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
        priority: Priority,
    ) -> Result<FrameResponse, ServeError> {
        self.submit_with_priority(cloud, config, priority)?.wait()
    }

    /// A point-in-time copy of every serving metric. `faults_injected`
    /// reflects the engine's own fault layer (the layer keeps the
    /// authoritative per-point counters).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.shared.metrics.snapshot();
        if let Some(layer) = &self.shared.faults {
            snapshot.faults_injected = FaultPoint::ALL.iter().map(|&p| layer.injected_at(p)).sum();
        }
        snapshot
    }

    /// Shared access to the metrics registry (the TCP front-end counts its
    /// connection-level events here).
    pub(crate) fn metrics_registry(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The engine's fault layer, if one is active (the TCP front-end
    /// injects its net-side faults through this).
    pub(crate) fn fault_layer(&self) -> &Option<Arc<FaultLayer>> {
        &self.shared.faults
    }

    /// A point-in-time liveness snapshot — cheap enough for a health
    /// endpoint to call per probe.
    pub fn health(&self) -> EngineHealth {
        let queued_by_class = {
            let queue = lock_unpoisoned(&self.shared.queue);
            std::array::from_fn(|c| queue.classes[c].len() as u64)
        };
        let snapshot = self.shared.metrics.snapshot();
        let workers_alive = snapshot.workers_alive;
        EngineHealth {
            live: workers_alive > 0 && self.shared.state.load(Ordering::SeqCst) == RUNNING,
            workers_alive,
            workers_configured: self.shared.cfg.workers.max(1) as u64,
            queued_by_class,
            last_progress_age_ms: self.shared.metrics.progress_age_ms(),
            worker_panics: snapshot.worker_panics,
            workers_respawned: snapshot.workers_respawned,
        }
    }

    /// Graceful shutdown: stops admitting (subsequent submits shed with
    /// [`ShedReason::ShuttingDown`]), lets the workers drain every already
    /// admitted job, and joins them — collecting join results instead of
    /// propagating worker panics (a panicked worker already counted itself
    /// in `worker_panics`; a handle that joins with `Err` here is the
    /// defensive backstop for a panic that escaped supervision). Idempotent;
    /// concurrent callers all block until the drain finishes.
    pub fn shutdown(&self) {
        {
            let _queue = lock_unpoisoned(&self.shared.queue);
            self.shared
                .state
                .compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst)
                .ok();
        }
        self.shared.available.notify_all();
        // Drain in rounds: a panicking worker may register its replacement
        // while this loop runs, so keep joining until the registry stays
        // empty. Handles are taken out before joining (never join while
        // holding the registry lock — the replacement needs it to register).
        loop {
            let drained: Vec<JoinHandle<()>> =
                lock_unpoisoned(&self.shared.workers).drain(..).collect();
            if drained.is_empty() {
                break;
            }
            for h in drained {
                if h.join().is_err() {
                    // Escaped supervision entirely (e.g. a panic in the
                    // supervisor itself) — count it so the event is visible.
                    self.shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.shared.state.store(STOPPED, Ordering::SeqCst);
    }
}

/// A point-in-time liveness snapshot from [`Engine::health`], also served
/// over the wire as the `FCS1` health request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineHealth {
    /// True when the engine is accepting work and at least one worker is
    /// alive to execute it.
    pub live: bool,
    /// Worker threads currently running their loop.
    pub workers_alive: u64,
    /// Worker threads the configuration asked for.
    pub workers_configured: u64,
    /// Queued jobs per priority class ([`Priority::index`] order).
    pub queued_by_class: [u64; 3],
    /// Milliseconds since a worker last completed a request (0 when nothing
    /// has completed yet — pair with the queue depths to tell "idle" from
    /// "stuck").
    pub last_progress_age_ms: u64,
    /// Worker panics survived since start.
    pub worker_panics: u64,
    /// Replacement workers spawned by panic supervision.
    pub workers_respawned: u64,
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.shared.state.load(Ordering::SeqCst) != STOPPED {
            self.shutdown();
        }
    }
}

/// Spawns one supervised worker thread.
fn spawn_worker(shared: &Arc<Shared>, id: usize) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("fc-serve-{id}"))
        .spawn(move || worker_main(&shared, id))
}

/// The supervised body of a worker thread: run the loop, and if it unwinds
/// (a panic the batch executors didn't contain — or an injected
/// `panic@worker`), count the event, spawn a successor, and exit.
/// Supervision-by-succession keeps the thread count constant without a
/// dedicated supervisor thread: the dying worker is its own supervisor.
///
/// `workers_alive` is incremented by whoever *spawns* a worker (start or
/// respawn) and decremented here at exit, so the gauge never dips to zero
/// in the handoff window between a successor being registered and its
/// thread actually starting.
fn worker_main(shared: &Arc<Shared>, id: usize) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared))) {
            Ok(()) => break, // drained for shutdown
            Err(_) => {
                shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                // Any job the panic abandoned has already been resolved to
                // Internal by its TicketGuard's drop during the unwind.
                if shared.state.load(Ordering::SeqCst) != RUNNING {
                    break;
                }
                if respawn_worker(shared, id) {
                    break; // the successor has the slot; this thread retires
                }
                // Could not spawn a successor (resource exhaustion): this
                // thread resurrects in place rather than shrink the pool.
            }
        }
    }
    shared.metrics.workers_alive.fetch_sub(1, Ordering::Relaxed);
}

/// Spawns and registers a successor for a panicked worker. Returns false
/// when the OS refused the thread (the caller then keeps serving itself).
fn respawn_worker(shared: &Arc<Shared>, id: usize) -> bool {
    match spawn_worker(shared, id) {
        Ok(handle) => {
            shared.metrics.workers_alive.fetch_add(1, Ordering::Relaxed);
            shared.metrics.workers_respawned.fetch_add(1, Ordering::Relaxed);
            lock_unpoisoned(&shared.workers).push(handle);
            true
        }
        Err(_) => false,
    }
}

/// Worker: pop the next job per the weighted priority schedule, gather its
/// compatibility batch from every class (highest first, preserving each
/// class's arrival order), execute. Returns when the engine drains.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(batch) = next_batch(shared) {
        // An empty batch means the pop only found expired jobs (already
        // shed by next_batch) — go straight back for more work.
        if !batch.is_empty() {
            execute_batch(shared, batch);
        }
    }
}

/// Blocks for the next compatible batch; `None` once the engine is draining
/// and the queue is empty. Jobs whose deadline already passed are shed here
/// (retryable [`ShedReason::DeadlineExceeded`]) instead of batched — the
/// waiter gets its answer sooner and the batch wastes no budget on work
/// nobody wants anymore.
fn next_batch(shared: &Arc<Shared>) -> Option<Vec<Job>> {
    let mut expired: Vec<Job> = Vec::new();
    let batch = {
        let mut queue = lock_unpoisoned(&shared.queue);
        loop {
            let now = Instant::now();
            let mut first = None;
            while let Some(job) = queue.pop_weighted() {
                if job.expired(now) {
                    expired.push(job);
                } else {
                    first = Some(job);
                    break;
                }
            }
            if let Some(first) = first {
                let compat = first.compat;
                let mut batch = vec![first];
                for class in 0..queue.classes.len() {
                    if batch.len() >= shared.cfg.max_batch {
                        break;
                    }
                    let lane = &mut queue.classes[class];
                    let mut kept = VecDeque::with_capacity(lane.len());
                    while let Some(job) = lane.pop_front() {
                        if job.expired(now) {
                            expired.push(job);
                        } else if batch.len() < shared.cfg.max_batch && job.compat == compat {
                            batch.push(job);
                        } else {
                            kept.push_back(job);
                        }
                    }
                    *lane = kept;
                }
                shared.metrics.set_queue_depth(queue.len());
                break Some(batch);
            }
            shared.metrics.set_queue_depth(queue.len());
            if !expired.is_empty() {
                // Everything popped had expired: hand back an empty batch so
                // the sheds below resolve now, not after the next arrival.
                break Some(Vec::new());
            }
            if shared.state.load(Ordering::SeqCst) != RUNNING {
                break None;
            }
            queue = shared.available.wait(queue).unwrap_or_else(PoisonError::into_inner);
        }
    };
    // Resolved outside the queue lock: finish() takes the slot lock, and
    // keeping the queue→slot order acyclic (never slot→queue) is what makes
    // both locks safe to take at all.
    for job in expired {
        job.ticket.finish(Err(ServeError::Shed(ShedReason::DeadlineExceeded)));
    }
    batch
}

/// Runs one compatible batch and resolves every ticket. The injected
/// `worker` fault point fires here — an injected error drops the whole
/// batch (each guard resolves Internal), an injected panic unwinds into the
/// supervisor in [`worker_main`].
fn execute_batch(shared: &Shared, batch: Vec<Job>) {
    let size = batch.len();
    let m = &shared.metrics;
    m.batches.fetch_add(1, Ordering::Relaxed);
    m.batched_frames.fetch_add(size as u64, Ordering::Relaxed);
    let started = Instant::now();
    for job in &batch {
        m.queue_wait.record(started.duration_since(job.admitted_at));
    }
    if faults::fire(&shared.faults, FaultPoint::Worker) {
        // Injected executor error: dropping the jobs resolves every ticket
        // to Internal through its guard — the same path a real panic takes.
        drop(batch);
        return;
    }

    if size >= 2 && shared.cfg.batch_blocks && shared.cfg.thread_budget > 1 {
        // The tentpole path: flatten the union of all frames' blocks into
        // one work list and run a single budgeted map over fused
        // sample+group block tasks. Only taken when there is a budget to
        // saturate: with one worker the flattened list buys nothing and
        // measures ~1% slower than the frame-at-a-time order below (the
        // partitions-then-blocks barrier costs frame locality), so the
        // legacy order serves budget-1 hosts — results are bit-identical
        // either way; this is purely a schedule choice.
        execute_batch_blocks(shared, batch);
        return;
    }

    // Legacy schedule (and the lone-frame fast path): one lane per frame.
    // `parallel_map_budget_with` divides the engine's budget across the
    // lanes (a lone frame keeps the whole budget), each lane's allowance is
    // inherited by every fan-out inside the pipeline, and each lane checks
    // one workspace out of the process-wide pool — scratch is reused
    // across the lane's frames and across batches, never shared between
    // threads. Results are identical for every budget — only wall-clock
    // (and allocation traffic) differs.
    let outcomes = fractalcloud_parallel::parallel_map_budget_with(
        batch,
        shared.cfg.thread_budget,
        || global_pool().checkout(),
        |_, job, ws| {
            let Job { cloud, config, ticket, deadline, .. } = job;
            let outcome = execute_one(shared, &cloud, config, deadline, size, ws);
            (ticket, outcome)
        },
    );
    // A lane that panicked dropped its (ticket, outcome) pair mid-flight —
    // that ticket already resolved Internal via its guard; the survivors
    // resolve here.
    for (ticket, outcome) in outcomes {
        ticket.finish(outcome);
    }
}

/// Cross-frame block batching: the union of the batch's blocks runs as ONE
/// budgeted `parallel_map` of fused sample+group `(frame, block)` tasks,
/// with results scattered back per frame — bit-identical to per-frame
/// execution (the per-frame assembly is the same code
/// `Pipeline::run_with_partition` uses), but the thread budget saturates
/// even when the batch holds few frames with many blocks each, and each
/// block's grouping runs right after its sampling while the block's data
/// is hot.
fn execute_batch_blocks(shared: &Shared, batch: Vec<Job>) {
    let size = batch.len();
    let m = &shared.metrics;
    let budget = shared.cfg.thread_budget;

    struct FrameCtx {
        job: Job,
        pipeline: Pipeline,
        key: u64,
        built: Option<(Arc<fractalcloud_core::FractalResult>, bool)>,
    }

    /// One `(frame, block)` task's verdict. Anything but `Done` marks the
    /// whole frame (a frame with a missing block has no valid assembly).
    // Not boxed: `Done` is the overwhelmingly common variant and these
    // values live only inside one short-lived per-batch Vec — indirection
    // would put an allocation per block task on the hot path.
    #[allow(clippy::large_enum_variant)]
    enum TaskOut {
        Done((Vec<usize>, OpCounters), fractalcloud_core::BlockNeighborTask),
        Expired,
        Failed,
    }

    // Stage 0 — pipelines and partition-cache lookups (cheap, sequential).
    let mut frames: Vec<Option<FrameCtx>> = Vec::with_capacity(size);
    for job in batch {
        match Pipeline::new(job.config) {
            Ok(pipeline) => {
                let key = frame_key(&job.cloud, job.config.threshold);
                let cached = lock_unpoisoned(&shared.cache).get(key);
                match &cached {
                    Some(_) => m.cache_hits.fetch_add(1, Ordering::Relaxed),
                    None => m.cache_misses.fetch_add(1, Ordering::Relaxed),
                };
                frames.push(Some(FrameCtx {
                    job,
                    pipeline,
                    key,
                    built: cached.map(|b| (b, true)),
                }));
            }
            Err(e) => {
                // Unreachable in practice (configs are validated at
                // admission), kept total so a worker can never panic.
                job.ticket.finish(Err(ServeError::Invalid(e)));
                frames.push(None);
            }
        }
    }

    // Stage 1 — build missing partitions, parallel across frames; each
    // lane builds with whatever allowance the budget split grants it and
    // a pooled workspace of its own.
    let missing: Vec<usize> = frames
        .iter()
        .enumerate()
        .filter_map(|(f, ctx)| ctx.as_ref().filter(|c| c.built.is_none()).map(|_| f))
        .collect();
    if !missing.is_empty() {
        let builds = fractalcloud_parallel::parallel_map_budget_with(
            missing,
            budget,
            || global_pool().checkout(),
            |_, f, ws| {
                let ctx = frames[f].as_ref().expect("missing frame is live");
                let parallel = fractalcloud_parallel::effective_budget() > 1;
                (f, ctx.pipeline.partition_ws(&ctx.job.cloud, parallel, ws))
            },
        );
        for (f, built) in builds {
            match built {
                Ok(result) => {
                    let ctx = frames[f].as_mut().expect("missing frame is live");
                    let arc = Arc::new(result);
                    if !faults::fire(&shared.faults, FaultPoint::CacheInsert) {
                        lock_unpoisoned(&shared.cache).insert(ctx.key, Arc::clone(&arc));
                    }
                    ctx.built = Some((arc, false));
                }
                Err(e) => {
                    let ctx = frames[f].take().expect("missing frame is live");
                    ctx.job.ticket.finish(Err(ServeError::Invalid(e)));
                }
            }
        }
    }

    // Stage 2 — ONE parallel map over the union of all frames' block
    // tasks, tagged (frame, block). A block's ball query depends only on
    // that block's own FPS samples, so each task fuses sampling and
    // grouping for its block (FuseFPS-style): one scheduling pass, and the
    // block's gathered coordinates are still hot when its grouping runs.
    // Tasks are generated frame-major, so the in-order results scatter
    // back per frame (in block order) by a single pass.
    let counts: Vec<Vec<usize>> = frames
        .iter()
        .map(|ctx| match ctx {
            Some(c) => {
                let (built, _) = c.built.as_ref().expect("live frames have partitions");
                c.pipeline.sample_counts(built)
            }
            None => Vec::new(),
        })
        .collect();
    let tasks: Vec<(usize, usize)> =
        counts.iter().enumerate().flat_map(|(f, c)| (0..c.len()).map(move |b| (f, b))).collect();
    // Each task first checks its frame's deadline (cooperative
    // cancellation at the block seam) and the injected block fault point;
    // anything but a completed block marks the whole frame's fate.
    let parts = fractalcloud_parallel::parallel_map_budget_with(
        tasks,
        budget,
        || global_pool().checkout(),
        |_, (f, b), ws| {
            let ctx = frames[f].as_ref().expect("task frames are live");
            if ctx.job.expired(Instant::now()) {
                return ((f, b), TaskOut::Expired);
            }
            if faults::fire(&shared.faults, FaultPoint::Block) {
                return ((f, b), TaskOut::Failed);
            }
            let (built, _) = ctx.built.as_ref().expect("live frames have partitions");
            let fps = ctx.pipeline.sample_block_ws(&ctx.job.cloud, built, b, counts[f][b], ws);
            let group = ctx.pipeline.group_block_ws(&ctx.job.cloud, built, b, &fps.0, ws);
            ((f, b), TaskOut::Done(fps, group))
        },
    );
    let mut sampled: Vec<Vec<(Vec<usize>, OpCounters)>> =
        counts.iter().map(|c| Vec::with_capacity(c.len())).collect();
    let mut grouped: Vec<Vec<fractalcloud_core::BlockNeighborTask>> =
        counts.iter().map(|c| Vec::with_capacity(c.len())).collect();
    // Frame fates: 0 = every block done, 1 = a block saw the deadline pass,
    // 2 = a block failed (failure outranks expiry — Internal is the honest
    // answer when both happened).
    let mut fate: Vec<u8> = vec![0; size];
    for ((f, _), out) in parts {
        match out {
            TaskOut::Done(fps, group) => {
                sampled[f].push(fps);
                grouped[f].push(group);
            }
            TaskOut::Expired => fate[f] = fate[f].max(1),
            TaskOut::Failed => fate[f] = 2,
        }
    }

    // Stage 3 — per-frame assembly (the same aggregation a per-frame run
    // uses) and resolution; frames with missing blocks resolve to their
    // fate instead.
    for (f, ((ctx, sampled), grouped)) in frames.into_iter().zip(sampled).zip(grouped).enumerate() {
        let Some(ctx) = ctx else { continue };
        match fate[f] {
            2 => ctx.job.ticket.finish(Err(ServeError::Internal)),
            1 => ctx.job.ticket.finish(Err(ServeError::Shed(ShedReason::DeadlineExceeded))),
            _ => {
                let (built, cache_hit) = ctx.built.expect("live frames have partitions");
                let out = ctx.pipeline.assemble_output(&built, sampled, grouped);
                let response = FrameResponse {
                    sampled_indices: out.sampled.indices,
                    neighbor_indices: out.grouped.indices,
                    found: out.grouped.found,
                    num: out.grouped.num,
                    blocks: out.blocks,
                    sample_counters: out.sampled.counters,
                    group_counters: out.grouped.counters,
                    cache_hit,
                    batch_size: size,
                };
                ctx.job.ticket.finish(Ok(response));
            }
        }
    }
}

/// Runs one frame through the pipeline, reusing a cached partition when the
/// frame bytes have been seen at this threshold before. Parallelism inside
/// the pipeline is governed by the lane's inherited thread budget (a
/// 1-thread lane resolves every nested fan-out to sequential execution).
///
/// All scratch lives in the lane's `ws`, and the BPPO half refills a pooled
/// [`PipelineOutput`] staging buffer in place; only the vectors the
/// response hands to the client are moved out (their buffers leave with the
/// response — the one unavoidable per-frame allocation class on a warmed
/// engine).
fn execute_one(
    shared: &Shared,
    cloud: &PointCloud,
    config: PipelineConfig,
    deadline: Option<Instant>,
    batch_size: usize,
    ws: &mut Workspace,
) -> Result<FrameResponse, ServeError> {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(ServeError::Shed(ShedReason::DeadlineExceeded));
    }
    if faults::fire(&shared.faults, FaultPoint::Block) {
        return Err(ServeError::Internal);
    }
    let parallel = fractalcloud_parallel::effective_budget() > 1;
    let pipeline = Pipeline::new(config).map_err(ServeError::Invalid)?;
    let key = frame_key(cloud, config.threshold);

    let cached = lock_unpoisoned(&shared.cache).get(key);
    let (built, cache_hit) = match cached {
        Some(b) => {
            shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            (b, true)
        }
        None => {
            shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            let built =
                Arc::new(pipeline.partition_ws(cloud, parallel, ws).map_err(ServeError::Invalid)?);
            if !faults::fire(&shared.faults, FaultPoint::CacheInsert) {
                lock_unpoisoned(&shared.cache).insert(key, Arc::clone(&built));
            }
            (built, false)
        }
    };

    let mut staging = shared.outputs.checkout();
    // Deadline-free requests keep the plain path (no CancelToken, no Arc
    // allocation — preserving the zero-alloc warmed steady state); a
    // deadline arms cooperative cancellation at the pipeline stage seams.
    let run = match deadline {
        None => pipeline.run_with_partition_into(cloud, &built, parallel, ws, &mut staging),
        Some(d) => {
            let cancel = CancelToken::with_deadline(d);
            pipeline.run_with_partition_into_cancel(
                cloud,
                &built,
                parallel,
                ws,
                &mut staging,
                &cancel,
            )
        }
    };
    run.map_err(|e| match e {
        Error::Cancelled => ServeError::Shed(ShedReason::DeadlineExceeded),
        other => ServeError::Invalid(other),
    })?;
    let out = &mut *staging;
    Ok(FrameResponse {
        sampled_indices: std::mem::take(&mut out.sampled.indices),
        neighbor_indices: std::mem::take(&mut out.grouped.indices),
        found: std::mem::take(&mut out.grouped.found),
        num: out.grouped.num,
        blocks: out.blocks,
        sample_counters: out.sampled.counters,
        group_counters: out.grouped.counters,
        cache_hit,
        batch_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan};
    use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};

    fn small_engine() -> Engine {
        Engine::start(ServeConfig::default().workers(2).queue_capacity(16))
    }

    #[test]
    fn process_round_trips_a_frame() {
        let engine = small_engine();
        let cloud = uniform_cube(1024, 3);
        let r = engine.process(cloud, PipelineConfig::default()).unwrap();
        assert_eq!(r.sampled_indices.len(), 256);
        assert_eq!(r.found.len(), 256);
        assert_eq!(r.neighbor_indices.len(), 256 * r.num);
        assert!(r.blocks >= 4);
        engine.shutdown();
    }

    #[test]
    fn repeated_frame_hits_partition_cache_with_identical_results() {
        let engine = small_engine();
        let cloud = scene_cloud(&SceneConfig::default(), 2048, 5);
        let a = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        let b = engine.process(cloud, PipelineConfig::default()).unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        assert_eq!(a.sampled_indices, b.sampled_indices);
        assert_eq!(a.neighbor_indices, b.neighbor_indices);
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        engine.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_not_shed() {
        let engine = small_engine();
        let empty = engine.process(PointCloud::new(), PipelineConfig::default());
        assert_eq!(empty, Err(ServeError::Invalid(Error::EmptyCloud)));
        let bad = engine
            .process(uniform_cube(64, 1), PipelineConfig { neighbors: 0, ..Default::default() });
        assert!(matches!(bad, Err(ServeError::Invalid(Error::InvalidParameter { .. }))));
        assert_eq!(engine.metrics().rejected_invalid, 2);
        assert_eq!(engine.metrics().shed_total(), 0);
        engine.shutdown();
    }

    #[test]
    fn priority_classes_round_trip_with_identical_results() {
        let engine = small_engine();
        let cloud = uniform_cube(1024, 17);
        let normal = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        for p in Priority::ALL {
            let r =
                engine.process_with_priority(cloud.clone(), PipelineConfig::default(), p).unwrap();
            assert_eq!(r.sampled_indices, normal.sampled_indices, "priority changed results");
            assert_eq!(r.neighbor_indices, normal.neighbor_indices);
        }
        let m = engine.metrics();
        // Normal ran twice (submit defaults to Normal), High and Bulk once.
        assert_eq!(m.completed_by_class, [1, 2, 1]);
        engine.shutdown();
    }

    /// A queue-state test job (the guard points at a throwaway slot).
    fn test_job(p: Priority) -> Job {
        let admitted_at = Instant::now();
        Job {
            cloud: uniform_cube(8, 1),
            config: PipelineConfig::default(),
            compat: 0,
            priority: p,
            admitted_at,
            deadline: None,
            ticket: TicketGuard {
                priority: p,
                admitted_at,
                slot: Arc::new(Slot::default()),
                metrics: Arc::new(Metrics::default()),
                resolved: false,
            },
        }
    }

    #[test]
    fn weighted_queue_pops_follow_the_schedule() {
        // Pure queue-state test: deterministic, no threads.
        let mk = test_job;
        let mut q = QueueState::new();
        for _ in 0..3 {
            q.classes[Priority::High.index()].push_back(mk(Priority::High));
            q.classes[Priority::Bulk.index()].push_back(mk(Priority::Bulk));
        }
        q.classes[Priority::Normal.index()].push_back(mk(Priority::Normal));
        // Schedule H,H,H,H,N,N,B with highest-first fall-through: the three
        // Highs drain on their turns, the fourth High turn falls to Normal,
        // and the Normal/Bulk turns drain the Bulk lane.
        let order: Vec<Priority> =
            std::iter::from_fn(|| q.pop_weighted().map(|j| j.priority)).collect();
        assert_eq!(
            order,
            [
                Priority::High,
                Priority::High,
                Priority::High,
                Priority::Normal,
                Priority::Bulk,
                Priority::Bulk,
                Priority::Bulk,
            ]
        );
        assert!(q.pop_weighted().is_none());
    }

    #[test]
    fn displacement_sheds_the_youngest_lowest_class_only() {
        let mk = test_job;
        let mut q = QueueState::new();
        q.classes[Priority::Normal.index()].push_back(mk(Priority::Normal));
        q.classes[Priority::Bulk.index()].push_back(mk(Priority::Bulk));
        // High displaces the Bulk job first, then the Normal one, then
        // nothing (never its own class).
        assert_eq!(q.displace_below(Priority::High).unwrap().priority, Priority::Bulk);
        assert_eq!(q.displace_below(Priority::High).unwrap().priority, Priority::Normal);
        assert!(q.displace_below(Priority::High).is_none());
        // Bulk can never displace; Normal only displaces Bulk.
        q.classes[Priority::Normal.index()].push_back(mk(Priority::Normal));
        assert!(q.displace_below(Priority::Bulk).is_none());
        assert!(q.displace_below(Priority::Normal).is_none());
        q.classes[Priority::Bulk.index()].push_back(mk(Priority::Bulk));
        assert_eq!(q.displace_below(Priority::Normal).unwrap().priority, Priority::Bulk);
    }

    #[test]
    fn submit_after_shutdown_sheds() {
        let engine = small_engine();
        engine.shutdown();
        let r = engine.submit(uniform_cube(64, 1), PipelineConfig::default());
        assert_eq!(r.unwrap_err(), ServeError::Shed(ShedReason::ShuttingDown));
        assert_eq!(engine.metrics().shed_shutdown, 1);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let engine = small_engine();
        engine.shutdown();
        engine.shutdown();
    }

    #[test]
    fn dropped_ticket_guard_resolves_internal() {
        let job = test_job(Priority::Normal);
        let slot = Arc::clone(&job.ticket.slot);
        drop(job); // simulate a panic abandoning the job mid-execution
        assert_eq!(Ticket { slot }.wait(), Err(ServeError::Internal));
    }

    #[test]
    fn finished_guard_keeps_its_first_resolution() {
        let job = test_job(Priority::Normal);
        let slot = Arc::clone(&job.ticket.slot);
        job.ticket.finish(Err(ServeError::Shed(ShedReason::QueueFull)));
        // The guard's own Drop ran after finish(); first resolution wins.
        assert_eq!(Ticket { slot }.wait(), Err(ServeError::Shed(ShedReason::QueueFull)));
    }

    #[test]
    fn wait_timeout_distinguishes_pending_from_resolved() {
        let pending = Ticket { slot: Arc::new(Slot::default()) };
        assert_eq!(pending.wait_timeout(Duration::from_millis(20)), None);

        let slot = Arc::new(Slot::default());
        *lock_unpoisoned(&slot.result) = Some(Err(ServeError::Internal));
        let resolved = Ticket { slot };
        assert_eq!(resolved.wait_timeout(Duration::from_secs(5)), Some(Err(ServeError::Internal)));
    }

    #[test]
    fn lock_unpoisoned_recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        let mut guard = lock_unpoisoned(&m);
        guard.push(4); // the data stayed valid through the poisoning
        assert_eq!(*guard, [1, 2, 3, 4]);
    }

    #[test]
    fn zero_deadline_requests_shed_as_deadline_exceeded() {
        let engine = small_engine();
        let r = engine
            .submit_with_options(
                uniform_cube(1024, 3),
                PipelineConfig::default(),
                Priority::Normal,
                Some(Duration::ZERO),
            )
            .unwrap()
            .wait();
        assert_eq!(r, Err(ServeError::Shed(ShedReason::DeadlineExceeded)));
        let m = engine.metrics();
        assert_eq!(m.shed_deadline, 1);
        assert!(m.shed_total() >= 1);
        // The engine is unharmed: the next unbounded request completes.
        assert!(engine.process(uniform_cube(1024, 3), PipelineConfig::default()).is_ok());
        engine.shutdown();
    }

    #[test]
    fn injected_worker_panics_are_supervised_and_survived() {
        let plan =
            FaultPlan::OFF.with_fault(FaultKind::Panic, FaultPoint::Worker, 1.0).with_seed(7);
        let engine = Engine::start(ServeConfig::default().workers(1).faults(plan));
        for _ in 0..3 {
            let r = engine.process(uniform_cube(256, 5), PipelineConfig::default());
            assert_eq!(r, Err(ServeError::Internal));
        }
        // The ticket resolves during the unwind, *before* the supervisor
        // counts the panic and respawns — poll briefly for the counters.
        let deadline = Instant::now() + Duration::from_secs(10);
        let m = loop {
            let m = engine.metrics();
            if (m.worker_panics >= 3 && m.workers_respawned >= 3) || Instant::now() >= deadline {
                break m;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(m.worker_panics >= 3, "worker_panics = {}", m.worker_panics);
        assert!(m.workers_respawned >= 3, "workers_respawned = {}", m.workers_respawned);
        assert_eq!(m.failed_internal, 3);
        assert!(m.faults_injected >= 3);
        let health = engine.health();
        assert!(health.live, "engine must stay live through supervised panics");
        engine.shutdown();
        assert!(!engine.health().live);
    }

    #[test]
    fn injected_worker_errors_resolve_internal_without_panicking() {
        let plan = FaultPlan::OFF.with_fault(FaultKind::Err, FaultPoint::Worker, 1.0).with_seed(7);
        let engine = Engine::start(ServeConfig::default().workers(1).faults(plan));
        let r = engine.process(uniform_cube(256, 5), PipelineConfig::default());
        assert_eq!(r, Err(ServeError::Internal));
        let m = engine.metrics();
        assert_eq!(m.worker_panics, 0);
        assert_eq!(m.failed_internal, 1);
        engine.shutdown();
    }

    #[test]
    fn injected_block_errors_resolve_internal() {
        let plan = FaultPlan::OFF.with_fault(FaultKind::Err, FaultPoint::Block, 1.0).with_seed(7);
        let engine = Engine::start(ServeConfig::default().workers(1).faults(plan));
        let r = engine.process(uniform_cube(256, 5), PipelineConfig::default());
        assert_eq!(r, Err(ServeError::Internal));
        assert_eq!(engine.metrics().worker_panics, 0);
        engine.shutdown();
    }

    #[test]
    fn injected_cache_insert_errors_skip_the_insert_but_serve_correctly() {
        let plan =
            FaultPlan::OFF.with_fault(FaultKind::Err, FaultPoint::CacheInsert, 1.0).with_seed(7);
        let engine = Engine::start(ServeConfig::default().workers(1).faults(plan));
        let cloud = uniform_cube(1024, 9);
        let a = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        let b = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        // The insert was dropped both times, so the repeat still misses …
        assert!(!a.cache_hit);
        assert!(!b.cache_hit);
        // … and results never depend on the cache.
        assert_eq!(a.sampled_indices, b.sampled_indices);
        assert_eq!(a.neighbor_indices, b.neighbor_indices);
        engine.shutdown();

        let clean = Engine::start(ServeConfig::default().workers(1));
        let c = clean.process(cloud, PipelineConfig::default()).unwrap();
        assert_eq!(c.sampled_indices, a.sampled_indices);
        clean.shutdown();
    }

    #[test]
    fn health_reports_workers_and_progress() {
        let engine = small_engine();
        let before = engine.health();
        assert!(before.live);
        assert_eq!(before.workers_alive, 2);
        assert_eq!(before.workers_configured, 2);
        assert_eq!(before.queued_by_class, [0, 0, 0]);
        engine.process(uniform_cube(512, 3), PipelineConfig::default()).unwrap();
        let after = engine.health();
        assert_eq!(after.worker_panics, 0);
        assert_eq!(after.workers_respawned, 0);
        engine.shutdown();
    }
}

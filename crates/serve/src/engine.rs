//! The request/response engine: bounded admission, adaptive batching, and a
//! budgeted worker pool over the core pipeline.
//!
//! # Lifecycle of a request
//!
//! 1. **Validation** — parameters and frame size are checked before any
//!    queueing; bad requests are *rejected* (caller bug), not shed.
//! 2. **Admission** — the bounded queue (one lane per [`Priority`] class)
//!    either accepts the job or sheds it with a counted [`ShedReason`]. At
//!    the bound an arrival may displace a queued job of strictly lower
//!    class (Bulk sheds first). The queue is the only buffer in the
//!    engine, so memory under overload is bounded by construction.
//! 3. **Batching** — a worker pops the next job per the weighted priority
//!    schedule (4 High : 2 Normal : 1 Bulk), then pulls up to
//!    `max_batch - 1` further *compatible* jobs (equal
//!    [`PipelineConfig`]) from every class, highest first, preserving each
//!    class's arrival order among what remains.
//! 4. **Execution** — with cross-frame block batching
//!    (`ServeConfig::batch_blocks`, the default) a fused batch flattens
//!    the union of all frames' blocks into one work list and runs a single
//!    [`fractalcloud_parallel::parallel_map_budget`] of `(frame, block)`
//!    tasks — each task fusing its block's sampling and grouping — so the
//!    thread budget saturates even when the batch holds few frames with
//!    many blocks each; a lone frame keeps the whole budget for its own
//!    build + blocks. The legacy schedule (one sequential lane per frame)
//!    serves single-worker budgets, where frame-at-a-time order wins on
//!    locality, and remains available everywhere for A/B measurement.
//!    Lane/task allowances are inherited by every nested fan-out
//!    ([`fractalcloud_parallel::effective_budget`]), so the batch's total
//!    worker count stays within the configured budget. Every schedule is
//!    bit-identical to direct library calls — the per-frame assembly is
//!    literally the code [`Pipeline::run_with_partition`] runs — so
//!    scheduling is purely a latency/throughput decision.
//! 5. **Completion** — the response is published through the request's
//!    [`Ticket`] and latency is recorded, globally and per class.
//!
//! Partition reuse: before building, each frame's [`frame_key`] is looked
//! up in the engine-wide [`PartitionCache`]; identical frame bytes at the
//! same threshold reuse the cached `Arc<FractalResult>` and skip straight
//! to the BPPO half ([`Pipeline::run_with_partition`]).

use crate::cache::{frame_key, PartitionCache};
use crate::config::ServeConfig;
use crate::metrics::{Metrics, MetricsSnapshot};
use fractalcloud_core::workspace::{global_pool, Pool};
use fractalcloud_core::{Pipeline, PipelineConfig, PipelineOutput, Workspace};
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::{Error, PointCloud};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Request priority classes.
///
/// The admission queue keeps one lane per class and dequeues them with a
/// fixed weighted schedule (4 High : 2 Normal : 1 Bulk per cycle, falling
/// back to the highest non-empty class), so High work completes first under
/// overload while Bulk is never starved outright. At the queue bound the
/// policy inverts: an arriving request may displace a queued job of a
/// *strictly lower* class (youngest first), so Bulk sheds first when
/// capacity runs out.
///
/// On the wire the class rides in the high nibble of the `FCS1` request
/// kind byte ([`Priority::to_wire`]); pre-priority clients send zeros
/// there, which decodes as [`Priority::Normal`] — the backward-compatible
/// default.
// No PartialOrd/Ord: the declaration order (High first, for dequeue
// preference) would derive `High < Bulk`, inverting every natural
// urgency comparison a caller might write. Compare via [`Priority::index`]
// (smaller = more urgent) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic; dequeued first and never displaced by
    /// arrivals of equal or lower class.
    High,
    /// The default class (and what pre-priority clients get).
    Normal,
    /// Throughput traffic; first to shed at the queue bound.
    Bulk,
}

impl Priority {
    /// Every class, in dequeue-preference order (High first).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Bulk];

    /// Dense index (High = 0, Normal = 1, Bulk = 2) — the order used by
    /// per-class metrics arrays.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Bulk => 2,
        }
    }

    /// Lower-case class name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Bulk => "bulk",
        }
    }

    /// The wire nibble (`0` Normal, `1` High, `2` Bulk). Normal is zero so
    /// a pre-priority client's kind byte decodes to the default class.
    pub fn to_wire(self) -> u8 {
        match self {
            Priority::Normal => 0,
            Priority::High => 1,
            Priority::Bulk => 2,
        }
    }

    /// Decodes a wire nibble; `None` for unknown values (malformed).
    pub fn from_wire(bits: u8) -> Option<Priority> {
        match bits {
            0 => Some(Priority::Normal),
            1 => Some(Priority::High),
            2 => Some(Priority::Bulk),
            _ => None,
        }
    }
}

/// Why a request was load-shed instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    QueueFull,
    /// The frame exceeded the engine's `max_points` limit.
    Oversized {
        /// Points in the offered frame.
        points: usize,
        /// The configured admission limit.
        max_points: usize,
    },
    /// The engine is draining for shutdown.
    ShuttingDown,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "admission queue full"),
            ShedReason::Oversized { points, max_points } => {
                write!(f, "frame of {points} points exceeds limit of {max_points}")
            }
            ShedReason::ShuttingDown => write!(f, "engine shutting down"),
        }
    }
}

/// Errors a request can complete with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Load-shed before execution (retryable; the engine is protecting
    /// itself, the request was fine).
    Shed(ShedReason),
    /// Rejected as invalid (not retryable as-is: empty frame or bad
    /// parameters).
    Invalid(Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed(r) => write!(f, "request shed: {r}"),
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A processed frame: the block-FPS samples and their ball-query groups,
/// exactly as the direct library calls would return them, plus serving
/// metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameResponse {
    /// Sampled global indices (block order), identical to
    /// `block_fps(..).indices`.
    pub sampled_indices: Vec<usize>,
    /// `centers × num` neighbor indices, row-major, identical to
    /// `block_ball_query(..).indices`.
    pub neighbor_indices: Vec<usize>,
    /// In-radius hits per center before padding.
    pub found: Vec<usize>,
    /// Neighbor slots per center.
    pub num: usize,
    /// Leaf blocks in the frame's partition.
    pub blocks: usize,
    /// Aggregated work counters of the sampling stage.
    pub sample_counters: OpCounters,
    /// Aggregated work counters of the grouping stage.
    pub group_counters: OpCounters,
    /// True when the partition came from the LRU cache.
    pub cache_hit: bool,
    /// Number of frames fused into the batch this one ran in.
    pub batch_size: usize,
}

/// Engine lifecycle states (stored in an `AtomicU8`).
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// A one-shot completion slot shared between a worker and a waiter.
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<Result<FrameResponse, ServeError>>>,
    ready: Condvar,
}

/// Handle to one in-flight request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the response (or terminal error) is ready.
    pub fn wait(self) -> Result<FrameResponse, ServeError> {
        let mut guard = self.slot.result.lock().expect("slot lock");
        while guard.is_none() {
            guard = self.slot.ready.wait(guard).expect("slot wait");
        }
        guard.take().expect("checked above")
    }
}

/// One queued unit of work.
struct Job {
    cloud: PointCloud,
    config: PipelineConfig,
    compat: u64,
    priority: Priority,
    admitted_at: Instant,
    slot: Arc<Slot>,
}

/// Weighted dequeue schedule over [`Priority::index`]es: per 7 pops, High
/// gets 4 turns, Normal 2, Bulk 1. An empty scheduled class falls through
/// to the highest non-empty one, so the weights only bite under contention.
const DEQUEUE_SCHEDULE: [usize; 7] = [0, 0, 0, 0, 1, 1, 2];

/// The admission queue: one FIFO lane per priority class plus the weighted
/// round-robin cursor. All mutation happens under one mutex, so the
/// dequeue order is deterministic given the submission order.
struct QueueState {
    classes: [VecDeque<Job>; 3],
    cursor: usize,
}

impl QueueState {
    fn new() -> QueueState {
        QueueState { classes: std::array::from_fn(|_| VecDeque::new()), cursor: 0 }
    }

    fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// Pops the next job per the weighted schedule (falling through to the
    /// highest non-empty class when the scheduled lane is empty).
    fn pop_weighted(&mut self) -> Option<Job> {
        if self.len() == 0 {
            return None;
        }
        let preferred = DEQUEUE_SCHEDULE[self.cursor];
        self.cursor = (self.cursor + 1) % DEQUEUE_SCHEDULE.len();
        self.classes[preferred]
            .pop_front()
            .or_else(|| self.classes.iter_mut().find_map(VecDeque::pop_front))
    }

    /// Removes (to be shed) the youngest queued job of the *lowest* class
    /// strictly below `incoming`, making room at the queue bound — Bulk
    /// sheds first, and nothing of equal or higher class is touched.
    fn displace_below(&mut self, incoming: Priority) -> Option<Job> {
        for class in (incoming.index() + 1..self.classes.len()).rev() {
            if let Some(job) = self.classes[class].pop_back() {
                return Some(job);
            }
        }
        None
    }
}

/// State shared between the public handle and the worker threads.
struct Shared {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    state: AtomicU8,
    metrics: Metrics,
    cache: Mutex<PartitionCache>,
    /// Pooled [`PipelineOutput`] staging: workers refill a recycled output
    /// in place (`run_with_partition_into`), move the response vectors out,
    /// and return the staging — so the per-block rows and other assembly
    /// buffers are reused across frames. Workspaces themselves come from
    /// the core crate's process-wide pool, one per execution lane.
    outputs: Pool<PipelineOutput>,
}

/// The serving engine. See the [module docs](self) for the request
/// lifecycle; construct with [`Engine::start`].
///
/// # Examples
///
/// ```
/// use fractalcloud_serve::{Engine, ServeConfig};
/// use fractalcloud_core::PipelineConfig;
/// use fractalcloud_pointcloud::generate::uniform_cube;
///
/// let engine = Engine::start(ServeConfig::default().workers(2));
/// let frame = uniform_cube(2048, 7);
/// let response = engine.process(frame, PipelineConfig::default()).unwrap();
/// assert_eq!(response.sampled_indices.len(), 512);
/// engine.shutdown();
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Starts `cfg.workers` worker threads and returns the handle.
    pub fn start(cfg: ServeConfig) -> Engine {
        let shared = Arc::new(Shared {
            cache: Mutex::new(PartitionCache::new(cfg.cache_capacity)),
            cfg,
            queue: Mutex::new(QueueState::new()),
            available: Condvar::new(),
            state: AtomicU8::new(RUNNING),
            metrics: Metrics::default(),
            outputs: Pool::new(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fc-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Engine { shared, workers: Mutex::new(workers) }
    }

    /// The engine's configuration.
    pub fn config(&self) -> ServeConfig {
        self.shared.cfg
    }

    /// Validates and admits one [`Priority::Normal`] frame, returning a
    /// [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn submit(&self, cloud: PointCloud, config: PipelineConfig) -> Result<Ticket, ServeError> {
        self.submit_with_priority(cloud, config, Priority::Normal)
    }

    /// Validates and admits one frame at the given [`Priority`], returning
    /// a [`Ticket`] to wait on.
    ///
    /// At the queue bound an arrival may displace a queued job of strictly
    /// lower class (Bulk first); the displaced job's ticket then resolves
    /// to [`ShedReason::QueueFull`] exactly as if it had been refused at
    /// admission.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for empty frames or bad parameters;
    /// [`ServeError::Shed`] when admission declines the request (queue
    /// full with nothing lower-class to displace, oversized frame,
    /// shutdown in progress).
    pub fn submit_with_priority(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
        priority: Priority,
    ) -> Result<Ticket, ServeError> {
        let m = &self.shared.metrics;
        m.submitted.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = config.validate() {
            m.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(e));
        }
        if cloud.is_empty() {
            m.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(Error::EmptyCloud));
        }
        if cloud.len() > self.shared.cfg.max_points {
            m.shed_oversized.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Shed(ShedReason::Oversized {
                points: cloud.len(),
                max_points: self.shared.cfg.max_points,
            }));
        }

        let slot = Arc::new(Slot::default());
        let job = Job {
            compat: config.compat_key(),
            cloud,
            config,
            priority,
            admitted_at: Instant::now(),
            slot: Arc::clone(&slot),
        };
        let displaced = {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            // State is checked under the queue lock: shutdown() transitions
            // under the same lock, so no admission can slip past a drain.
            if self.shared.state.load(Ordering::SeqCst) != RUNNING {
                m.shed_shutdown.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Shed(ShedReason::ShuttingDown));
            }
            let mut displaced = None;
            if queue.len() >= self.shared.cfg.queue_capacity {
                // Bulk sheds first at the bound: a strictly-lower-class
                // queued job makes room, otherwise the arrival itself sheds.
                match queue.displace_below(priority) {
                    Some(victim) => displaced = Some(victim),
                    None => {
                        m.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                        m.shed_by_class[priority.index()].fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Shed(ShedReason::QueueFull));
                    }
                }
            }
            queue.classes[priority.index()].push_back(job);
            m.admitted.fetch_add(1, Ordering::Relaxed);
            m.set_queue_depth(queue.len());
            displaced
        };
        if let Some(victim) = displaced {
            m.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            m.shed_by_class[victim.priority.index()].fetch_add(1, Ordering::Relaxed);
            let mut guard = victim.slot.result.lock().expect("slot lock");
            *guard = Some(Err(ServeError::Shed(ShedReason::QueueFull)));
            victim.slot.ready.notify_all();
        }
        self.shared.available.notify_one();
        Ok(Ticket { slot })
    }

    /// Submits a frame and blocks for its response — the in-process client
    /// call ([`Priority::Normal`]).
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`].
    pub fn process(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
    ) -> Result<FrameResponse, ServeError> {
        self.submit(cloud, config)?.wait()
    }

    /// Submits a frame at the given [`Priority`] and blocks for its
    /// response.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn process_with_priority(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
        priority: Priority,
    ) -> Result<FrameResponse, ServeError> {
        self.submit_with_priority(cloud, config, priority)?.wait()
    }

    /// A point-in-time copy of every serving metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Shared access to the metrics registry (the TCP front-end counts its
    /// connection-level events here).
    pub(crate) fn metrics_registry(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Graceful shutdown: stops admitting (subsequent submits shed with
    /// [`ShedReason::ShuttingDown`]), lets the workers drain every already
    /// admitted job, and joins them. Idempotent; concurrent callers all
    /// block until the drain finishes.
    pub fn shutdown(&self) {
        {
            let _queue = self.shared.queue.lock().expect("queue lock");
            self.shared
                .state
                .compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst)
                .ok();
        }
        self.shared.available.notify_all();
        let mut workers = self.workers.lock().expect("workers lock");
        for h in workers.drain(..) {
            h.join().expect("serve worker panicked");
        }
        self.shared.state.store(STOPPED, Ordering::SeqCst);
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.shared.state.load(Ordering::SeqCst) != STOPPED {
            self.shutdown();
        }
    }
}

/// Worker: pop the next job per the weighted priority schedule, gather its
/// compatibility batch from every class (highest first, preserving each
/// class's arrival order), execute.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(first) = queue.pop_weighted() {
                    let compat = first.compat;
                    let mut batch = vec![first];
                    for class in 0..queue.classes.len() {
                        if batch.len() >= shared.cfg.max_batch {
                            break;
                        }
                        let lane = &mut queue.classes[class];
                        let mut kept = VecDeque::with_capacity(lane.len());
                        while let Some(job) = lane.pop_front() {
                            if batch.len() < shared.cfg.max_batch && job.compat == compat {
                                batch.push(job);
                            } else {
                                kept.push_back(job);
                            }
                        }
                        *lane = kept;
                    }
                    shared.metrics.set_queue_depth(queue.len());
                    break batch;
                }
                if shared.state.load(Ordering::SeqCst) != RUNNING {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue wait");
            }
        };
        execute_batch(shared, batch);
    }
}

/// Publishes one finished request: latency metrics (global and per-class),
/// then the response through the ticket slot.
fn publish(
    m: &Metrics,
    priority: Priority,
    admitted_at: Instant,
    slot: &Slot,
    outcome: Result<FrameResponse, ServeError>,
) {
    let elapsed = admitted_at.elapsed();
    m.latency.record(elapsed);
    m.latency_by_class[priority.index()].record(elapsed);
    m.completed.fetch_add(1, Ordering::Relaxed);
    let mut guard = slot.result.lock().expect("slot lock");
    *guard = Some(outcome);
    slot.ready.notify_all();
}

/// Runs one compatible batch and publishes every response.
fn execute_batch(shared: &Shared, batch: Vec<Job>) {
    let size = batch.len();
    let m = &shared.metrics;
    m.batches.fetch_add(1, Ordering::Relaxed);
    m.batched_frames.fetch_add(size as u64, Ordering::Relaxed);
    let started = Instant::now();
    for job in &batch {
        m.queue_wait.record(started.duration_since(job.admitted_at));
    }

    if size >= 2 && shared.cfg.batch_blocks && shared.cfg.thread_budget > 1 {
        // The tentpole path: flatten the union of all frames' blocks into
        // one work list and run a single budgeted map over fused
        // sample+group block tasks. Only taken when there is a budget to
        // saturate: with one worker the flattened list buys nothing and
        // measures ~1% slower than the frame-at-a-time order below (the
        // partitions-then-blocks barrier costs frame locality), so the
        // legacy order serves budget-1 hosts — results are bit-identical
        // either way; this is purely a schedule choice.
        execute_batch_blocks(shared, batch);
        return;
    }

    // Legacy schedule (and the lone-frame fast path): one lane per frame.
    // `parallel_map_budget_with` divides the engine's budget across the
    // lanes (a lone frame keeps the whole budget), each lane's allowance is
    // inherited by every fan-out inside the pipeline, and each lane checks
    // one workspace out of the process-wide pool — scratch is reused
    // across the lane's frames and across batches, never shared between
    // threads. Results are identical for every budget — only wall-clock
    // (and allocation traffic) differs.
    let outcomes = fractalcloud_parallel::parallel_map_budget_with(
        batch,
        shared.cfg.thread_budget,
        || global_pool().checkout(),
        |_, job, ws| {
            let admitted_at = job.admitted_at;
            let priority = job.priority;
            let slot = Arc::clone(&job.slot);
            let outcome = execute_one(shared, job, size, ws);
            (priority, admitted_at, slot, outcome)
        },
    );
    for (priority, admitted_at, slot, outcome) in outcomes {
        publish(m, priority, admitted_at, &slot, outcome);
    }
}

/// Cross-frame block batching: the union of the batch's blocks runs as ONE
/// budgeted `parallel_map` of fused sample+group `(frame, block)` tasks,
/// with results scattered back per frame — bit-identical to per-frame
/// execution (the per-frame assembly is the same code
/// `Pipeline::run_with_partition` uses), but the thread budget saturates
/// even when the batch holds few frames with many blocks each, and each
/// block's grouping runs right after its sampling while the block's data
/// is hot.
fn execute_batch_blocks(shared: &Shared, batch: Vec<Job>) {
    let size = batch.len();
    let m = &shared.metrics;
    let budget = shared.cfg.thread_budget;

    struct FrameCtx {
        job: Job,
        pipeline: Pipeline,
        key: u64,
        built: Option<(Arc<fractalcloud_core::FractalResult>, bool)>,
    }

    // Stage 0 — pipelines and partition-cache lookups (cheap, sequential).
    let mut frames: Vec<Option<FrameCtx>> = Vec::with_capacity(size);
    for job in batch {
        match Pipeline::new(job.config) {
            Ok(pipeline) => {
                let key = frame_key(&job.cloud, job.config.threshold);
                let cached = shared.cache.lock().expect("cache lock").get(key);
                match &cached {
                    Some(_) => m.cache_hits.fetch_add(1, Ordering::Relaxed),
                    None => m.cache_misses.fetch_add(1, Ordering::Relaxed),
                };
                frames.push(Some(FrameCtx {
                    job,
                    pipeline,
                    key,
                    built: cached.map(|b| (b, true)),
                }));
            }
            Err(e) => {
                // Unreachable in practice (configs are validated at
                // admission), kept total so a worker can never panic.
                publish(m, job.priority, job.admitted_at, &job.slot, Err(ServeError::Invalid(e)));
                frames.push(None);
            }
        }
    }

    // Stage 1 — build missing partitions, parallel across frames; each
    // lane builds with whatever allowance the budget split grants it and
    // a pooled workspace of its own.
    let missing: Vec<usize> = frames
        .iter()
        .enumerate()
        .filter_map(|(f, ctx)| ctx.as_ref().filter(|c| c.built.is_none()).map(|_| f))
        .collect();
    if !missing.is_empty() {
        let builds = fractalcloud_parallel::parallel_map_budget_with(
            missing,
            budget,
            || global_pool().checkout(),
            |_, f, ws| {
                let ctx = frames[f].as_ref().expect("missing frame is live");
                let parallel = fractalcloud_parallel::effective_budget() > 1;
                (f, ctx.pipeline.partition_ws(&ctx.job.cloud, parallel, ws))
            },
        );
        for (f, built) in builds {
            match built {
                Ok(result) => {
                    let ctx = frames[f].as_mut().expect("missing frame is live");
                    let arc = Arc::new(result);
                    shared.cache.lock().expect("cache lock").insert(ctx.key, Arc::clone(&arc));
                    ctx.built = Some((arc, false));
                }
                Err(e) => {
                    let ctx = frames[f].take().expect("missing frame is live");
                    publish(
                        m,
                        ctx.job.priority,
                        ctx.job.admitted_at,
                        &ctx.job.slot,
                        Err(ServeError::Invalid(e)),
                    );
                }
            }
        }
    }

    // Stage 2 — ONE parallel map over the union of all frames' block
    // tasks, tagged (frame, block). A block's ball query depends only on
    // that block's own FPS samples, so each task fuses sampling and
    // grouping for its block (FuseFPS-style): one scheduling pass, and the
    // block's gathered coordinates are still hot when its grouping runs.
    // Tasks are generated frame-major, so the in-order results scatter
    // back per frame (in block order) by a single pass.
    let counts: Vec<Vec<usize>> = frames
        .iter()
        .map(|ctx| match ctx {
            Some(c) => {
                let (built, _) = c.built.as_ref().expect("live frames have partitions");
                c.pipeline.sample_counts(built)
            }
            None => Vec::new(),
        })
        .collect();
    let tasks: Vec<(usize, usize)> =
        counts.iter().enumerate().flat_map(|(f, c)| (0..c.len()).map(move |b| (f, b))).collect();
    let parts = fractalcloud_parallel::parallel_map_budget_with(
        tasks,
        budget,
        || global_pool().checkout(),
        |_, (f, b), ws| {
            let ctx = frames[f].as_ref().expect("task frames are live");
            let (built, _) = ctx.built.as_ref().expect("live frames have partitions");
            let fps = ctx.pipeline.sample_block_ws(&ctx.job.cloud, built, b, counts[f][b], ws);
            let group = ctx.pipeline.group_block_ws(&ctx.job.cloud, built, b, &fps.0, ws);
            ((f, b), fps, group)
        },
    );
    let mut sampled: Vec<Vec<(Vec<usize>, OpCounters)>> =
        counts.iter().map(|c| Vec::with_capacity(c.len())).collect();
    let mut grouped: Vec<Vec<fractalcloud_core::BlockNeighborTask>> =
        counts.iter().map(|c| Vec::with_capacity(c.len())).collect();
    for ((f, _), fps, group) in parts {
        sampled[f].push(fps);
        grouped[f].push(group);
    }

    // Stage 4 — per-frame assembly (the same aggregation a per-frame run
    // uses) and publication.
    for ((ctx, sampled), grouped) in frames.into_iter().zip(sampled).zip(grouped) {
        let Some(ctx) = ctx else { continue };
        let (built, cache_hit) = ctx.built.expect("live frames have partitions");
        let out = ctx.pipeline.assemble_output(&built, sampled, grouped);
        let response = FrameResponse {
            sampled_indices: out.sampled.indices,
            neighbor_indices: out.grouped.indices,
            found: out.grouped.found,
            num: out.grouped.num,
            blocks: out.blocks,
            sample_counters: out.sampled.counters,
            group_counters: out.grouped.counters,
            cache_hit,
            batch_size: size,
        };
        publish(m, ctx.job.priority, ctx.job.admitted_at, &ctx.job.slot, Ok(response));
    }
}

/// Runs one frame through the pipeline, reusing a cached partition when the
/// frame bytes have been seen at this threshold before. Parallelism inside
/// the pipeline is governed by the lane's inherited thread budget (a
/// 1-thread lane resolves every nested fan-out to sequential execution).
///
/// All scratch lives in the lane's `ws`, and the BPPO half refills a pooled
/// [`PipelineOutput`] staging buffer in place; only the vectors the
/// response hands to the client are moved out (their buffers leave with the
/// response — the one unavoidable per-frame allocation class on a warmed
/// engine).
fn execute_one(
    shared: &Shared,
    job: Job,
    batch_size: usize,
    ws: &mut Workspace,
) -> Result<FrameResponse, ServeError> {
    let parallel = fractalcloud_parallel::effective_budget() > 1;
    let pipeline = Pipeline::new(job.config).map_err(ServeError::Invalid)?;
    let key = frame_key(&job.cloud, job.config.threshold);

    let cached = shared.cache.lock().expect("cache lock").get(key);
    let (built, cache_hit) = match cached {
        Some(b) => {
            shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            (b, true)
        }
        None => {
            shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            let built = Arc::new(
                pipeline.partition_ws(&job.cloud, parallel, ws).map_err(ServeError::Invalid)?,
            );
            shared.cache.lock().expect("cache lock").insert(key, Arc::clone(&built));
            (built, false)
        }
    };

    let mut staging = shared.outputs.checkout();
    pipeline
        .run_with_partition_into(&job.cloud, &built, parallel, ws, &mut staging)
        .map_err(ServeError::Invalid)?;
    let out = &mut *staging;
    Ok(FrameResponse {
        sampled_indices: std::mem::take(&mut out.sampled.indices),
        neighbor_indices: std::mem::take(&mut out.grouped.indices),
        found: std::mem::take(&mut out.grouped.found),
        num: out.grouped.num,
        blocks: out.blocks,
        sample_counters: out.sampled.counters,
        group_counters: out.grouped.counters,
        cache_hit,
        batch_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};

    fn small_engine() -> Engine {
        Engine::start(ServeConfig::default().workers(2).queue_capacity(16))
    }

    #[test]
    fn process_round_trips_a_frame() {
        let engine = small_engine();
        let cloud = uniform_cube(1024, 3);
        let r = engine.process(cloud, PipelineConfig::default()).unwrap();
        assert_eq!(r.sampled_indices.len(), 256);
        assert_eq!(r.found.len(), 256);
        assert_eq!(r.neighbor_indices.len(), 256 * r.num);
        assert!(r.blocks >= 4);
        engine.shutdown();
    }

    #[test]
    fn repeated_frame_hits_partition_cache_with_identical_results() {
        let engine = small_engine();
        let cloud = scene_cloud(&SceneConfig::default(), 2048, 5);
        let a = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        let b = engine.process(cloud, PipelineConfig::default()).unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        assert_eq!(a.sampled_indices, b.sampled_indices);
        assert_eq!(a.neighbor_indices, b.neighbor_indices);
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        engine.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_not_shed() {
        let engine = small_engine();
        let empty = engine.process(PointCloud::new(), PipelineConfig::default());
        assert_eq!(empty, Err(ServeError::Invalid(Error::EmptyCloud)));
        let bad = engine
            .process(uniform_cube(64, 1), PipelineConfig { neighbors: 0, ..Default::default() });
        assert!(matches!(bad, Err(ServeError::Invalid(Error::InvalidParameter { .. }))));
        assert_eq!(engine.metrics().rejected_invalid, 2);
        assert_eq!(engine.metrics().shed_total(), 0);
        engine.shutdown();
    }

    #[test]
    fn priority_classes_round_trip_with_identical_results() {
        let engine = small_engine();
        let cloud = uniform_cube(1024, 17);
        let normal = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        for p in Priority::ALL {
            let r =
                engine.process_with_priority(cloud.clone(), PipelineConfig::default(), p).unwrap();
            assert_eq!(r.sampled_indices, normal.sampled_indices, "priority changed results");
            assert_eq!(r.neighbor_indices, normal.neighbor_indices);
        }
        let m = engine.metrics();
        // Normal ran twice (submit defaults to Normal), High and Bulk once.
        assert_eq!(m.completed_by_class, [1, 2, 1]);
        engine.shutdown();
    }

    #[test]
    fn weighted_queue_pops_follow_the_schedule() {
        // Pure queue-state test: deterministic, no threads.
        let mk = |p: Priority| Job {
            cloud: uniform_cube(8, 1),
            config: PipelineConfig::default(),
            compat: 0,
            priority: p,
            admitted_at: Instant::now(),
            slot: Arc::new(Slot::default()),
        };
        let mut q = QueueState::new();
        for _ in 0..3 {
            q.classes[Priority::High.index()].push_back(mk(Priority::High));
            q.classes[Priority::Bulk.index()].push_back(mk(Priority::Bulk));
        }
        q.classes[Priority::Normal.index()].push_back(mk(Priority::Normal));
        // Schedule H,H,H,H,N,N,B with highest-first fall-through: the three
        // Highs drain on their turns, the fourth High turn falls to Normal,
        // and the Normal/Bulk turns drain the Bulk lane.
        let order: Vec<Priority> =
            std::iter::from_fn(|| q.pop_weighted().map(|j| j.priority)).collect();
        assert_eq!(
            order,
            [
                Priority::High,
                Priority::High,
                Priority::High,
                Priority::Normal,
                Priority::Bulk,
                Priority::Bulk,
                Priority::Bulk,
            ]
        );
        assert!(q.pop_weighted().is_none());
    }

    #[test]
    fn displacement_sheds_the_youngest_lowest_class_only() {
        let mk = |p: Priority| Job {
            cloud: uniform_cube(8, 1),
            config: PipelineConfig::default(),
            compat: 0,
            priority: p,
            admitted_at: Instant::now(),
            slot: Arc::new(Slot::default()),
        };
        let mut q = QueueState::new();
        q.classes[Priority::Normal.index()].push_back(mk(Priority::Normal));
        q.classes[Priority::Bulk.index()].push_back(mk(Priority::Bulk));
        // High displaces the Bulk job first, then the Normal one, then
        // nothing (never its own class).
        assert_eq!(q.displace_below(Priority::High).unwrap().priority, Priority::Bulk);
        assert_eq!(q.displace_below(Priority::High).unwrap().priority, Priority::Normal);
        assert!(q.displace_below(Priority::High).is_none());
        // Bulk can never displace; Normal only displaces Bulk.
        q.classes[Priority::Normal.index()].push_back(mk(Priority::Normal));
        assert!(q.displace_below(Priority::Bulk).is_none());
        assert!(q.displace_below(Priority::Normal).is_none());
        q.classes[Priority::Bulk.index()].push_back(mk(Priority::Bulk));
        assert_eq!(q.displace_below(Priority::Normal).unwrap().priority, Priority::Bulk);
    }

    #[test]
    fn submit_after_shutdown_sheds() {
        let engine = small_engine();
        engine.shutdown();
        let r = engine.submit(uniform_cube(64, 1), PipelineConfig::default());
        assert_eq!(r.unwrap_err(), ServeError::Shed(ShedReason::ShuttingDown));
        assert_eq!(engine.metrics().shed_shutdown, 1);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let engine = small_engine();
        engine.shutdown();
        engine.shutdown();
    }
}

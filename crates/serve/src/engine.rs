//! The request/response engine: bounded admission, adaptive batching, and a
//! budgeted worker pool over the core pipeline.
//!
//! # Lifecycle of a request
//!
//! 1. **Validation** — parameters and frame size are checked before any
//!    queueing; bad requests are *rejected* (caller bug), not shed.
//! 2. **Admission** — the bounded queue either accepts the job or sheds it
//!    with a counted [`ShedReason`]. The queue is the only buffer in the
//!    engine, so memory under overload is bounded by construction.
//! 3. **Batching** — a worker pops the oldest job, then pulls up to
//!    `max_batch - 1` further *compatible* jobs (equal
//!    [`PipelineConfig`]) from anywhere in the queue, preserving arrival
//!    order of what remains.
//! 4. **Execution** — the batch fans out on
//!    [`fractalcloud_parallel::parallel_map_budget`]: one lone frame gets
//!    the whole thread budget (parallel build + block scheduling); a full
//!    batch runs each frame sequentially on its own lane
//!    (`FractalConfig::sequential` semantics). Lane allowances are
//!    inherited by every nested fan-out
//!    ([`fractalcloud_parallel::effective_budget`]), so the batch's total
//!    worker count stays within the configured budget. Either way the
//!    results are bit-identical to direct library calls, so scheduling is
//!    purely a latency/throughput decision.
//! 5. **Completion** — the response is published through the request's
//!    [`Ticket`] and latency is recorded.
//!
//! Partition reuse: before building, each frame's [`frame_key`] is looked
//! up in the engine-wide [`PartitionCache`]; identical frame bytes at the
//! same threshold reuse the cached `Arc<FractalResult>` and skip straight
//! to the BPPO half ([`Pipeline::run_with_partition`]).

use crate::cache::{frame_key, PartitionCache};
use crate::config::ServeConfig;
use crate::metrics::{Metrics, MetricsSnapshot};
use fractalcloud_core::{Pipeline, PipelineConfig};
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::{Error, PointCloud};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Why a request was load-shed instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    QueueFull,
    /// The frame exceeded the engine's `max_points` limit.
    Oversized {
        /// Points in the offered frame.
        points: usize,
        /// The configured admission limit.
        max_points: usize,
    },
    /// The engine is draining for shutdown.
    ShuttingDown,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "admission queue full"),
            ShedReason::Oversized { points, max_points } => {
                write!(f, "frame of {points} points exceeds limit of {max_points}")
            }
            ShedReason::ShuttingDown => write!(f, "engine shutting down"),
        }
    }
}

/// Errors a request can complete with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Load-shed before execution (retryable; the engine is protecting
    /// itself, the request was fine).
    Shed(ShedReason),
    /// Rejected as invalid (not retryable as-is: empty frame or bad
    /// parameters).
    Invalid(Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed(r) => write!(f, "request shed: {r}"),
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A processed frame: the block-FPS samples and their ball-query groups,
/// exactly as the direct library calls would return them, plus serving
/// metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameResponse {
    /// Sampled global indices (block order), identical to
    /// `block_fps(..).indices`.
    pub sampled_indices: Vec<usize>,
    /// `centers × num` neighbor indices, row-major, identical to
    /// `block_ball_query(..).indices`.
    pub neighbor_indices: Vec<usize>,
    /// In-radius hits per center before padding.
    pub found: Vec<usize>,
    /// Neighbor slots per center.
    pub num: usize,
    /// Leaf blocks in the frame's partition.
    pub blocks: usize,
    /// Aggregated work counters of the sampling stage.
    pub sample_counters: OpCounters,
    /// Aggregated work counters of the grouping stage.
    pub group_counters: OpCounters,
    /// True when the partition came from the LRU cache.
    pub cache_hit: bool,
    /// Number of frames fused into the batch this one ran in.
    pub batch_size: usize,
}

/// Engine lifecycle states (stored in an `AtomicU8`).
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// A one-shot completion slot shared between a worker and a waiter.
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<Result<FrameResponse, ServeError>>>,
    ready: Condvar,
}

/// Handle to one in-flight request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the response (or terminal error) is ready.
    pub fn wait(self) -> Result<FrameResponse, ServeError> {
        let mut guard = self.slot.result.lock().expect("slot lock");
        while guard.is_none() {
            guard = self.slot.ready.wait(guard).expect("slot wait");
        }
        guard.take().expect("checked above")
    }
}

/// One queued unit of work.
struct Job {
    cloud: PointCloud,
    config: PipelineConfig,
    compat: u64,
    admitted_at: Instant,
    slot: Arc<Slot>,
}

/// State shared between the public handle and the worker threads.
struct Shared {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    state: AtomicU8,
    metrics: Metrics,
    cache: Mutex<PartitionCache>,
}

/// The serving engine. See the [module docs](self) for the request
/// lifecycle; construct with [`Engine::start`].
///
/// # Examples
///
/// ```
/// use fractalcloud_serve::{Engine, ServeConfig};
/// use fractalcloud_core::PipelineConfig;
/// use fractalcloud_pointcloud::generate::uniform_cube;
///
/// let engine = Engine::start(ServeConfig::default().workers(2));
/// let frame = uniform_cube(2048, 7);
/// let response = engine.process(frame, PipelineConfig::default()).unwrap();
/// assert_eq!(response.sampled_indices.len(), 512);
/// engine.shutdown();
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Starts `cfg.workers` worker threads and returns the handle.
    pub fn start(cfg: ServeConfig) -> Engine {
        let shared = Arc::new(Shared {
            cache: Mutex::new(PartitionCache::new(cfg.cache_capacity)),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            state: AtomicU8::new(RUNNING),
            metrics: Metrics::default(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fc-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Engine { shared, workers: Mutex::new(workers) }
    }

    /// The engine's configuration.
    pub fn config(&self) -> ServeConfig {
        self.shared.cfg
    }

    /// Validates and admits one frame, returning a [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for empty frames or bad parameters;
    /// [`ServeError::Shed`] when admission declines the request (queue
    /// full, oversized frame, shutdown in progress).
    pub fn submit(&self, cloud: PointCloud, config: PipelineConfig) -> Result<Ticket, ServeError> {
        let m = &self.shared.metrics;
        m.submitted.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = config.validate() {
            m.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(e));
        }
        if cloud.is_empty() {
            m.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(Error::EmptyCloud));
        }
        if cloud.len() > self.shared.cfg.max_points {
            m.shed_oversized.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Shed(ShedReason::Oversized {
                points: cloud.len(),
                max_points: self.shared.cfg.max_points,
            }));
        }

        let slot = Arc::new(Slot::default());
        let job = Job {
            compat: config.compat_key(),
            cloud,
            config,
            admitted_at: Instant::now(),
            slot: Arc::clone(&slot),
        };
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            // State is checked under the queue lock: shutdown() transitions
            // under the same lock, so no admission can slip past a drain.
            if self.shared.state.load(Ordering::SeqCst) != RUNNING {
                m.shed_shutdown.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Shed(ShedReason::ShuttingDown));
            }
            if queue.len() >= self.shared.cfg.queue_capacity {
                m.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Shed(ShedReason::QueueFull));
            }
            queue.push_back(job);
            m.admitted.fetch_add(1, Ordering::Relaxed);
            m.set_queue_depth(queue.len());
        }
        self.shared.available.notify_one();
        Ok(Ticket { slot })
    }

    /// Submits a frame and blocks for its response — the in-process client
    /// call.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`].
    pub fn process(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
    ) -> Result<FrameResponse, ServeError> {
        self.submit(cloud, config)?.wait()
    }

    /// A point-in-time copy of every serving metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Shared access to the metrics registry (the TCP front-end counts its
    /// connection-level events here).
    pub(crate) fn metrics_registry(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Graceful shutdown: stops admitting (subsequent submits shed with
    /// [`ShedReason::ShuttingDown`]), lets the workers drain every already
    /// admitted job, and joins them. Idempotent; concurrent callers all
    /// block until the drain finishes.
    pub fn shutdown(&self) {
        {
            let _queue = self.shared.queue.lock().expect("queue lock");
            self.shared
                .state
                .compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst)
                .ok();
        }
        self.shared.available.notify_all();
        let mut workers = self.workers.lock().expect("workers lock");
        for h in workers.drain(..) {
            h.join().expect("serve worker panicked");
        }
        self.shared.state.store(STOPPED, Ordering::SeqCst);
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.shared.state.load(Ordering::SeqCst) != STOPPED {
            self.shutdown();
        }
    }
}

/// Worker: pop the oldest job, gather its compatibility batch, execute.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(first) = queue.pop_front() {
                    let mut batch = vec![first];
                    let compat = batch[0].compat;
                    let mut kept = VecDeque::with_capacity(queue.len());
                    while let Some(job) = queue.pop_front() {
                        if batch.len() < shared.cfg.max_batch && job.compat == compat {
                            batch.push(job);
                        } else {
                            kept.push_back(job);
                        }
                    }
                    *queue = kept;
                    shared.metrics.set_queue_depth(queue.len());
                    break batch;
                }
                if shared.state.load(Ordering::SeqCst) != RUNNING {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue wait");
            }
        };
        execute_batch(shared, batch);
    }
}

/// Runs one compatible batch and publishes every response.
fn execute_batch(shared: &Shared, batch: Vec<Job>) {
    let size = batch.len();
    let m = &shared.metrics;
    m.batches.fetch_add(1, Ordering::Relaxed);
    m.batched_frames.fetch_add(size as u64, Ordering::Relaxed);
    let started = Instant::now();
    for job in &batch {
        m.queue_wait.record(started.duration_since(job.admitted_at));
    }

    // Per-request thread budgets: `parallel_map_budget` divides the
    // engine's budget evenly across the batch lanes (a lone frame keeps
    // the whole budget, a full batch gets one sequential lane per frame)
    // and each lane's allowance is inherited by every fan-out inside the
    // pipeline, so the batch never exceeds the configured budget. Results
    // are identical for every budget — only wall-clock differs.
    let outcomes =
        fractalcloud_parallel::parallel_map_budget(batch, shared.cfg.thread_budget, |_, job| {
            let admitted_at = job.admitted_at;
            let slot = Arc::clone(&job.slot);
            let outcome = execute_one(shared, job, size);
            (admitted_at, slot, outcome)
        });
    for (admitted_at, slot, outcome) in outcomes {
        m.latency.record(admitted_at.elapsed());
        m.completed.fetch_add(1, Ordering::Relaxed);
        let mut guard = slot.result.lock().expect("slot lock");
        *guard = Some(outcome);
        slot.ready.notify_all();
    }
}

/// Runs one frame through the pipeline, reusing a cached partition when the
/// frame bytes have been seen at this threshold before. Parallelism inside
/// the pipeline is governed by the lane's inherited thread budget (a
/// 1-thread lane resolves every nested fan-out to sequential execution).
fn execute_one(shared: &Shared, job: Job, batch_size: usize) -> Result<FrameResponse, ServeError> {
    let parallel = fractalcloud_parallel::effective_budget() > 1;
    let pipeline = Pipeline::new(job.config).map_err(ServeError::Invalid)?;
    let key = frame_key(&job.cloud, job.config.threshold);

    let cached = shared.cache.lock().expect("cache lock").get(key);
    let (built, cache_hit) = match cached {
        Some(b) => {
            shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            (b, true)
        }
        None => {
            shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            let built =
                Arc::new(pipeline.partition(&job.cloud, parallel).map_err(ServeError::Invalid)?);
            shared.cache.lock().expect("cache lock").insert(key, Arc::clone(&built));
            (built, false)
        }
    };

    let out =
        pipeline.run_with_partition(&job.cloud, &built, parallel).map_err(ServeError::Invalid)?;
    Ok(FrameResponse {
        sampled_indices: out.sampled.indices,
        neighbor_indices: out.grouped.indices,
        found: out.grouped.found,
        num: out.grouped.num,
        blocks: out.blocks,
        sample_counters: out.sampled.counters,
        group_counters: out.grouped.counters,
        cache_hit,
        batch_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};

    fn small_engine() -> Engine {
        Engine::start(ServeConfig::default().workers(2).queue_capacity(16))
    }

    #[test]
    fn process_round_trips_a_frame() {
        let engine = small_engine();
        let cloud = uniform_cube(1024, 3);
        let r = engine.process(cloud, PipelineConfig::default()).unwrap();
        assert_eq!(r.sampled_indices.len(), 256);
        assert_eq!(r.found.len(), 256);
        assert_eq!(r.neighbor_indices.len(), 256 * r.num);
        assert!(r.blocks >= 4);
        engine.shutdown();
    }

    #[test]
    fn repeated_frame_hits_partition_cache_with_identical_results() {
        let engine = small_engine();
        let cloud = scene_cloud(&SceneConfig::default(), 2048, 5);
        let a = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        let b = engine.process(cloud, PipelineConfig::default()).unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        assert_eq!(a.sampled_indices, b.sampled_indices);
        assert_eq!(a.neighbor_indices, b.neighbor_indices);
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        engine.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_not_shed() {
        let engine = small_engine();
        let empty = engine.process(PointCloud::new(), PipelineConfig::default());
        assert_eq!(empty, Err(ServeError::Invalid(Error::EmptyCloud)));
        let bad = engine
            .process(uniform_cube(64, 1), PipelineConfig { neighbors: 0, ..Default::default() });
        assert!(matches!(bad, Err(ServeError::Invalid(Error::InvalidParameter { .. }))));
        assert_eq!(engine.metrics().rejected_invalid, 2);
        assert_eq!(engine.metrics().shed_total(), 0);
        engine.shutdown();
    }

    #[test]
    fn submit_after_shutdown_sheds() {
        let engine = small_engine();
        engine.shutdown();
        let r = engine.submit(uniform_cube(64, 1), PipelineConfig::default());
        assert_eq!(r.unwrap_err(), ServeError::Shed(ShedReason::ShuttingDown));
        assert_eq!(engine.metrics().shed_shutdown, 1);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let engine = small_engine();
        engine.shutdown();
        engine.shutdown();
    }
}

//! The request/response engine: bounded admission, adaptive batching, and a
//! budgeted worker pool over the core pipeline.
//!
//! # Lifecycle of a request
//!
//! 1. **Validation** — parameters and frame size are checked before any
//!    queueing; bad requests are *rejected* (caller bug), not shed.
//! 2. **Admission** — the bounded queue (one lane per [`Priority`] class)
//!    either accepts the job or sheds it with a counted [`ShedReason`]. At
//!    the bound an arrival may displace a queued job of strictly lower
//!    class (Bulk sheds first). The queue is the only buffer in the
//!    engine, so memory under overload is bounded by construction.
//! 3. **Batching** — a worker pops the next job per the weighted priority
//!    schedule (4 High : 2 Normal : 1 Bulk), then pulls up to
//!    `max_batch - 1` further *compatible* jobs (equal
//!    [`PipelineConfig`]) from every class, highest first, preserving each
//!    class's arrival order among what remains.
//! 4. **Execution** — with cross-frame block batching
//!    (`ServeConfig::batch_blocks`, the default) a fused batch flattens
//!    the union of all frames' blocks into one work list and runs a single
//!    [`fractalcloud_parallel::parallel_map_budget`] of `(frame, block)`
//!    tasks — each task fusing its block's sampling and grouping — so the
//!    thread budget saturates even when the batch holds few frames with
//!    many blocks each; a lone frame keeps the whole budget for its own
//!    build + blocks. The legacy schedule (one sequential lane per frame)
//!    serves single-worker budgets, where frame-at-a-time order wins on
//!    locality, and remains available everywhere for A/B measurement.
//!    Lane/task allowances are inherited by every nested fan-out
//!    ([`fractalcloud_parallel::effective_budget`]), so the batch's total
//!    worker count stays within the configured budget. Every schedule is
//!    bit-identical to direct library calls — the per-frame assembly is
//!    literally the code [`Pipeline::run_with_partition`] runs — so
//!    scheduling is purely a latency/throughput decision.
//! 5. **Completion** — the response is published through the request's
//!    [`Ticket`] and latency is recorded, globally and per class.
//!
//! Partition reuse: before building, each frame's [`frame_key`] is looked
//! up in the engine-wide [`PartitionCache`]; identical frame bytes at the
//! same threshold reuse the cached `Arc<FractalResult>` and skip straight
//! to the BPPO half ([`Pipeline::run_with_partition`]).
//!
//! # Failure model
//!
//! A request always gets **exactly one** terminal outcome, whatever happens
//! to the worker executing it:
//!
//! * Every admitted job carries a drop-guard ([`TicketGuard`]) that
//!   resolves its slot with the non-retryable [`ServeError::Internal`] if
//!   the job is dropped unresolved — so an executor panic (real or
//!   injected) can never strand a waiter in [`Ticket::wait`].
//! * Worker panics are supervised: the unwinding worker spawns a
//!   replacement (succession) and exits; `worker_panics` /
//!   `workers_respawned` count the events, and the engine keeps serving.
//!   Workspaces and output staging live during an unwind are discarded,
//!   never re-pooled (see [`fractalcloud_core::workspace::PoolGuard`]).
//! * Shared mutexes are recovered from poisoning with
//!   [`lock_unpoisoned`]: every critical section over the queue, cache,
//!   worker registry and ticket slots keeps its data valid even when
//!   interrupted by a panic (single `VecDeque`/`HashMap`/`Vec`/`Option`
//!   operations — each is exception-safe in isolation), so a poisoned
//!   lock still guards a valid-by-construction structure.
//! * Deadlines are cooperative: expired-in-queue jobs shed with the
//!   retryable [`ShedReason::DeadlineExceeded`], the batcher excludes
//!   expired frames from fusion, and mid-run expiry cancels at the
//!   pipeline stage seams ([`CancelToken`]).
//! * The seeded fault layer ([`crate::faults`]) injects panics, delays and
//!   errors at fixed points for chaos testing; it is off by default and
//!   its disabled cost is one `Option` check per site.

use crate::cache::{frame_key, PartitionCache};
use crate::config::ServeConfig;
use crate::faults::{self, FaultLayer, FaultPoint};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::overload::{OverloadController, OverloadLevel, MAX_BROWNOUT, SHED_LEVEL};
use fractalcloud_core::workspace::{global_pool, workspace_mode, Pool, WorkspaceMode};
use fractalcloud_core::{
    fnv1a64, CancelToken, LodSlice, Pipeline, PipelineConfig, PipelineOutput, Workspace,
    FNV1A64_SEED,
};
use fractalcloud_obs as obs;
use fractalcloud_pnn::{Aggregation, InferOutput, InferenceConfig, ModelConfig, NetworkExecutor};
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::{Error, PointCloud};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks `m`, recovering from poisoning instead of propagating the panic
/// of whichever thread died while holding the guard.
///
/// Soundness contract (checked at every call site in this crate): the data
/// behind the mutex must be valid after *any* prefix of the critical
/// section — which holds here because each critical section performs
/// individually exception-safe container operations (`VecDeque`
/// push/pop, `HashMap` get/insert, `Vec` push/drain, `Option` writes) and
/// never leaves a multi-step invariant half-established.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Request priority classes.
///
/// The admission queue keeps one lane per class and dequeues them with a
/// fixed weighted schedule (4 High : 2 Normal : 1 Bulk per cycle, falling
/// back to the highest non-empty class), so High work completes first under
/// overload while Bulk is never starved outright. At the queue bound the
/// policy inverts: an arriving request may displace a queued job of a
/// *strictly lower* class (youngest first), so Bulk sheds first when
/// capacity runs out.
///
/// On the wire the class rides in the high nibble of the `FCS1` request
/// kind byte ([`Priority::to_wire`]); pre-priority clients send zeros
/// there, which decodes as [`Priority::Normal`] — the backward-compatible
/// default.
// No PartialOrd/Ord: the declaration order (High first, for dequeue
// preference) would derive `High < Bulk`, inverting every natural
// urgency comparison a caller might write. Compare via [`Priority::index`]
// (smaller = more urgent) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic; dequeued first and never displaced by
    /// arrivals of equal or lower class.
    High,
    /// The default class (and what pre-priority clients get).
    Normal,
    /// Throughput traffic; first to shed at the queue bound.
    Bulk,
}

impl Priority {
    /// Every class, in dequeue-preference order (High first).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Bulk];

    /// Dense index (High = 0, Normal = 1, Bulk = 2) — the order used by
    /// per-class metrics arrays.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Bulk => 2,
        }
    }

    /// Lower-case class name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Bulk => "bulk",
        }
    }

    /// The wire nibble (`0` Normal, `1` High, `2` Bulk). Normal is zero so
    /// a pre-priority client's kind byte decodes to the default class.
    pub fn to_wire(self) -> u8 {
        match self {
            Priority::Normal => 0,
            Priority::High => 1,
            Priority::Bulk => 2,
        }
    }

    /// Decodes a wire nibble; `None` for unknown values (malformed).
    pub fn from_wire(bits: u8) -> Option<Priority> {
        match bits {
            0 => Some(Priority::Normal),
            1 => Some(Priority::High),
            2 => Some(Priority::Bulk),
            _ => None,
        }
    }
}

/// Why a request was load-shed instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    QueueFull,
    /// The frame exceeded the engine's `max_points` limit.
    Oversized {
        /// Points in the offered frame.
        points: usize,
        /// The configured admission limit.
        max_points: usize,
    },
    /// The engine is draining for shutdown.
    ShuttingDown,
    /// The request's deadline expired before it finished executing (in the
    /// queue, at batch assembly, or at a pipeline stage seam). Retryable —
    /// with a fresh deadline.
    DeadlineExceeded,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "admission queue full"),
            ShedReason::Oversized { points, max_points } => {
                write!(f, "frame of {points} points exceeds limit of {max_points}")
            }
            ShedReason::ShuttingDown => write!(f, "engine shutting down"),
            ShedReason::DeadlineExceeded => write!(f, "deadline exceeded before completion"),
        }
    }
}

/// Errors a request can complete with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Load-shed before execution (retryable; the engine is protecting
    /// itself, the request was fine).
    Shed(ShedReason),
    /// Rejected as invalid (not retryable as-is: empty frame or bad
    /// parameters).
    Invalid(Error),
    /// The request's executor failed (panicked, or hit an injected fault).
    /// Not retryable blindly — the same input may fail the same way; the
    /// engine itself survived and keeps serving.
    Internal,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed(r) => write!(f, "request shed: {r}"),
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServeError::Internal => write!(f, "internal error: the request's executor failed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A processed frame: the block-FPS samples and their ball-query groups,
/// exactly as the direct library calls would return them, plus serving
/// metadata.
///
/// Hand a finished response back with [`Engine::recycle`] and its index
/// buffers rejoin the engine's staging pool — the warmed cache-hit serving
/// path then performs no heap allocation at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameResponse {
    /// Sampled global indices (block order), identical to
    /// `block_fps(..).indices`.
    pub sampled_indices: Vec<usize>,
    /// `centers × num` neighbor indices, row-major, identical to
    /// `block_ball_query(..).indices`.
    pub neighbor_indices: Vec<usize>,
    /// In-radius hits per center before padding.
    pub found: Vec<usize>,
    /// Neighbor slots per center.
    pub num: usize,
    /// Leaf blocks in the frame's partition.
    pub blocks: usize,
    /// Aggregated work counters of the sampling stage.
    pub sample_counters: OpCounters,
    /// Aggregated work counters of the grouping stage.
    pub group_counters: OpCounters,
    /// True when the partition came from the LRU cache.
    pub cache_hit: bool,
    /// Number of frames fused into the batch this one ran in.
    pub batch_size: usize,
    /// True when the engine browned this response out under overload: it
    /// carries only the first `budget_served` samples of the answer the
    /// request asked for — a bit-identical prefix of that answer, per the
    /// quality-ordering contract.
    pub degraded: bool,
    /// Samples actually served when `degraded` (0 when not degraded).
    pub budget_served: usize,
}

/// One network-inference result, with serving metadata attached.
///
/// Hand a finished response back with [`Engine::recycle_infer`] and its
/// logit buffers rejoin the engine's staging pool, keeping the warmed
/// inference path allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Logits, row indices, and the MACs-moved / MACs-saved / gather-bytes
    /// accounting of the executed schedule.
    pub output: InferOutput,
    /// The aggregation schedule that actually ran (the server resolves
    /// "default" before executing).
    pub aggregation: Aggregation,
    /// True when the partition came from the LRU cache.
    pub cache_hit: bool,
    /// Number of requests fused into the batch this one ran in.
    pub batch_size: usize,
}

/// What a resolved slot carries: one variant per request kind. Private —
/// the public [`Ticket`]/[`InferTicket`] handles unwrap the variant their
/// submission created (the kinds never cross because a ticket type is only
/// ever minted by the matching `submit_*`).
#[derive(Debug)]
enum EngineResponse {
    Frame(FrameResponse),
    Infer(InferResponse),
    Chunk(StreamChunkResponse),
}

/// One coarse-to-fine refinement slice of a streamed frame: samples
/// `slice.lo..slice.hi` of the frame's quality ordering, with their
/// neighbor rows — the engine-side payload behind a `CHUNK` wire frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamChunkResponse {
    /// The per-block refinement deltas (see
    /// [`PipelineOutput::slice_level`]).
    pub slice: LodSlice,
    /// True when the frame's partition came from the LRU cache (the same
    /// flag a direct request reports, so accumulated chunks reproduce a
    /// direct response byte-for-byte on a warm frame).
    pub cache_hit: bool,
}

/// Engine lifecycle states (stored in an `AtomicU8`). `SOFT_DRAINING` is
/// the zero-downtime maintenance state ([`Engine::drain`]): admissions
/// shed, but workers keep running (and keep finishing in-flight work, and
/// can still be re-armed by [`Engine::resume`]); `DRAINING` is the
/// terminal shutdown drain, after which workers exit.
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;
const SOFT_DRAINING: u8 = 3;

/// A one-shot completion slot shared between a worker and a waiter.
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<Result<EngineResponse, ServeError>>>,
    ready: Condvar,
}

/// A free-list of completion slots. A request needs one `Arc<Slot>` per
/// submission; recycling them (instead of `Arc::new` per request) removes
/// the last steady-state allocation from the warmed serving path.
///
/// A slot is released by whichever end — the waiter's [`Ticket`] or the
/// engine's [`TicketGuard`] — drops its `Arc` *last*: each release attempt
/// checks `Arc::strong_count == 1` (plus no weak refs), i.e. "I hold the
/// only handle". Both ends racing see a count of 2 and neither pools (the
/// slot just deallocates — safe, merely one allocation next time); the
/// count reaching 1 for exactly one of them is what makes double-pooling
/// impossible. Observing the other side's decrement also orders its final
/// mutex accesses before the reset here, and the reset-then-push happens
/// while no other handle exists, so a recycled slot is always `None` and
/// unobserved. Honors [`workspace_mode`]: `fresh` disables recycling.
#[derive(Debug, Default)]
struct SlotStash {
    slots: Mutex<Vec<Arc<Slot>>>,
}

impl SlotStash {
    fn take(&self) -> Arc<Slot> {
        if workspace_mode() == WorkspaceMode::Reuse {
            if let Some(slot) = lock_unpoisoned(&self.slots).pop() {
                return slot;
            }
        }
        Arc::new(Slot::default())
    }

    fn release(&self, slot: Arc<Slot>) {
        if workspace_mode() == WorkspaceMode::Reuse
            && Arc::strong_count(&slot) == 1
            && Arc::weak_count(&slot) == 0
        {
            *lock_unpoisoned(&slot.result) = None;
            lock_unpoisoned(&self.slots).push(slot);
        }
    }
}

/// Handle to one in-flight request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    /// `Some` until the drop handler releases the slot to the stash.
    slot: Option<Arc<Slot>>,
    stash: Arc<SlotStash>,
    /// Flight-recorder request id minted at admission.
    req: u64,
}

impl Ticket {
    /// The flight-recorder request id this admission minted — the key that
    /// reassembles the request's spans ([`fractalcloud_obs::spans_for`])
    /// and labels its wire-side spans.
    pub fn request_id(&self) -> u64 {
        self.req
    }

    /// Blocks until the slot resolves, whatever the response kind.
    fn wait_any(&self) -> Result<EngineResponse, ServeError> {
        let slot = self.slot.as_ref().expect("slot present until drop");
        let mut guard = lock_unpoisoned(&slot.result);
        while guard.is_none() {
            guard = slot.ready.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
        guard.take().expect("checked above")
    }

    /// As [`Ticket::wait_any`], bounded by a timeout (`None` = pending).
    fn wait_any_timeout(&self, timeout: Duration) -> Option<Result<EngineResponse, ServeError>> {
        let slot = self.slot.as_ref().expect("slot present until drop");
        let deadline = Instant::now().checked_add(timeout)?;
        let mut guard = lock_unpoisoned(&slot.result);
        while guard.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _timed_out) = slot
                .ready
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
        Some(guard.take().expect("checked above"))
    }

    /// Blocks until the response (or terminal error) is ready. Never hangs:
    /// every admitted job carries a drop-guard that resolves the slot (with
    /// [`ServeError::Internal`]) even when its executor panics or its
    /// worker dies.
    pub fn wait(self) -> Result<FrameResponse, ServeError> {
        match self.wait_any() {
            Ok(EngineResponse::Frame(r)) => Ok(r),
            // Unreachable by construction: a `Ticket` is only minted by the
            // frame-submitting paths. Kept total so a logic error surfaces
            // as an error, never a panic in a waiter.
            Ok(_) => Err(ServeError::Internal),
            Err(e) => Err(e),
        }
    }

    /// [`Ticket::wait`] bounded by a timeout: `None` when the response was
    /// still pending after `timeout` (the ticket is consumed; the request
    /// keeps running and resolves into the abandoned slot). The engine's
    /// failure model makes `None` an anomaly worth asserting on — chaos
    /// tests use exactly that.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<FrameResponse, ServeError>> {
        match self.wait_any_timeout(timeout) {
            Some(Ok(EngineResponse::Frame(r))) => Some(Ok(r)),
            Some(Ok(_)) => Some(Err(ServeError::Internal)),
            Some(Err(e)) => Some(Err(e)),
            None => None,
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            self.stash.release(slot);
        }
    }
}

/// Handle to one in-flight inference request; redeem with
/// [`InferTicket::wait`]. Same completion contract as [`Ticket`].
#[derive(Debug)]
pub struct InferTicket {
    inner: Ticket,
}

impl InferTicket {
    /// The flight-recorder request id, as [`Ticket::request_id`].
    pub fn request_id(&self) -> u64 {
        self.inner.request_id()
    }

    /// Blocks until the inference response (or terminal error) is ready.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        match self.inner.wait_any() {
            Ok(EngineResponse::Infer(r)) => Ok(r),
            Ok(_) => Err(ServeError::Internal),
            Err(e) => Err(e),
        }
    }

    /// [`Ticket::wait_timeout`], for inference requests.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<InferResponse, ServeError>> {
        match self.inner.wait_any_timeout(timeout) {
            Some(Ok(EngineResponse::Infer(r))) => Some(Ok(r)),
            Some(Ok(_)) => Some(Err(ServeError::Internal)),
            Some(Err(e)) => Some(Err(e)),
            None => None,
        }
    }
}

/// Handle to one in-flight streaming chunk; redeem with
/// [`StreamTicket::wait`]. Same completion contract as [`Ticket`].
#[derive(Debug)]
pub struct StreamTicket {
    inner: Ticket,
}

impl StreamTicket {
    /// The flight-recorder request id, as [`Ticket::request_id`].
    pub fn request_id(&self) -> u64 {
        self.inner.request_id()
    }

    /// Blocks until the chunk (or terminal error) is ready.
    pub fn wait(self) -> Result<StreamChunkResponse, ServeError> {
        match self.inner.wait_any() {
            Ok(EngineResponse::Chunk(r)) => Ok(r),
            Ok(_) => Err(ServeError::Internal),
            Err(e) => Err(e),
        }
    }

    /// [`Ticket::wait_timeout`], for streaming chunks.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Option<Result<StreamChunkResponse, ServeError>> {
        match self.inner.wait_any_timeout(timeout) {
            Some(Ok(EngineResponse::Chunk(r))) => Some(Ok(r)),
            Some(Ok(_)) => Some(Err(ServeError::Internal)),
            Some(Err(e)) => Some(Err(e)),
            None => None,
        }
    }
}

/// The engine-side twin of a [`Ticket`]: owns the obligation to resolve
/// the slot exactly once. Explicit resolution goes through
/// [`TicketGuard::finish`]; if the guard is instead *dropped* unresolved —
/// an executor unwound, a worker died with jobs in hand, a batch vector
/// was discarded mid-panic — `Drop` resolves the slot with
/// [`ServeError::Internal`] so the waiter always wakes. First resolution
/// wins; later ones are no-ops.
struct TicketGuard {
    priority: Priority,
    admitted_at: Instant,
    /// Flight-recorder request id (shared with the waiter's [`Ticket`]).
    req: u64,
    /// `Some` until the drop handler releases the slot to the stash.
    slot: Option<Arc<Slot>>,
    stash: Arc<SlotStash>,
    metrics: Arc<Metrics>,
    /// Whether this guard already resolved its slot. Tracked on the guard
    /// (not inferred from the slot) because a waiter *takes* the result
    /// out of the slot — an emptied slot must not look unresolved to the
    /// guard's own `Drop`.
    resolved: bool,
}

impl TicketGuard {
    /// Resolves the ticket with `outcome` and records the outcome-class
    /// metrics (latency + completion for delivered responses, the
    /// dedicated counters for deadline sheds and internal failures;
    /// queue-bound sheds are counted by the displacing submitter).
    fn finish(mut self, outcome: Result<EngineResponse, ServeError>) {
        self.resolve(outcome);
        // The impending Drop finds `resolved` set: no-op.
    }

    fn resolve(&mut self, outcome: Result<EngineResponse, ServeError>) {
        if self.resolved {
            return;
        }
        self.resolved = true;
        let slot = self.slot.as_ref().expect("slot present until drop");
        let mut guard = lock_unpoisoned(&slot.result);
        if guard.is_some() {
            return;
        }
        match &outcome {
            Ok(_) | Err(ServeError::Invalid(_)) => {
                let elapsed = self.admitted_at.elapsed();
                self.metrics.latency.record(elapsed);
                self.metrics.latency_by_class[self.priority.index()].record(elapsed);
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                self.metrics.note_progress();
                if let Some(threshold) = obs::slow_threshold_ms() {
                    if elapsed.as_millis() as u64 >= threshold {
                        log_slow_request(self.req, self.priority, elapsed, threshold);
                    }
                }
            }
            Err(ServeError::Shed(ShedReason::DeadlineExceeded)) => {
                self.metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServeError::Shed(_)) => {}
            Err(ServeError::Internal) => {
                self.metrics.failed_internal.fetch_add(1, Ordering::Relaxed);
            }
        }
        *guard = Some(outcome);
        drop(guard);
        slot.ready.notify_all();
    }
}

impl Drop for TicketGuard {
    fn drop(&mut self) {
        // Reached unresolved only when the job was abandoned by a panic
        // somewhere between admission and publication.
        self.resolve(Err(ServeError::Internal));
        if let Some(slot) = self.slot.take() {
            self.stash.release(slot);
        }
    }
}

/// What a queued job executes: a stage-1 frame, or a full network forward
/// pass fed by that same stage-1 output.
enum WorkKind {
    /// Sampling + grouping — the original PROCESS_FRAME request. A
    /// non-zero `budget` truncates the frame's quality ordering to its
    /// first `budget` samples (bit-identical to the prefix of a full run);
    /// 0 runs the full depth.
    Frame { budget: usize },
    /// One progressive-LOD refinement slice: samples `lo..hi` of the
    /// frame's quality ordering, cut from the cached (or freshly computed)
    /// full-depth output.
    Stream { lo: usize, hi: usize },
    /// End-to-end inference through the shared, pre-materialized executor
    /// (one per distinct `(model, seed, aggregation)`, cached engine-wide).
    Infer { executor: Arc<NetworkExecutor> },
}

/// One queued unit of work. The cloud rides behind an `Arc` so in-process
/// clients can submit without copying the frame (and so a warmed serving
/// loop stays allocation-free).
struct Job {
    cloud: Arc<PointCloud>,
    config: PipelineConfig,
    compat: u64,
    kind: WorkKind,
    priority: Priority,
    /// Brown-out budget shift captured at admission (0 = full quality):
    /// a frame job executes at `max(1, requested_budget >> degrade)`
    /// samples. Snapshotting the level at admission (not execution) keeps
    /// one request's answer a function of one controller reading.
    degrade: u8,
    /// Flight-recorder request id; threads every span the job's execution
    /// records — across worker lanes — back to this admission.
    req: u64,
    admitted_at: Instant,
    /// Absolute execution deadline (`None` = unbounded).
    deadline: Option<Instant>,
    ticket: TicketGuard,
}

impl Job {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// Weighted dequeue schedule over [`Priority::index`]es: per 7 pops, High
/// gets 4 turns, Normal 2, Bulk 1. An empty scheduled class falls through
/// to the highest non-empty one, so the weights only bite under contention.
const DEQUEUE_SCHEDULE: [usize; 7] = [0, 0, 0, 0, 1, 1, 2];

/// The admission queue: one FIFO lane per priority class plus the weighted
/// round-robin cursor. All mutation happens under one mutex, so the
/// dequeue order is deterministic given the submission order.
struct QueueState {
    classes: [VecDeque<Job>; 3],
    cursor: usize,
}

impl QueueState {
    fn new() -> QueueState {
        QueueState { classes: std::array::from_fn(|_| VecDeque::new()), cursor: 0 }
    }

    fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// Pops the next job per the weighted schedule (falling through to the
    /// highest non-empty class when the scheduled lane is empty).
    fn pop_weighted(&mut self) -> Option<Job> {
        if self.len() == 0 {
            return None;
        }
        let preferred = DEQUEUE_SCHEDULE[self.cursor];
        self.cursor = (self.cursor + 1) % DEQUEUE_SCHEDULE.len();
        self.classes[preferred]
            .pop_front()
            .or_else(|| self.classes.iter_mut().find_map(VecDeque::pop_front))
    }

    /// Removes (to be shed) the youngest queued job of the *lowest* class
    /// strictly below `incoming`, making room at the queue bound — Bulk
    /// sheds first, and nothing of equal or higher class is touched.
    fn displace_below(&mut self, incoming: Priority) -> Option<Job> {
        for class in (incoming.index() + 1..self.classes.len()).rev() {
            if let Some(job) = self.classes[class].pop_back() {
                return Some(job);
            }
        }
        None
    }
}

/// State shared between the public handle and the worker threads.
struct Shared {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    state: AtomicU8,
    metrics: Arc<Metrics>,
    cache: Mutex<PartitionCache>,
    /// Pooled [`PipelineOutput`] staging: workers refill a recycled output
    /// in place (`run_with_partition_into`), move the response vectors out,
    /// and return the staging — so the per-block rows and other assembly
    /// buffers are reused across frames. Workspaces themselves come from
    /// the core crate's process-wide pool, one per execution lane.
    /// Both pools discard (never re-pool) values whose guard drops during
    /// an unwind.
    outputs: Pool<PipelineOutput>,
    /// Recycled [`FrameResponse`] shells: `execute_one` *swaps* its filled
    /// staging vectors with a pooled response's spent ones, so buffer
    /// capacity circulates client → engine → client ([`Engine::recycle`])
    /// instead of being reallocated per frame.
    responses: Pool<FrameResponse>,
    /// Recycled [`InferOutput`] staging for the inference path
    /// ([`Engine::recycle_infer`]).
    infer_outputs: Pool<InferOutput>,
    /// Recycled completion slots (see [`SlotStash`]).
    slots: Arc<SlotStash>,
    /// Pre-materialized network executors, one per distinct
    /// `(model fingerprint, seed, aggregation)` — weight generation runs
    /// once, and every identical INFER request shares the same `Arc` (which
    /// is also what makes their batch-compat keys equal).
    executors: Mutex<HashMap<(u64, u64, u8), Arc<NetworkExecutor>>>,
    /// The seeded fault layer; `None` (the overwhelmingly common case)
    /// makes every injection site one discriminant test.
    faults: Option<Arc<FaultLayer>>,
    /// The brown-out controller: workers feed it queue-wait observations,
    /// admissions read its level (one relaxed load when healthy).
    overload: OverloadController,
    /// Live worker handles — including replacements spawned by panic
    /// supervision, which register themselves here so shutdown can join
    /// whatever generation of workers is current.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// The serving engine. See the [module docs](self) for the request
/// lifecycle; construct with [`Engine::start`].
///
/// # Examples
///
/// ```
/// use fractalcloud_serve::{Engine, ServeConfig};
/// use fractalcloud_core::PipelineConfig;
/// use fractalcloud_pointcloud::generate::uniform_cube;
///
/// let engine = Engine::start(ServeConfig::default().workers(2));
/// let frame = uniform_cube(2048, 7);
/// let response = engine.process(frame, PipelineConfig::default()).unwrap();
/// assert_eq!(response.sampled_indices.len(), 512);
/// engine.shutdown();
/// ```
pub struct Engine {
    shared: Arc<Shared>,
}

impl Engine {
    /// Starts `cfg.workers` worker threads and returns the handle.
    pub fn start(cfg: ServeConfig) -> Engine {
        let shared = Arc::new(Shared {
            cache: Mutex::new(PartitionCache::new(cfg.cache_capacity)),
            faults: FaultLayer::new(cfg.faults),
            overload: OverloadController::new(cfg.brownout, Instant::now()),
            cfg,
            queue: Mutex::new(QueueState::new()),
            available: Condvar::new(),
            state: AtomicU8::new(RUNNING),
            metrics: Arc::new(Metrics::default()),
            outputs: Pool::new(),
            responses: Pool::new(),
            infer_outputs: Pool::new(),
            slots: Arc::new(SlotStash::default()),
            executors: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
        });
        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|i| {
                let h = spawn_worker(&shared, i).expect("spawn serve worker");
                shared.metrics.workers_alive.fetch_add(1, Ordering::Relaxed);
                h
            })
            .collect();
        lock_unpoisoned(&shared.workers).extend(workers);
        Engine { shared }
    }

    /// The engine's configuration.
    pub fn config(&self) -> ServeConfig {
        self.shared.cfg
    }

    /// Validates and admits one [`Priority::Normal`] frame, returning a
    /// [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn submit(&self, cloud: PointCloud, config: PipelineConfig) -> Result<Ticket, ServeError> {
        self.submit_with_priority(cloud, config, Priority::Normal)
    }

    /// Validates and admits one frame at the given [`Priority`], returning
    /// a [`Ticket`] to wait on.
    ///
    /// At the queue bound an arrival may displace a queued job of strictly
    /// lower class (Bulk first); the displaced job's ticket then resolves
    /// to [`ShedReason::QueueFull`] exactly as if it had been refused at
    /// admission.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for empty frames or bad parameters;
    /// [`ServeError::Shed`] when admission declines the request (queue
    /// full with nothing lower-class to displace, oversized frame,
    /// shutdown in progress).
    pub fn submit_with_priority(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
        priority: Priority,
    ) -> Result<Ticket, ServeError> {
        self.submit_with_options(cloud, config, priority, None)
    }

    /// [`Engine::submit_with_priority`] with an explicit per-request
    /// deadline, measured from admission. `None` falls back to the
    /// configured default ([`ServeConfig::deadline_ms`], 0 = unbounded).
    /// A job whose deadline passes before execution is shed with the
    /// retryable [`ShedReason::DeadlineExceeded`]; one that expires
    /// mid-run is cancelled at the next pipeline stage seam and resolves
    /// the same way.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn submit_with_options(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        self.submit_shared_with_options(Arc::new(cloud), config, priority, deadline)
    }

    /// [`Engine::submit`] without copying the frame: the engine borrows the
    /// caller's `Arc<PointCloud>` for the job's lifetime. The shared-cloud
    /// entry points are what keep a warmed serving loop allocation-free —
    /// an `Arc` clone is a refcount bump, not a frame copy.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`].
    pub fn submit_shared(
        &self,
        cloud: Arc<PointCloud>,
        config: PipelineConfig,
    ) -> Result<Ticket, ServeError> {
        self.submit_shared_with_options(cloud, config, Priority::Normal, None)
    }

    /// [`Engine::submit_with_options`] over a shared frame.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn submit_shared_with_options(
        &self,
        cloud: Arc<PointCloud>,
        config: PipelineConfig,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        self.submit_shared_budget(cloud, config, 0, priority, deadline)
    }

    /// [`Engine::submit_shared_with_options`] with a sample budget: a
    /// non-zero `budget` answers with only the first `budget` samples of
    /// the frame's quality ordering (and their neighbor rows) —
    /// bit-identical to the prefix of the full response, computed at
    /// proportionally lower cost. 0 = full depth.
    ///
    /// Budgeted jobs carry a budget-specific batch-compat key, so they
    /// fuse only with jobs of the same budget and never dilute the
    /// full-depth block-batching fast path.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn submit_shared_budget(
        &self,
        cloud: Arc<PointCloud>,
        config: PipelineConfig,
        budget: usize,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let compat = match budget {
            0 => config.compat_key(),
            b => fnv1a64(fnv1a64(config.compat_key(), 0x4c4f_4442), b as u64),
        };
        self.admit(cloud, config, compat, WorkKind::Frame { budget }, priority, deadline)
    }

    /// Admits one progressive-LOD refinement chunk: samples `lo..hi` of
    /// the frame's quality ordering. The full-depth ordering is computed
    /// once per `(frame, config)` and cached engine-wide, so N viewers
    /// streaming the same frame share one FPS — each chunk job is then a
    /// pure slice. The TCP front-end submits the first-paint chunk at the
    /// requester's priority and every refinement chunk at
    /// [`Priority::Bulk`].
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn submit_stream_chunk(
        &self,
        cloud: Arc<PointCloud>,
        config: PipelineConfig,
        lo: usize,
        hi: usize,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<StreamTicket, ServeError> {
        // Distinct compat tag: chunk jobs fuse with each other (per-job
        // lanes) but never gate a pure frame batch off its block-batching
        // fast path.
        let compat = fnv1a64(config.compat_key(), 0x5354_524d);
        let ticket =
            self.admit(cloud, config, compat, WorkKind::Stream { lo, hi }, priority, deadline)?;
        Ok(StreamTicket { inner: ticket })
    }

    /// Validates and admits one inference request, returning an
    /// [`InferTicket`] to wait on. The request's stage-1 pipeline (leaf
    /// threshold from the request, sampling/grouping geometry from the
    /// model's first set-abstraction stage) shares the engine's partition
    /// cache, priority lanes, deadlines, and fault-injection points with
    /// frame requests; identical `(model, seed, aggregation)` requests
    /// share one cached weight materialization and batch together.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for empty frames, models without a
    /// set-abstraction stage, or bad derived parameters;
    /// [`ServeError::Shed`] exactly as [`Engine::submit_with_priority`].
    pub fn submit_infer(
        &self,
        cloud: Arc<PointCloud>,
        req: InferRequest,
    ) -> Result<InferTicket, ServeError> {
        let InferRequest { model, seed, threshold, aggregation, priority, deadline } = req;
        let Some(sa) = model.stages.first() else {
            let m = &self.shared.metrics;
            m.submitted.fetch_add(1, Ordering::Relaxed);
            m.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(Error::InvalidParameter {
                name: "model",
                message: "model has no set-abstraction stage to serve".into(),
            }));
        };
        let config = PipelineConfig::new(threshold, sa.sample_ratio, sa.radius, sa.nsample);
        let aggregation = aggregation.unwrap_or_else(Aggregation::from_env);
        let executor = self.executor_for(model, seed, aggregation);
        let compat = infer_compat(&executor, &config);
        let ticket =
            self.admit(cloud, config, compat, WorkKind::Infer { executor }, priority, deadline)?;
        Ok(InferTicket { inner: ticket })
    }

    /// The cached executor for `(model, seed, aggregation)`, materializing
    /// weights on first use. Holding the registry lock through a build
    /// serializes concurrent first requests for the same network — by
    /// design: weight generation is the expensive part, and building it
    /// twice to race an insert would waste more than the wait.
    fn executor_for(
        &self,
        model: ModelConfig,
        seed: u64,
        aggregation: Aggregation,
    ) -> Arc<NetworkExecutor> {
        let key = (model_fingerprint(&model), seed, aggregation_wire(aggregation));
        let mut map = lock_unpoisoned(&self.shared.executors);
        if let Some(ex) = map.get(&key) {
            return Arc::clone(ex);
        }
        let ex = Arc::new(NetworkExecutor::new(InferenceConfig { model, seed, aggregation }));
        map.insert(key, Arc::clone(&ex));
        ex
    }

    /// The shared admission path: validate, then queue under the bound (or
    /// displace / shed), minting the ticket pair only once admission is
    /// certain.
    fn admit(
        &self,
        cloud: Arc<PointCloud>,
        config: PipelineConfig,
        compat: u64,
        kind: WorkKind,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let m = &self.shared.metrics;
        m.submitted.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = config.validate() {
            m.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(e));
        }
        if cloud.is_empty() {
            m.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(Error::EmptyCloud));
        }
        if cloud.len() > self.shared.cfg.max_points {
            m.shed_oversized.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Shed(ShedReason::Oversized {
                points: cloud.len(),
                max_points: self.shared.cfg.max_points,
            }));
        }

        // Brown-out: one relaxed load is all a healthy admission pays. The
        // level is snapshotted here (not at execution), so the degradation
        // a response reports is the degradation that admitted it. High
        // priority is exempt at every level; at the shed level new
        // frame/inference work sheds retryably before touching the queue
        // (streams keep flowing — their refinement chunks are Bulk and
        // already shed first at the queue bound).
        let mut compat = compat;
        let mut degrade = 0u8;
        let level = self.shared.overload.level_u8();
        if level > 0 && priority != Priority::High {
            match kind {
                WorkKind::Frame { .. } => {
                    if level >= SHED_LEVEL {
                        m.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                        m.shed_by_class[priority.index()].fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Shed(ShedReason::QueueFull));
                    }
                    degrade = level.min(MAX_BROWNOUT);
                    // Degraded jobs fuse only with same-level peers (and
                    // never gate a full-quality batch off its block-fused
                    // fast path).
                    compat = fnv1a64(fnv1a64(compat, 0x4447_5244), u64::from(degrade));
                }
                WorkKind::Infer { .. } if level >= SHED_LEVEL => {
                    m.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                    m.shed_by_class[priority.index()].fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Shed(ShedReason::QueueFull));
                }
                _ => {}
            }
        }

        let admitted_at = Instant::now();
        let req = obs::next_request_id();
        let budget = deadline.or_else(|| {
            (self.shared.cfg.deadline_ms > 0)
                .then(|| Duration::from_millis(self.shared.cfg.deadline_ms))
        });
        let deadline = budget.and_then(|d| admitted_at.checked_add(d));
        let slot = self.shared.slots.take();
        let displaced = {
            let mut queue = lock_unpoisoned(&self.shared.queue);
            // State is checked under the queue lock: shutdown() transitions
            // under the same lock, so no admission can slip past a drain.
            if self.shared.state.load(Ordering::SeqCst) != RUNNING {
                m.shed_shutdown.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Shed(ShedReason::ShuttingDown));
            }
            let mut displaced = None;
            if queue.len() >= self.shared.cfg.queue_capacity {
                // Bulk sheds first at the bound: a strictly-lower-class
                // queued job makes room, otherwise the arrival itself sheds.
                match queue.displace_below(priority) {
                    Some(victim) => displaced = Some(victim),
                    None => {
                        m.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                        m.shed_by_class[priority.index()].fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Shed(ShedReason::QueueFull));
                    }
                }
            }
            // The job (and the resolution obligation its guard carries) is
            // only constructed once admission is certain.
            queue.classes[priority.index()].push_back(Job {
                compat,
                cloud,
                config,
                kind,
                priority,
                degrade,
                req,
                admitted_at,
                deadline,
                ticket: TicketGuard {
                    priority,
                    admitted_at,
                    req,
                    slot: Some(Arc::clone(&slot)),
                    stash: Arc::clone(&self.shared.slots),
                    metrics: Arc::clone(m),
                    resolved: false,
                },
            });
            m.admitted.fetch_add(1, Ordering::Relaxed);
            m.set_queue_depth(queue.len());
            displaced
        };
        if let Some(victim) = displaced {
            m.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            m.shed_by_class[victim.priority.index()].fetch_add(1, Ordering::Relaxed);
            victim.ticket.finish(Err(ServeError::Shed(ShedReason::QueueFull)));
        }
        self.shared.available.notify_one();
        Ok(Ticket { slot: Some(slot), stash: Arc::clone(&self.shared.slots), req })
    }

    /// Submits a frame and blocks for its response — the in-process client
    /// call ([`Priority::Normal`]).
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`].
    pub fn process(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
    ) -> Result<FrameResponse, ServeError> {
        self.submit(cloud, config)?.wait()
    }

    /// [`Engine::process`] over a shared frame — with
    /// [`Engine::recycle`], the warmed cache-hit serving loop this enables
    /// performs zero heap allocations per frame.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`].
    pub fn process_shared(
        &self,
        cloud: Arc<PointCloud>,
        config: PipelineConfig,
    ) -> Result<FrameResponse, ServeError> {
        self.submit_shared(cloud, config)?.wait()
    }

    /// Submits an inference request and blocks for its response.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_infer`].
    pub fn process_infer(
        &self,
        cloud: Arc<PointCloud>,
        req: InferRequest,
    ) -> Result<InferResponse, ServeError> {
        self.submit_infer(cloud, req)?.wait()
    }

    /// Returns a finished response's buffers to the engine's staging pool
    /// (a no-op in `FRACTALCLOUD_WORKSPACE=fresh` mode). Recycling is what
    /// closes the allocation loop: the next frame's response reuses these
    /// vectors instead of growing fresh ones.
    pub fn recycle(&self, response: FrameResponse) {
        self.shared.responses.put(response);
    }

    /// [`Engine::recycle`] for inference responses.
    pub fn recycle_infer(&self, response: InferResponse) {
        self.shared.infer_outputs.put(response.output);
    }

    /// Submits a frame at the given [`Priority`] and blocks for its
    /// response.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit_with_priority`].
    pub fn process_with_priority(
        &self,
        cloud: PointCloud,
        config: PipelineConfig,
        priority: Priority,
    ) -> Result<FrameResponse, ServeError> {
        self.submit_with_priority(cloud, config, priority)?.wait()
    }

    /// A point-in-time copy of every serving metric. `faults_injected`
    /// reflects the engine's own fault layer (the layer keeps the
    /// authoritative per-point counters).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.shared.metrics.snapshot();
        if let Some(layer) = &self.shared.faults {
            snapshot.faults_injected = FaultPoint::ALL.iter().map(|&p| layer.injected_at(p)).sum();
        }
        snapshot
    }

    /// Shared access to the metrics registry (the TCP front-end counts its
    /// connection-level events here).
    pub(crate) fn metrics_registry(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The engine's fault layer, if one is active (the TCP front-end
    /// injects its net-side faults through this).
    pub(crate) fn fault_layer(&self) -> &Option<Arc<FaultLayer>> {
        &self.shared.faults
    }

    /// A point-in-time liveness snapshot — cheap enough for a health
    /// endpoint to call per probe.
    pub fn health(&self) -> EngineHealth {
        let queued_by_class = {
            let queue = lock_unpoisoned(&self.shared.queue);
            std::array::from_fn(|c| queue.classes[c].len() as u64)
        };
        let snapshot = self.shared.metrics.snapshot();
        let workers_alive = snapshot.workers_alive;
        let trace = obs::status();
        EngineHealth {
            live: workers_alive > 0 && self.shared.state.load(Ordering::SeqCst) == RUNNING,
            draining: self.shared.state.load(Ordering::SeqCst) == SOFT_DRAINING,
            overload_level: self.shared.overload.level().as_u8(),
            workers_alive,
            workers_configured: self.shared.cfg.workers.max(1) as u64,
            queued_by_class,
            last_progress_age_ms: self.shared.metrics.progress_age_ms(),
            worker_panics: snapshot.worker_panics,
            workers_respawned: snapshot.workers_respawned,
            uptime_ms: self.shared.metrics.uptime_ms(),
            trace_enabled: trace.enabled,
            trace_capacity: trace.capacity,
            trace_dropped: trace.dropped,
            streams_open: snapshot.streams_opened.saturating_sub(snapshot.streams_closed),
        }
    }

    /// Renders the engine's metrics — [`MetricsSnapshot`], per-class
    /// histograms, cache/fault/worker counters, aggregated op counters, and
    /// flight-recorder status — as Prometheus-style text (the `METRICS`
    /// wire opcode serves exactly this string).
    pub fn metrics_text(&self) -> String {
        let per_point: Vec<(&'static str, u64)> = match &self.shared.faults {
            Some(layer) => {
                FaultPoint::ALL.iter().map(|&p| (p.name(), layer.injected_at(p))).collect()
            }
            None => Vec::new(),
        };
        crate::metrics::render_prometheus(&self.metrics(), &self.health(), &per_point)
    }

    /// Folds `n` client-side retries into this engine's `retries_total`
    /// counter, so in-process harnesses report their [`ServeClient`]
    /// retries through the same exposition a sidecar would scrape.
    ///
    /// [`ServeClient`]: crate::ServeClient
    pub fn record_retries(&self, n: u64) {
        self.shared.metrics.record_retries(n);
    }

    /// The engine's position on the graceful-degradation ladder right now.
    /// Reading the level also drives idle decay: with no traffic at all, a
    /// raised level steps down one notch per dwell period on each read, so
    /// pollers (health probes, metrics scrapes, this call) watch the
    /// controller walk back to [`OverloadLevel::Normal`].
    pub fn overload_level(&self) -> OverloadLevel {
        self.shared.overload.level()
    }

    /// Zero-downtime drain (maintenance mode): stops admitting — submits
    /// shed with [`ShedReason::ShuttingDown`], and the TCP front-end
    /// answers new work on every connection with `status::GOAWAY` — while
    /// workers keep finishing everything already admitted and open streams
    /// run to completion. HEALTH reports `draining: true` (and
    /// `live: false`) so orchestrators stop routing here. Re-arm with
    /// [`Engine::resume`]; a drained engine still shuts down normally.
    pub fn drain(&self) {
        let _queue = lock_unpoisoned(&self.shared.queue);
        self.shared
            .state
            .compare_exchange(RUNNING, SOFT_DRAINING, Ordering::SeqCst, Ordering::SeqCst)
            .ok();
    }

    /// Re-arms a drained engine ([`Engine::drain`]): admissions resume. A
    /// no-op unless the engine is currently soft-draining (shutdown is not
    /// reversible).
    pub fn resume(&self) {
        let _queue = lock_unpoisoned(&self.shared.queue);
        self.shared
            .state
            .compare_exchange(SOFT_DRAINING, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
            .ok();
    }

    /// Whether the engine is in the zero-downtime drain state.
    pub fn is_draining(&self) -> bool {
        self.shared.state.load(Ordering::SeqCst) == SOFT_DRAINING
    }

    /// Graceful shutdown: stops admitting (subsequent submits shed with
    /// [`ShedReason::ShuttingDown`]), lets the workers drain every already
    /// admitted job, and joins them — collecting join results instead of
    /// propagating worker panics (a panicked worker already counted itself
    /// in `worker_panics`; a handle that joins with `Err` here is the
    /// defensive backstop for a panic that escaped supervision). Idempotent;
    /// concurrent callers all block until the drain finishes.
    pub fn shutdown(&self) {
        {
            let _queue = lock_unpoisoned(&self.shared.queue);
            // A soft-draining engine shuts down exactly like a running one.
            for from in [RUNNING, SOFT_DRAINING] {
                self.shared
                    .state
                    .compare_exchange(from, DRAINING, Ordering::SeqCst, Ordering::SeqCst)
                    .ok();
            }
        }
        self.shared.available.notify_all();
        // Drain in rounds: a panicking worker may register its replacement
        // while this loop runs, so keep joining until the registry stays
        // empty. Handles are taken out before joining (never join while
        // holding the registry lock — the replacement needs it to register).
        loop {
            let drained: Vec<JoinHandle<()>> =
                lock_unpoisoned(&self.shared.workers).drain(..).collect();
            if drained.is_empty() {
                break;
            }
            for h in drained {
                if h.join().is_err() {
                    // Escaped supervision entirely (e.g. a panic in the
                    // supervisor itself) — count it so the event is visible.
                    self.shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.shared.state.store(STOPPED, Ordering::SeqCst);
    }
}

/// A point-in-time liveness snapshot from [`Engine::health`], also served
/// over the wire as the `FCS1` health request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineHealth {
    /// True when the engine is accepting work and at least one worker is
    /// alive to execute it.
    pub live: bool,
    /// True while the engine is in the zero-downtime drain state
    /// ([`Engine::drain`]): in-flight work finishes, new work is refused
    /// (`GOAWAY` on the wire) — orchestrators should stop routing here.
    pub draining: bool,
    /// Position on the graceful-degradation ladder: 0 = normal, 1–3 =
    /// brown-out depth (responses carry `degraded` markers), 4 = shedding.
    pub overload_level: u8,
    /// Worker threads currently running their loop.
    pub workers_alive: u64,
    /// Worker threads the configuration asked for.
    pub workers_configured: u64,
    /// Queued jobs per priority class ([`Priority::index`] order).
    pub queued_by_class: [u64; 3],
    /// Milliseconds since a worker last completed a request (0 when nothing
    /// has completed yet — pair with the queue depths to tell "idle" from
    /// "stuck").
    pub last_progress_age_ms: u64,
    /// Worker panics survived since start.
    pub worker_panics: u64,
    /// Replacement workers spawned by panic supervision.
    pub workers_respawned: u64,
    /// Milliseconds since the engine's metrics epoch (engine start).
    pub uptime_ms: u64,
    /// Is the flight recorder currently on?
    pub trace_enabled: bool,
    /// Flight-recorder ring capacity in events per thread (0 = recorder
    /// never initialized).
    pub trace_capacity: u64,
    /// Trace events lost to ring wraparound — nonzero warns a scraper that
    /// a `TRACE_DUMP` is truncated.
    pub trace_dropped: u64,
    /// Progressive-LOD streams currently open (opened − closed). A value
    /// that stays above zero while no client is connected is a hung
    /// stream.
    pub streams_open: u64,
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.shared.state.load(Ordering::SeqCst) != STOPPED {
            self.shutdown();
        }
    }
}

/// One inference request: which network, which weights, which schedule —
/// plus the same serving options every frame request has.
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// The network to run (resolve zoo entries via
    /// [`ModelConfig::table1`]).
    pub model: ModelConfig,
    /// Deterministic weight seed — same `(model, seed)`, same logits,
    /// in-process or over the wire.
    pub seed: u64,
    /// Partition leaf threshold of the stage-1 pipeline (the rest of the
    /// stage-1 geometry comes from the model's first set-abstraction
    /// stage).
    pub threshold: usize,
    /// Aggregation schedule; `None` uses the server's
    /// `FRACTALCLOUD_AGGREGATION` default.
    pub aggregation: Option<Aggregation>,
    /// Queue class, exactly as for frame requests.
    pub priority: Priority,
    /// Per-request deadline; `None` falls back to the configured default.
    pub deadline: Option<Duration>,
}

impl InferRequest {
    /// A [`Priority::Normal`], unbounded-deadline request with the default
    /// partition threshold and the server's default aggregation schedule.
    pub fn new(model: ModelConfig) -> InferRequest {
        InferRequest {
            model,
            seed: 42,
            threshold: PipelineConfig::default().threshold,
            aggregation: None,
            priority: Priority::Normal,
            deadline: None,
        }
    }
}

/// FNV-1a over a structural serialization of the model — the executor-cache
/// key component that makes "same network" mean *same configuration*, not
/// same notation string. Length-prefixed fields keep the encoding
/// prefix-free, so distinct configs cannot collide by concatenation.
fn model_fingerprint(m: &ModelConfig) -> u64 {
    struct Fnv(u64);
    impl Fnv {
        fn bytes(&mut self, b: &[u8]) {
            for &x in b {
                self.0 = (self.0 ^ u64::from(x)).wrapping_mul(0x100_0000_01b3);
            }
        }
        fn word(&mut self, v: u64) {
            self.bytes(&v.to_le_bytes());
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    h.word(m.family.len() as u64);
    h.bytes(m.family.as_bytes());
    h.word(m.notation.len() as u64);
    h.bytes(m.notation.as_bytes());
    h.word(match m.task {
        fractalcloud_pnn::Task::Classification => 0,
        fractalcloud_pnn::Task::PartSegmentation => 1,
        fractalcloud_pnn::Task::Segmentation => 2,
    });
    h.word(m.in_channels as u64);
    h.word(m.stem_width as u64);
    h.word(m.classes as u64);
    h.word(m.stages.len() as u64);
    for sa in &m.stages {
        h.word(sa.sample_ratio.to_bits());
        h.word(u64::from(sa.radius.to_bits()));
        h.word(sa.nsample as u64);
        h.word(sa.blocks as u64);
        h.word(sa.mlp.len() as u64);
        for &w in &sa.mlp {
            h.word(w as u64);
        }
    }
    h.word(m.propagation.len() as u64);
    for fp in &m.propagation {
        h.word(fp.k as u64);
        h.word(fp.mlp.len() as u64);
        for &w in &fp.mlp {
            h.word(w as u64);
        }
    }
    h.word(m.head.len() as u64);
    for &w in &m.head {
        h.word(w as u64);
    }
    h.0
}

/// The schedule's wire/cache byte (`protocol::AGG_EAGER` / `AGG_DELAYED`).
pub(crate) fn aggregation_wire(agg: Aggregation) -> u8 {
    match agg {
        Aggregation::Eager => 1,
        Aggregation::Delayed => 2,
    }
}

/// Batch-compat key of an inference job: the stage-1 pipeline key mixed
/// with the executor identity (executors are cached and shared, so equal
/// requests carry the same `Arc` pointer) and an INFER tag. Kind purity of
/// a batch does not *depend* on this key — execution dispatches per job —
/// but matching keys are what let identical inference requests fuse.
fn infer_compat(executor: &Arc<NetworkExecutor>, config: &PipelineConfig) -> u64 {
    let mut h = 0x1f3a_9e44_0b1d_77c5u64 ^ config.compat_key();
    h = h.wrapping_mul(0x100_0000_01b3);
    h ^= Arc::as_ptr(executor) as usize as u64;
    h.wrapping_mul(0x100_0000_01b3)
}

/// Spawns one supervised worker thread.
fn spawn_worker(shared: &Arc<Shared>, id: usize) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("fc-serve-{id}"))
        .spawn(move || worker_main(&shared, id))
}

/// The supervised body of a worker thread: run the loop, and if it unwinds
/// (a panic the batch executors didn't contain — or an injected
/// `panic@worker`), count the event, spawn a successor, and exit.
/// Supervision-by-succession keeps the thread count constant without a
/// dedicated supervisor thread: the dying worker is its own supervisor.
///
/// `workers_alive` is incremented by whoever *spawns* a worker (start or
/// respawn) and decremented here at exit, so the gauge never dips to zero
/// in the handoff window between a successor being registered and its
/// thread actually starting.
fn worker_main(shared: &Arc<Shared>, id: usize) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared))) {
            Ok(()) => break, // drained for shutdown
            Err(_) => {
                shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                // Any job the panic abandoned has already been resolved to
                // Internal by its TicketGuard's drop during the unwind.
                // Soft drain keeps the pool at strength: a panicked worker
                // still respawns, since the engine may resume.
                let state = shared.state.load(Ordering::SeqCst);
                if state == DRAINING || state == STOPPED {
                    break;
                }
                if respawn_worker(shared, id) {
                    break; // the successor has the slot; this thread retires
                }
                // Could not spawn a successor (resource exhaustion): this
                // thread resurrects in place rather than shrink the pool.
            }
        }
    }
    shared.metrics.workers_alive.fetch_sub(1, Ordering::Relaxed);
}

/// Spawns and registers a successor for a panicked worker. Returns false
/// when the OS refused the thread (the caller then keeps serving itself).
fn respawn_worker(shared: &Arc<Shared>, id: usize) -> bool {
    match spawn_worker(shared, id) {
        Ok(handle) => {
            shared.metrics.workers_alive.fetch_add(1, Ordering::Relaxed);
            shared.metrics.workers_respawned.fetch_add(1, Ordering::Relaxed);
            lock_unpoisoned(&shared.workers).push(handle);
            true
        }
        Err(_) => false,
    }
}

/// Worker: pop the next job per the weighted priority schedule, gather its
/// compatibility batch from every class (highest first, preserving each
/// class's arrival order), execute. Returns when the engine drains.
fn worker_loop(shared: &Arc<Shared>) {
    // One reusable batch vector per worker: `next_batch` fills it,
    // `execute_batch` drains it, and its capacity persists across frames —
    // no per-batch `Vec` on the steady-state path.
    let mut batch: Vec<Job> = Vec::new();
    while next_batch(shared, &mut batch) {
        // An empty batch means the pop only found expired jobs (already
        // shed by next_batch) — go straight back for more work.
        if !batch.is_empty() {
            execute_batch(shared, &mut batch);
        }
    }
}

/// Blocks for the next compatible batch, filling the caller's (reusable,
/// empty-on-entry) `batch`; returns `false` once the engine is draining and
/// the queue is empty. Jobs whose deadline already passed are shed here
/// (retryable [`ShedReason::DeadlineExceeded`]) instead of batched — the
/// waiter gets its answer sooner and the batch wastes no budget on work
/// nobody wants anymore. A `true` return with an empty batch means the pop
/// only found expired jobs.
fn next_batch(shared: &Arc<Shared>, batch: &mut Vec<Job>) -> bool {
    debug_assert!(batch.is_empty(), "caller drains the batch between rounds");
    let mut expired: Vec<Job> = Vec::new();
    let got = {
        let mut queue = lock_unpoisoned(&shared.queue);
        loop {
            let now = Instant::now();
            let mut first = None;
            while let Some(job) = queue.pop_weighted() {
                if job.expired(now) {
                    expired.push(job);
                } else {
                    first = Some(job);
                    break;
                }
            }
            if let Some(first) = first {
                let compat = first.compat;
                batch.push(first);
                for class in 0..queue.classes.len() {
                    if batch.len() >= shared.cfg.max_batch {
                        break;
                    }
                    let lane = &mut queue.classes[class];
                    // Skipping empty lanes is a steady-state allocation
                    // guarantee, not just a shortcut: the rebuild below
                    // would replace a warm lane's capacity with an empty
                    // one, forcing the next submit to reallocate it.
                    if lane.is_empty() {
                        continue;
                    }
                    let mut kept = VecDeque::with_capacity(lane.len());
                    while let Some(job) = lane.pop_front() {
                        if job.expired(now) {
                            expired.push(job);
                        } else if batch.len() < shared.cfg.max_batch && job.compat == compat {
                            batch.push(job);
                        } else {
                            kept.push_back(job);
                        }
                    }
                    *lane = kept;
                }
                shared.metrics.set_queue_depth(queue.len());
                break true;
            }
            shared.metrics.set_queue_depth(queue.len());
            if !expired.is_empty() {
                // Everything popped had expired: hand back an empty batch so
                // the sheds below resolve now, not after the next arrival.
                break true;
            }
            // Workers exit only on the *terminal* drain; the zero-downtime
            // SOFT_DRAINING state keeps them parked here, ready to resume.
            let state = shared.state.load(Ordering::SeqCst);
            if state == DRAINING || state == STOPPED {
                break false;
            }
            queue = shared.available.wait(queue).unwrap_or_else(PoisonError::into_inner);
        }
    };
    // Resolved outside the queue lock: finish() takes the slot lock, and
    // keeping the queue→slot order acyclic (never slot→queue) is what makes
    // both locks safe to take at all.
    if !expired.is_empty() {
        // Jobs dying in the queue are the strongest overload signal there
        // is — exactly what brown-out exists to prevent.
        shared.overload.observe_deadline_shed();
    }
    for job in expired {
        job.ticket.finish(Err(ServeError::Shed(ShedReason::DeadlineExceeded)));
    }
    got
}

/// Runs one compatible batch and resolves every ticket. The injected
/// `worker` fault point fires here — an injected error drops the whole
/// batch (each guard resolves Internal), an injected panic unwinds into the
/// supervisor in [`worker_main`].
fn execute_batch(shared: &Shared, batch: &mut Vec<Job>) {
    let size = batch.len();
    let m = &shared.metrics;
    m.batches.fetch_add(1, Ordering::Relaxed);
    m.batched_frames.fetch_add(size as u64, Ordering::Relaxed);
    let started = Instant::now();
    let mut worst_wait = Duration::ZERO;
    for job in batch.iter() {
        let wait = started.duration_since(job.admitted_at);
        worst_wait = worst_wait.max(wait);
        m.queue_wait.record(wait);
        m.queue_wait_by_class[job.priority.index()].record(wait);
        obs::record_span_at(
            obs::SpanKind::QueueWait,
            job.req,
            job.priority.index() as u8,
            job.admitted_at,
            started,
            0,
        );
        if size > 1 {
            // One fuse marker per member, so every request's own timeline
            // shows the batch it rode in (aux = fused batch size).
            obs::record_span_at(
                obs::SpanKind::BatchFuse,
                job.req,
                job.priority.index() as u8,
                started,
                started,
                size as u32,
            );
        }
    }
    // One observation per batch, with the batch's *worst* wait: the
    // controller reacts to the tail, which is what deadlines die on.
    shared.overload.observe_wait_us(worst_wait.as_micros().min(u128::from(u64::MAX)) as u64);
    if faults::fire(&shared.faults, FaultPoint::Worker) {
        // Injected executor error: dropping the jobs resolves every ticket
        // to Internal through its guard — the same path a real panic takes.
        batch.clear();
        return;
    }

    if size == 1 {
        // Lone-job fast path, executed inline on this worker: no spawn, no
        // per-batch result vector — with a warmed workspace and staging
        // this path performs zero heap allocations.
        let job = batch.pop().expect("size checked above");
        let Job { cloud, config, kind, ticket, deadline, req, priority, degrade, .. } = job;
        let _trace = obs::scoped_context(req, priority.index() as u8);
        let mut ws = global_pool().checkout();
        let outcome =
            run_job(shared, &cloud, config, &kind, priority, degrade, deadline, size, &mut ws);
        ticket.finish(outcome);
        return;
    }

    if shared.cfg.batch_blocks
        && shared.cfg.thread_budget > 1
        && batch.iter().all(|j| j.degrade == 0 && matches!(j.kind, WorkKind::Frame { budget: 0 }))
    {
        // The tentpole path: flatten the union of all frames' blocks into
        // one work list and run a single budgeted map over fused
        // sample+group block tasks. Only taken when there is a budget to
        // saturate: with one worker the flattened list buys nothing and
        // measures ~1% slower than the frame-at-a-time order below (the
        // partitions-then-blocks barrier costs frame locality), so the
        // legacy order serves budget-1 hosts — results are bit-identical
        // either way; this is purely a schedule choice. (Frames only:
        // inference batches — compat-homogeneous by key construction —
        // take the per-job lanes below.)
        let owned: Vec<Job> = std::mem::take(batch);
        execute_batch_blocks(shared, owned);
        return;
    }

    // Legacy schedule: one lane per job. `parallel_map_budget_with` divides
    // the engine's budget across the lanes, each lane's allowance is
    // inherited by every fan-out inside the pipeline, and each lane checks
    // one workspace out of the process-wide pool — scratch is reused
    // across the lane's jobs and across batches, never shared between
    // threads. Results are identical for every budget — only wall-clock
    // (and allocation traffic) differs.
    let owned: Vec<Job> = std::mem::take(batch);
    let outcomes = fractalcloud_parallel::parallel_map_budget_with(
        owned,
        shared.cfg.thread_budget,
        || global_pool().checkout(),
        |_, job, ws| {
            let Job { cloud, config, kind, ticket, deadline, req, priority, degrade, .. } = job;
            let _trace = obs::scoped_context(req, priority.index() as u8);
            let outcome =
                run_job(shared, &cloud, config, &kind, priority, degrade, deadline, size, ws);
            (ticket, outcome)
        },
    );
    // A lane that panicked dropped its (ticket, outcome) pair mid-flight —
    // that ticket already resolved Internal via its guard; the survivors
    // resolve here.
    for (ticket, outcome) in outcomes {
        ticket.finish(outcome);
    }
}

/// Dispatches one job to its kind's executor.
#[allow(clippy::too_many_arguments)]
fn run_job(
    shared: &Shared,
    cloud: &PointCloud,
    config: PipelineConfig,
    kind: &WorkKind,
    priority: Priority,
    degrade: u8,
    deadline: Option<Instant>,
    batch_size: usize,
    ws: &mut Workspace,
) -> Result<EngineResponse, ServeError> {
    match kind {
        WorkKind::Frame { budget } => {
            execute_one(shared, cloud, config, *budget, priority, degrade, deadline, batch_size, ws)
                .map(EngineResponse::Frame)
        }
        WorkKind::Stream { lo, hi } => {
            execute_stream_one(shared, cloud, config, *lo, *hi, deadline, ws)
                .map(EngineResponse::Chunk)
        }
        WorkKind::Infer { executor } => {
            execute_infer_one(shared, cloud, config, executor, deadline, batch_size, ws)
                .map(EngineResponse::Infer)
        }
    }
}

/// Cross-frame block batching: the union of the batch's blocks runs as ONE
/// budgeted `parallel_map` of fused sample+group `(frame, block)` tasks,
/// with results scattered back per frame — bit-identical to per-frame
/// execution (the per-frame assembly is the same code
/// `Pipeline::run_with_partition` uses), but the thread budget saturates
/// even when the batch holds few frames with many blocks each, and each
/// block's grouping runs right after its sampling while the block's data
/// is hot.
fn execute_batch_blocks(shared: &Shared, batch: Vec<Job>) {
    let size = batch.len();
    let m = &shared.metrics;
    let budget = shared.cfg.thread_budget;

    struct FrameCtx {
        job: Job,
        pipeline: Pipeline,
        key: u64,
        built: Option<(Arc<fractalcloud_core::FractalResult>, bool)>,
    }

    /// One `(frame, block)` task's verdict. Anything but `Done` marks the
    /// whole frame (a frame with a missing block has no valid assembly).
    // Not boxed: `Done` is the overwhelmingly common variant and these
    // values live only inside one short-lived per-batch Vec — indirection
    // would put an allocation per block task on the hot path.
    #[allow(clippy::large_enum_variant)]
    enum TaskOut {
        Done((Vec<usize>, OpCounters), fractalcloud_core::BlockNeighborTask),
        Expired,
        Failed,
    }

    // Stage 0 — pipelines and partition-cache lookups (cheap, sequential).
    let mut frames: Vec<Option<FrameCtx>> = Vec::with_capacity(size);
    for job in batch {
        match Pipeline::new(job.config) {
            Ok(pipeline) => {
                let key = frame_key(&job.cloud, job.config.threshold);
                let cached = lock_unpoisoned(&shared.cache).get(key);
                match &cached {
                    Some(_) => {
                        obs::record_span_at(
                            obs::SpanKind::PartitionCacheHit,
                            job.req,
                            job.priority.index() as u8,
                            Instant::now(),
                            Instant::now(),
                            0,
                        );
                        m.cache_hits.fetch_add(1, Ordering::Relaxed)
                    }
                    None => m.cache_misses.fetch_add(1, Ordering::Relaxed),
                };
                frames.push(Some(FrameCtx {
                    job,
                    pipeline,
                    key,
                    built: cached.map(|b| (b, true)),
                }));
            }
            Err(e) => {
                // Unreachable in practice (configs are validated at
                // admission), kept total so a worker can never panic.
                job.ticket.finish(Err(ServeError::Invalid(e)));
                frames.push(None);
            }
        }
    }

    // Stage 1 — build missing partitions, parallel across frames; each
    // lane builds with whatever allowance the budget split grants it and
    // a pooled workspace of its own.
    let missing: Vec<usize> = frames
        .iter()
        .enumerate()
        .filter_map(|(f, ctx)| ctx.as_ref().filter(|c| c.built.is_none()).map(|_| f))
        .collect();
    if !missing.is_empty() {
        let builds = fractalcloud_parallel::parallel_map_budget_with(
            missing,
            budget,
            || global_pool().checkout(),
            |_, f, ws| {
                let ctx = frames[f].as_ref().expect("missing frame is live");
                let _trace = obs::scoped_context(ctx.job.req, ctx.job.priority.index() as u8);
                let parallel = fractalcloud_parallel::effective_budget() > 1;
                (f, ctx.pipeline.partition_ws(&ctx.job.cloud, parallel, ws))
            },
        );
        for (f, built) in builds {
            match built {
                Ok(result) => {
                    let ctx = frames[f].as_mut().expect("missing frame is live");
                    let arc = Arc::new(result);
                    if !faults::fire(&shared.faults, FaultPoint::CacheInsert) {
                        lock_unpoisoned(&shared.cache).insert(ctx.key, Arc::clone(&arc));
                    }
                    ctx.built = Some((arc, false));
                }
                Err(e) => {
                    let ctx = frames[f].take().expect("missing frame is live");
                    ctx.job.ticket.finish(Err(ServeError::Invalid(e)));
                }
            }
        }
    }

    // Stage 2 — ONE parallel map over the union of all frames' block
    // tasks, tagged (frame, block). A block's ball query depends only on
    // that block's own FPS samples, so each task fuses sampling and
    // grouping for its block (FuseFPS-style): one scheduling pass, and the
    // block's gathered coordinates are still hot when its grouping runs.
    // Tasks are generated frame-major, so the in-order results scatter
    // back per frame (in block order) by a single pass.
    let counts: Vec<Vec<usize>> = frames
        .iter()
        .map(|ctx| match ctx {
            Some(c) => {
                let (built, _) = c.built.as_ref().expect("live frames have partitions");
                c.pipeline.sample_counts(built)
            }
            None => Vec::new(),
        })
        .collect();
    let tasks: Vec<(usize, usize)> =
        counts.iter().enumerate().flat_map(|(f, c)| (0..c.len()).map(move |b| (f, b))).collect();
    // Each task first checks its frame's deadline (cooperative
    // cancellation at the block seam) and the injected block fault point;
    // anything but a completed block marks the whole frame's fate.
    let parts = fractalcloud_parallel::parallel_map_budget_with(
        tasks,
        budget,
        || global_pool().checkout(),
        |_, (f, b), ws| {
            let ctx = frames[f].as_ref().expect("task frames are live");
            let _trace = obs::scoped_context(ctx.job.req, ctx.job.priority.index() as u8);
            if ctx.job.expired(Instant::now()) {
                return ((f, b), TaskOut::Expired);
            }
            if faults::fire(&shared.faults, FaultPoint::Block) {
                return ((f, b), TaskOut::Failed);
            }
            let (built, _) = ctx.built.as_ref().expect("live frames have partitions");
            let fps = ctx.pipeline.sample_block_ws(&ctx.job.cloud, built, b, counts[f][b], ws);
            let group = ctx.pipeline.group_block_ws(&ctx.job.cloud, built, b, &fps.0, ws);
            ((f, b), TaskOut::Done(fps, group))
        },
    );
    let mut sampled: Vec<Vec<(Vec<usize>, OpCounters)>> =
        counts.iter().map(|c| Vec::with_capacity(c.len())).collect();
    let mut grouped: Vec<Vec<fractalcloud_core::BlockNeighborTask>> =
        counts.iter().map(|c| Vec::with_capacity(c.len())).collect();
    // Frame fates: 0 = every block done, 1 = a block saw the deadline pass,
    // 2 = a block failed (failure outranks expiry — Internal is the honest
    // answer when both happened).
    let mut fate: Vec<u8> = vec![0; size];
    for ((f, _), out) in parts {
        match out {
            TaskOut::Done(fps, group) => {
                sampled[f].push(fps);
                grouped[f].push(group);
            }
            TaskOut::Expired => fate[f] = fate[f].max(1),
            TaskOut::Failed => fate[f] = 2,
        }
    }

    // Stage 3 — per-frame assembly (the same aggregation a per-frame run
    // uses) and resolution; frames with missing blocks resolve to their
    // fate instead.
    for (f, ((ctx, sampled), grouped)) in frames.into_iter().zip(sampled).zip(grouped).enumerate() {
        let Some(ctx) = ctx else { continue };
        match fate[f] {
            2 => ctx.job.ticket.finish(Err(ServeError::Internal)),
            1 => ctx.job.ticket.finish(Err(ServeError::Shed(ShedReason::DeadlineExceeded))),
            _ => {
                let (built, cache_hit) = ctx.built.expect("live frames have partitions");
                let out = ctx.pipeline.assemble_output(&built, sampled, grouped);
                let response = FrameResponse {
                    sampled_indices: out.sampled.indices,
                    neighbor_indices: out.grouped.indices,
                    found: out.grouped.found,
                    num: out.grouped.num,
                    blocks: out.blocks,
                    sample_counters: out.sampled.counters,
                    group_counters: out.grouped.counters,
                    cache_hit,
                    batch_size: size,
                    degraded: false,
                    budget_served: 0,
                };
                ctx.job.ticket.finish(Ok(EngineResponse::Frame(response)));
            }
        }
    }
}

/// Runs one frame through the pipeline, reusing a cached partition when the
/// frame bytes have been seen at this threshold before. Parallelism inside
/// the pipeline is governed by the lane's inherited thread budget (a
/// 1-thread lane resolves every nested fan-out to sequential execution).
///
/// All scratch lives in the lane's `ws`, and the BPPO half refills a pooled
/// [`PipelineOutput`] staging buffer in place; only the vectors the
/// response hands to the client are moved out (their buffers leave with the
/// response — the one unavoidable per-frame allocation class on a warmed
/// engine).
#[allow(clippy::too_many_arguments)]
fn execute_one(
    shared: &Shared,
    cloud: &PointCloud,
    config: PipelineConfig,
    budget: usize,
    priority: Priority,
    degrade: u8,
    deadline: Option<Instant>,
    batch_size: usize,
    ws: &mut Workspace,
) -> Result<FrameResponse, ServeError> {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(ServeError::Shed(ShedReason::DeadlineExceeded));
    }
    if faults::fire(&shared.faults, FaultPoint::Block) {
        return Err(ServeError::Internal);
    }
    let parallel = fractalcloud_parallel::effective_budget() > 1;
    let pipeline = Pipeline::new(config).map_err(ServeError::Invalid)?;
    let (built, cache_hit) = cached_partition(shared, &pipeline, cloud, parallel, ws)?;

    // Brown-out resolves here, where the partition (and thus the frame's
    // full sample total) is in hand: the served budget is the requested
    // depth right-shifted by the admission-time level — and the result is
    // `run_with_partition_budget` at that budget, so a degraded response
    // is bit-identical to the same-length prefix of the full answer by
    // construction, not by a parallel code path.
    let degraded = degrade > 0;
    let budget = if degraded {
        let requested = match budget {
            0 => pipeline.sample_counts(&built).iter().sum(),
            b => b,
        };
        (requested >> degrade).max(1)
    } else {
        budget
    };
    if degraded {
        shared.metrics.requests_degraded[priority.index()][usize::from(degrade - 1).min(2)]
            .fetch_add(1, Ordering::Relaxed);
    }

    if budget > 0 {
        // Budgeted frame: the kernels run at the truncated per-block
        // counts, so the cost is proportional to the budget — and the
        // interleave schedule is derived from the *full* counts, so the
        // result is bit-identical to the same-length prefix of a full run.
        // The deadline was already checked above; a budgeted run is the
        // short kind of work cooperative cancellation exists to protect,
        // so it doesn't arm a token.
        let mut out = pipeline
            .run_with_partition_budget(cloud, &built, budget, parallel)
            .map_err(ServeError::Invalid)?;
        let mut resp = shared.responses.take();
        std::mem::swap(&mut resp.sampled_indices, &mut out.sampled.indices);
        std::mem::swap(&mut resp.neighbor_indices, &mut out.grouped.indices);
        std::mem::swap(&mut resp.found, &mut out.grouped.found);
        resp.num = out.grouped.num;
        resp.blocks = out.blocks;
        resp.sample_counters = out.sampled.counters;
        resp.group_counters = out.grouped.counters;
        resp.cache_hit = cache_hit;
        resp.batch_size = batch_size;
        // Pooled shells recycle: both marker fields are (re)set every time.
        resp.degraded = degraded;
        resp.budget_served = if degraded { resp.sampled_indices.len() } else { 0 };
        return Ok(resp);
    }

    let mut staging = shared.outputs.checkout();
    // Deadline-free requests keep the plain path (no CancelToken, no Arc
    // allocation — preserving the zero-alloc warmed steady state); a
    // deadline arms cooperative cancellation at the pipeline stage seams.
    let run = match deadline {
        None => pipeline.run_with_partition_into(cloud, &built, parallel, ws, &mut staging),
        Some(d) => {
            let cancel = CancelToken::with_deadline(d);
            pipeline.run_with_partition_into_cancel(
                cloud,
                &built,
                parallel,
                ws,
                &mut staging,
                &cancel,
            )
        }
    };
    run.map_err(|e| match e {
        Error::Cancelled => ServeError::Shed(ShedReason::DeadlineExceeded),
        other => ServeError::Invalid(other),
    })?;
    let out = &mut *staging;
    // Swap the filled staging vectors with a recycled response's spent ones
    // (instead of `mem::take`, which would strip the staging's capacity
    // every frame): the response leaves with the data, the staging keeps
    // warm buffers, and once clients recycle ([`Engine::recycle`]) the
    // capacity circulates indefinitely — zero allocations per warm frame.
    let mut resp = shared.responses.take();
    std::mem::swap(&mut resp.sampled_indices, &mut out.sampled.indices);
    std::mem::swap(&mut resp.neighbor_indices, &mut out.grouped.indices);
    std::mem::swap(&mut resp.found, &mut out.grouped.found);
    resp.num = out.grouped.num;
    resp.blocks = out.blocks;
    resp.sample_counters = out.sampled.counters;
    resp.group_counters = out.grouped.counters;
    resp.cache_hit = cache_hit;
    resp.batch_size = batch_size;
    // Pooled shells recycle: clear any stale degradation marker.
    resp.degraded = false;
    resp.budget_served = 0;
    Ok(resp)
}

/// The partition half shared by both request kinds: look the frame up in
/// the engine-wide LRU, else build (with this lane's workspace and budget)
/// and insert — the insert skipped under an injected cache fault, which
/// costs a future miss, never correctness.
fn cached_partition(
    shared: &Shared,
    pipeline: &Pipeline,
    cloud: &PointCloud,
    parallel: bool,
    ws: &mut Workspace,
) -> Result<(Arc<fractalcloud_core::FractalResult>, bool), ServeError> {
    let key = frame_key(cloud, pipeline.config().threshold);
    let cached = lock_unpoisoned(&shared.cache).get(key);
    match cached {
        Some(b) => {
            obs::event(obs::SpanKind::PartitionCacheHit, 0);
            shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            Ok((b, true))
        }
        None => {
            shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            let built =
                Arc::new(pipeline.partition_ws(cloud, parallel, ws).map_err(ServeError::Invalid)?);
            if !faults::fire(&shared.faults, FaultPoint::CacheInsert) {
                lock_unpoisoned(&shared.cache).insert(key, Arc::clone(&built));
            }
            Ok((built, false))
        }
    }
}

/// Runs one progressive-LOD refinement chunk: samples `lo..hi` of the
/// frame's quality ordering.
///
/// The full-depth [`PipelineOutput`] is the expensive half — it is computed
/// at most once per `(frame, config)` and cached in the engine-wide
/// ordering LRU (keyed by the frame key folded with the pipeline
/// compatibility key, so distinct configs never alias), after which every
/// chunk — this viewer's refinements and every other viewer of the same
/// frame — is a pure `slice_level` copy. The reported `cache_hit` is the
/// *partition* cache verdict, matching what a direct request for the same
/// frame would report, so an accumulated stream is byte-identical to the
/// equivalent budgeted response.
fn execute_stream_one(
    shared: &Shared,
    cloud: &PointCloud,
    config: PipelineConfig,
    lo: usize,
    hi: usize,
    deadline: Option<Instant>,
    ws: &mut Workspace,
) -> Result<StreamChunkResponse, ServeError> {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(ServeError::Shed(ShedReason::DeadlineExceeded));
    }
    if faults::fire(&shared.faults, FaultPoint::Block) {
        return Err(ServeError::Internal);
    }
    let parallel = fractalcloud_parallel::effective_budget() > 1;
    let pipeline = Pipeline::new(config).map_err(ServeError::Invalid)?;
    let (built, part_hit) = cached_partition(shared, &pipeline, cloud, parallel, ws)?;

    let key = frame_key(cloud, pipeline.config().threshold);
    let order_key = fnv1a64(fnv1a64(FNV1A64_SEED, key), pipeline.config().compat_key());
    let cached = lock_unpoisoned(&shared.cache).get_order(order_key);
    let full = match cached {
        Some(full) => full,
        None => {
            let mut out = PipelineOutput::default();
            let run = match deadline {
                None => pipeline.run_with_partition_into(cloud, &built, parallel, ws, &mut out),
                Some(d) => {
                    let cancel = CancelToken::with_deadline(d);
                    pipeline.run_with_partition_into_cancel(
                        cloud, &built, parallel, ws, &mut out, &cancel,
                    )
                }
            };
            run.map_err(|e| match e {
                Error::Cancelled => ServeError::Shed(ShedReason::DeadlineExceeded),
                other => ServeError::Invalid(other),
            })?;
            let full = Arc::new(out);
            if !faults::fire(&shared.faults, FaultPoint::CacheInsert) {
                lock_unpoisoned(&shared.cache).insert_order(order_key, Arc::clone(&full));
            }
            full
        }
    };

    let span = obs::span(obs::SpanKind::ChunkEmit, hi.min(u32::MAX as usize) as u32);
    let slice = full.slice_level(lo, hi);
    span.done();
    // Counted by the *engine*, not the socket writer: a cancelled stream's
    // unexecuted chunk jobs never pass this point, so a flat
    // `stream_chunks_sent` after STREAM_CANCEL proves the server really
    // stopped working, not just stopped talking.
    shared.metrics.stream_chunks_sent.fetch_add(1, Ordering::Relaxed);
    Ok(StreamChunkResponse { slice, cache_hit: part_hit })
}

/// Runs one inference request: the frame path's partition + stage-1
/// pipeline (same cache, same deadline seams, same fault points), then the
/// network forward pass over the stage-1 output — all scratch from the
/// lane's workspace, logits staged in a pooled [`InferOutput`].
fn execute_infer_one(
    shared: &Shared,
    cloud: &PointCloud,
    config: PipelineConfig,
    executor: &NetworkExecutor,
    deadline: Option<Instant>,
    batch_size: usize,
    ws: &mut Workspace,
) -> Result<InferResponse, ServeError> {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(ServeError::Shed(ShedReason::DeadlineExceeded));
    }
    if faults::fire(&shared.faults, FaultPoint::Block) {
        return Err(ServeError::Internal);
    }
    let parallel = fractalcloud_parallel::effective_budget() > 1;
    let pipeline = Pipeline::new(config).map_err(ServeError::Invalid)?;
    let (built, cache_hit) = cached_partition(shared, &pipeline, cloud, parallel, ws)?;

    let mut staging = shared.outputs.checkout();
    let run = match deadline {
        None => pipeline.run_with_partition_into(cloud, &built, parallel, ws, &mut staging),
        Some(d) => {
            let cancel = CancelToken::with_deadline(d);
            pipeline.run_with_partition_into_cancel(
                cloud,
                &built,
                parallel,
                ws,
                &mut staging,
                &cancel,
            )
        }
    };
    run.map_err(|e| match e {
        Error::Cancelled => ServeError::Shed(ShedReason::DeadlineExceeded),
        other => ServeError::Invalid(other),
    })?;
    // The forward pass has no internal cancel seam; re-check the deadline
    // at the pipeline→network boundary so an already-expired request never
    // pays for the MLP stack.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(ServeError::Shed(ShedReason::DeadlineExceeded));
    }
    let mut output = shared.infer_outputs.take();
    executor.run_with_stage1_into(cloud, &staging, ws, &mut output).map_err(ServeError::Invalid)?;
    // Aggregate the forward pass's op counters into the engine-wide metrics
    // so the exposition endpoint can report MACs moved/saved and gather
    // traffic across all inference served so far.
    let c = &output.counters;
    let m = &shared.metrics;
    m.op_macs_moved.fetch_add(c.macs_moved, Ordering::Relaxed);
    m.op_macs_saved.fetch_add(c.macs_saved, Ordering::Relaxed);
    m.op_gather_bytes.fetch_add(c.gather_bytes, Ordering::Relaxed);
    Ok(InferResponse { output, aggregation: executor.config().aggregation, cache_hit, batch_size })
}

/// Prints a slow request's identity and — when the flight recorder is on —
/// its full span breakdown. Only reached past the `FRACTALCLOUD_SLOW_MS`
/// threshold, so the allocation and stderr traffic never touch a healthy
/// hot path.
#[cold]
fn log_slow_request(req: u64, priority: Priority, elapsed: Duration, threshold: u64) {
    let mut msg = format!(
        "[fractalcloud-serve] slow request {req} ({:?}): {} ms >= FRACTALCLOUD_SLOW_MS={threshold}\n",
        priority,
        elapsed.as_millis(),
    );
    let spans = obs::spans_for(req);
    if spans.is_empty() {
        msg.push_str("  (no spans retained; set FRACTALCLOUD_TRACE=on for a stage breakdown)\n");
    }
    for s in spans {
        use std::fmt::Write;
        let _ = writeln!(
            msg,
            "  +{:>8} us {:<20} {:>8} us  thread={} aux={}",
            s.start_us,
            s.kind.name(),
            s.dur_us,
            s.thread,
            s.aux,
        );
    }
    eprint!("{msg}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan};
    use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};

    fn small_engine() -> Engine {
        Engine::start(ServeConfig::default().workers(2).queue_capacity(16))
    }

    #[test]
    fn process_round_trips_a_frame() {
        let engine = small_engine();
        let cloud = uniform_cube(1024, 3);
        let r = engine.process(cloud, PipelineConfig::default()).unwrap();
        assert_eq!(r.sampled_indices.len(), 256);
        assert_eq!(r.found.len(), 256);
        assert_eq!(r.neighbor_indices.len(), 256 * r.num);
        assert!(r.blocks >= 4);
        engine.shutdown();
    }

    #[test]
    fn repeated_frame_hits_partition_cache_with_identical_results() {
        let engine = small_engine();
        let cloud = scene_cloud(&SceneConfig::default(), 2048, 5);
        let a = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        let b = engine.process(cloud, PipelineConfig::default()).unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        assert_eq!(a.sampled_indices, b.sampled_indices);
        assert_eq!(a.neighbor_indices, b.neighbor_indices);
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        engine.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_not_shed() {
        let engine = small_engine();
        let empty = engine.process(PointCloud::new(), PipelineConfig::default());
        assert_eq!(empty, Err(ServeError::Invalid(Error::EmptyCloud)));
        let bad = engine
            .process(uniform_cube(64, 1), PipelineConfig { neighbors: 0, ..Default::default() });
        assert!(matches!(bad, Err(ServeError::Invalid(Error::InvalidParameter { .. }))));
        assert_eq!(engine.metrics().rejected_invalid, 2);
        assert_eq!(engine.metrics().shed_total(), 0);
        engine.shutdown();
    }

    #[test]
    fn priority_classes_round_trip_with_identical_results() {
        let engine = small_engine();
        let cloud = uniform_cube(1024, 17);
        let normal = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        for p in Priority::ALL {
            let r =
                engine.process_with_priority(cloud.clone(), PipelineConfig::default(), p).unwrap();
            assert_eq!(r.sampled_indices, normal.sampled_indices, "priority changed results");
            assert_eq!(r.neighbor_indices, normal.neighbor_indices);
        }
        let m = engine.metrics();
        // Normal ran twice (submit defaults to Normal), High and Bulk once.
        assert_eq!(m.completed_by_class, [1, 2, 1]);
        engine.shutdown();
    }

    /// A queue-state test job (the guard points at a throwaway slot).
    fn test_job(p: Priority) -> Job {
        let admitted_at = Instant::now();
        Job {
            cloud: Arc::new(uniform_cube(8, 1)),
            config: PipelineConfig::default(),
            compat: 0,
            kind: WorkKind::Frame { budget: 0 },
            priority: p,
            degrade: 0,
            req: 0,
            admitted_at,
            deadline: None,
            ticket: TicketGuard {
                priority: p,
                admitted_at,
                req: 0,
                slot: Some(Arc::new(Slot::default())),
                stash: Arc::new(SlotStash::default()),
                metrics: Arc::new(Metrics::default()),
                resolved: false,
            },
        }
    }

    /// A waiter-side ticket over `slot` with a throwaway stash.
    fn test_ticket(slot: Arc<Slot>) -> Ticket {
        Ticket { slot: Some(slot), stash: Arc::new(SlotStash::default()), req: 0 }
    }

    #[test]
    fn weighted_queue_pops_follow_the_schedule() {
        // Pure queue-state test: deterministic, no threads.
        let mk = test_job;
        let mut q = QueueState::new();
        for _ in 0..3 {
            q.classes[Priority::High.index()].push_back(mk(Priority::High));
            q.classes[Priority::Bulk.index()].push_back(mk(Priority::Bulk));
        }
        q.classes[Priority::Normal.index()].push_back(mk(Priority::Normal));
        // Schedule H,H,H,H,N,N,B with highest-first fall-through: the three
        // Highs drain on their turns, the fourth High turn falls to Normal,
        // and the Normal/Bulk turns drain the Bulk lane.
        let order: Vec<Priority> =
            std::iter::from_fn(|| q.pop_weighted().map(|j| j.priority)).collect();
        assert_eq!(
            order,
            [
                Priority::High,
                Priority::High,
                Priority::High,
                Priority::Normal,
                Priority::Bulk,
                Priority::Bulk,
                Priority::Bulk,
            ]
        );
        assert!(q.pop_weighted().is_none());
    }

    #[test]
    fn displacement_sheds_the_youngest_lowest_class_only() {
        let mk = test_job;
        let mut q = QueueState::new();
        q.classes[Priority::Normal.index()].push_back(mk(Priority::Normal));
        q.classes[Priority::Bulk.index()].push_back(mk(Priority::Bulk));
        // High displaces the Bulk job first, then the Normal one, then
        // nothing (never its own class).
        assert_eq!(q.displace_below(Priority::High).unwrap().priority, Priority::Bulk);
        assert_eq!(q.displace_below(Priority::High).unwrap().priority, Priority::Normal);
        assert!(q.displace_below(Priority::High).is_none());
        // Bulk can never displace; Normal only displaces Bulk.
        q.classes[Priority::Normal.index()].push_back(mk(Priority::Normal));
        assert!(q.displace_below(Priority::Bulk).is_none());
        assert!(q.displace_below(Priority::Normal).is_none());
        q.classes[Priority::Bulk.index()].push_back(mk(Priority::Bulk));
        assert_eq!(q.displace_below(Priority::Normal).unwrap().priority, Priority::Bulk);
    }

    #[test]
    fn submit_after_shutdown_sheds() {
        let engine = small_engine();
        engine.shutdown();
        let r = engine.submit(uniform_cube(64, 1), PipelineConfig::default());
        assert_eq!(r.unwrap_err(), ServeError::Shed(ShedReason::ShuttingDown));
        assert_eq!(engine.metrics().shed_shutdown, 1);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let engine = small_engine();
        engine.shutdown();
        engine.shutdown();
    }

    #[test]
    fn dropped_ticket_guard_resolves_internal() {
        let job = test_job(Priority::Normal);
        let slot = Arc::clone(job.ticket.slot.as_ref().expect("slot present"));
        drop(job); // simulate a panic abandoning the job mid-execution
        assert_eq!(test_ticket(slot).wait(), Err(ServeError::Internal));
    }

    #[test]
    fn finished_guard_keeps_its_first_resolution() {
        let job = test_job(Priority::Normal);
        let slot = Arc::clone(job.ticket.slot.as_ref().expect("slot present"));
        job.ticket.finish(Err(ServeError::Shed(ShedReason::QueueFull)));
        // The guard's own Drop ran after finish(); first resolution wins.
        assert_eq!(test_ticket(slot).wait(), Err(ServeError::Shed(ShedReason::QueueFull)));
    }

    #[test]
    fn wait_timeout_distinguishes_pending_from_resolved() {
        let pending = test_ticket(Arc::new(Slot::default()));
        assert_eq!(pending.wait_timeout(Duration::from_millis(20)), None);

        let slot = Arc::new(Slot::default());
        *lock_unpoisoned(&slot.result) = Some(Err(ServeError::Internal));
        let resolved = test_ticket(slot);
        assert_eq!(resolved.wait_timeout(Duration::from_secs(5)), Some(Err(ServeError::Internal)));
    }

    #[test]
    fn lock_unpoisoned_recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        let mut guard = lock_unpoisoned(&m);
        guard.push(4); // the data stayed valid through the poisoning
        assert_eq!(*guard, [1, 2, 3, 4]);
    }

    #[test]
    fn zero_deadline_requests_shed_as_deadline_exceeded() {
        let engine = small_engine();
        let r = engine
            .submit_with_options(
                uniform_cube(1024, 3),
                PipelineConfig::default(),
                Priority::Normal,
                Some(Duration::ZERO),
            )
            .unwrap()
            .wait();
        assert_eq!(r, Err(ServeError::Shed(ShedReason::DeadlineExceeded)));
        let m = engine.metrics();
        assert_eq!(m.shed_deadline, 1);
        assert!(m.shed_total() >= 1);
        // The engine is unharmed: the next unbounded request completes.
        assert!(engine.process(uniform_cube(1024, 3), PipelineConfig::default()).is_ok());
        engine.shutdown();
    }

    #[test]
    fn injected_worker_panics_are_supervised_and_survived() {
        let plan =
            FaultPlan::OFF.with_fault(FaultKind::Panic, FaultPoint::Worker, 1.0).with_seed(7);
        let engine = Engine::start(ServeConfig::default().workers(1).faults(plan));
        for _ in 0..3 {
            let r = engine.process(uniform_cube(256, 5), PipelineConfig::default());
            assert_eq!(r, Err(ServeError::Internal));
        }
        // The ticket resolves during the unwind, *before* the supervisor
        // counts the panic and respawns — poll briefly for the counters.
        let deadline = Instant::now() + Duration::from_secs(10);
        let m = loop {
            let m = engine.metrics();
            if (m.worker_panics >= 3 && m.workers_respawned >= 3) || Instant::now() >= deadline {
                break m;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(m.worker_panics >= 3, "worker_panics = {}", m.worker_panics);
        assert!(m.workers_respawned >= 3, "workers_respawned = {}", m.workers_respawned);
        assert_eq!(m.failed_internal, 3);
        assert!(m.faults_injected >= 3);
        let health = engine.health();
        assert!(health.live, "engine must stay live through supervised panics");
        engine.shutdown();
        assert!(!engine.health().live);
    }

    #[test]
    fn injected_worker_errors_resolve_internal_without_panicking() {
        let plan = FaultPlan::OFF.with_fault(FaultKind::Err, FaultPoint::Worker, 1.0).with_seed(7);
        let engine = Engine::start(ServeConfig::default().workers(1).faults(plan));
        let r = engine.process(uniform_cube(256, 5), PipelineConfig::default());
        assert_eq!(r, Err(ServeError::Internal));
        let m = engine.metrics();
        assert_eq!(m.worker_panics, 0);
        assert_eq!(m.failed_internal, 1);
        engine.shutdown();
    }

    #[test]
    fn injected_block_errors_resolve_internal() {
        let plan = FaultPlan::OFF.with_fault(FaultKind::Err, FaultPoint::Block, 1.0).with_seed(7);
        let engine = Engine::start(ServeConfig::default().workers(1).faults(plan));
        let r = engine.process(uniform_cube(256, 5), PipelineConfig::default());
        assert_eq!(r, Err(ServeError::Internal));
        assert_eq!(engine.metrics().worker_panics, 0);
        engine.shutdown();
    }

    #[test]
    fn injected_cache_insert_errors_skip_the_insert_but_serve_correctly() {
        let plan =
            FaultPlan::OFF.with_fault(FaultKind::Err, FaultPoint::CacheInsert, 1.0).with_seed(7);
        let engine = Engine::start(ServeConfig::default().workers(1).faults(plan));
        let cloud = uniform_cube(1024, 9);
        let a = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        let b = engine.process(cloud.clone(), PipelineConfig::default()).unwrap();
        // The insert was dropped both times, so the repeat still misses …
        assert!(!a.cache_hit);
        assert!(!b.cache_hit);
        // … and results never depend on the cache.
        assert_eq!(a.sampled_indices, b.sampled_indices);
        assert_eq!(a.neighbor_indices, b.neighbor_indices);
        engine.shutdown();

        let clean = Engine::start(ServeConfig::default().workers(1));
        let c = clean.process(cloud, PipelineConfig::default()).unwrap();
        assert_eq!(c.sampled_indices, a.sampled_indices);
        clean.shutdown();
    }

    #[test]
    fn health_reports_workers_and_progress() {
        let engine = small_engine();
        let before = engine.health();
        assert!(before.live);
        assert_eq!(before.workers_alive, 2);
        assert_eq!(before.workers_configured, 2);
        assert_eq!(before.queued_by_class, [0, 0, 0]);
        engine.process(uniform_cube(512, 3), PipelineConfig::default()).unwrap();
        let after = engine.health();
        assert_eq!(after.worker_panics, 0);
        assert_eq!(after.workers_respawned, 0);
        engine.shutdown();
    }

    fn infer_request(aggregation: Aggregation) -> InferRequest {
        let model = ModelConfig::table1().remove(0);
        InferRequest { aggregation: Some(aggregation), ..InferRequest::new(model) }
    }

    #[test]
    fn infer_schedules_are_bit_identical_and_delayed_saves_macs() {
        let engine = small_engine();
        let cloud = Arc::new(uniform_cube(2048, 11));
        let eager =
            engine.process_infer(Arc::clone(&cloud), infer_request(Aggregation::Eager)).unwrap();
        let delayed = engine.process_infer(cloud, infer_request(Aggregation::Delayed)).unwrap();
        assert_eq!(eager.aggregation, Aggregation::Eager);
        assert_eq!(delayed.aggregation, Aggregation::Delayed);
        assert_eq!(eager.output.classes, delayed.output.classes);
        assert_eq!(eager.output.row_index, delayed.output.row_index);
        // Bit-exact equivalence, not approximate: compare raw patterns.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&eager.output.logits), bits(&delayed.output.logits));
        // Eager gathers (traffic, no MAC bookkeeping); delayed moves the
        // MLP before aggregation and reports what that move eliminated.
        assert_eq!(eager.output.counters.macs_moved, 0);
        assert!(eager.output.counters.gather_bytes > 0);
        assert!(delayed.output.counters.macs_moved > 0);
        assert!(delayed.output.counters.macs_saved > 0);
        assert_eq!(delayed.output.counters.gather_bytes, 0);
        engine.shutdown();
    }

    #[test]
    fn repeated_infer_hits_partition_cache_with_identical_logits() {
        let engine = small_engine();
        let cloud = Arc::new(scene_cloud(&SceneConfig::default(), 2048, 5));
        let a = engine.process_infer(Arc::clone(&cloud), infer_request(Aggregation::Delayed));
        let a = a.unwrap();
        let b = engine.process_infer(cloud, infer_request(Aggregation::Delayed)).unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        assert_eq!(a.output.logits, b.output.logits);
        assert_eq!(a.output.row_index, b.output.row_index);
        let m = engine.metrics();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        engine.shutdown();
    }

    #[test]
    fn infer_rejects_model_without_stages() {
        let engine = small_engine();
        let mut req = infer_request(Aggregation::Delayed);
        req.model.stages.clear();
        let out = engine.process_infer(Arc::new(uniform_cube(256, 3)), req);
        assert!(matches!(out, Err(ServeError::Invalid(_))), "got {out:?}");
        engine.shutdown();
    }

    #[test]
    fn frames_and_infers_interleave_on_one_engine() {
        let engine = small_engine();
        let cloud = Arc::new(uniform_cube(1024, 9));
        let frame = engine
            .submit_shared(Arc::clone(&cloud), PipelineConfig::default())
            .expect("frame admitted");
        let infer = engine
            .submit_infer(Arc::clone(&cloud), infer_request(Aggregation::Delayed))
            .expect("infer admitted");
        let frame = frame.wait().unwrap();
        let infer = infer.wait().unwrap();
        assert_eq!(frame.sampled_indices.len(), 256);
        assert!(!infer.output.logits.is_empty());
        assert_eq!(infer.output.logits.len(), infer.output.row_index.len() * infer.output.classes);
        engine.shutdown();
    }
}

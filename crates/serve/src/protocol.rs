//! The length-prefixed binary wire protocol of the TCP front-end.
//!
//! Plain `std::net` framing, little-endian throughout — no async runtime,
//! matching the rest of the workspace. One request, one response, any
//! number of request/response pairs per connection.
//!
//! ```text
//! request  := magic:u32 kind:u8 payload_len:u32 payload
//!   kind: low nibble = opcode (1 = PROCESS_FRAME)
//!         high nibble = priority (0 = normal, 1 = high, 2 = bulk)
//!   payload (opcode PROCESS_FRAME):
//!     threshold:u32 sample_rate:f64 radius:f32 neighbors:u32
//!     n_points:u32 (x:f32 y:f32 z:f32){n_points}
//!
//! response := magic:u32 status:u8 payload_len:u32 payload
//!   payload (status OK):
//!     blocks:u32 cache_hit:u8 batch_size:u32
//!     n_sampled:u32 sampled:u32{n_sampled}
//!     n_centers:u32 num:u32 neighbors:u32{n_centers*num}
//!     found:u32{n_centers}
//!   payload (status != OK): UTF-8 human-readable reason
//! ```
//!
//! The priority nibble is backward compatible by construction: clients
//! that predate priority classes send the bare opcode (high nibble 0),
//! which decodes as [`Priority::Normal`]. Unknown priority nibbles are
//! answered [`status::MALFORMED`].
//!
//! Status codes mirror [`ServeError`](crate::ServeError): `1` queue full,
//! `2` oversized frame, `3` shutting down, `4` invalid request, `5`
//! malformed wire data, `6` connection limit reached. Shed statuses
//! (`1`–`3`, `6`) are retryable by contract; `4`/`5` are not.

use crate::engine::Priority;
use fractalcloud_core::PipelineConfig;
use fractalcloud_pointcloud::{Point3, PointCloud};

/// Frame magic: `"FCS1"` (FractalCloud Serve, version 1).
pub const MAGIC: u32 = u32::from_le_bytes(*b"FCS1");

/// The only request opcode: process one frame. Lives in the low nibble of
/// the request kind byte; the high nibble carries the [`Priority`].
pub const OP_PROCESS_FRAME: u8 = 1;

/// Builds a request kind byte: opcode in the low nibble, priority in the
/// high nibble. A [`Priority::Normal`] request is byte-identical to what a
/// pre-priority client sends.
pub fn request_kind(priority: Priority) -> u8 {
    OP_PROCESS_FRAME | (priority.to_wire() << 4)
}

/// Splits a request kind byte into `(opcode, priority_nibble)`; feed the
/// nibble to [`Priority::from_wire`].
pub fn split_kind(kind: u8) -> (u8, u8) {
    (kind & 0x0F, kind >> 4)
}

/// Fixed request-payload bytes before the coordinate triplets.
pub const REQUEST_FIXED_BYTES: usize = 4 + 8 + 4 + 4 + 4;

/// Sanity ceiling a client applies to a server-declared response payload
/// before allocating (a megapoint frame's response is ~20 MB; anything
/// near this bound means a corrupt or hostile peer, not a real result).
pub const MAX_RESPONSE_PAYLOAD: usize = 1 << 28;

/// Response status codes.
pub mod status {
    /// Success; payload carries the results.
    pub const OK: u8 = 0;
    /// Shed: admission queue full (retryable).
    pub const QUEUE_FULL: u8 = 1;
    /// Shed: frame exceeds the server's point limit (retryable smaller).
    pub const OVERSIZED: u8 = 2;
    /// Shed: server draining for shutdown (retryable elsewhere).
    pub const SHUTTING_DOWN: u8 = 3;
    /// Rejected: invalid parameters or empty frame (not retryable as-is).
    pub const INVALID: u8 = 4;
    /// Rejected: the bytes did not parse as a protocol frame.
    pub const MALFORMED: u8 = 5;
    /// Shed: the server's concurrent-connection limit is reached
    /// (retryable later or elsewhere).
    pub const TOO_MANY_CONNECTIONS: u8 = 6;
}

/// A decoding failure (maps to [`status::MALFORMED`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// A little-endian cursor over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError("length overflow"))?;
        if end > self.buf.len() {
            return Err(WireError(what));
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Bytes left to read — the bound any wire-declared element count must
    /// respect *before* its buffer is allocated.
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError("trailing bytes"))
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a process-frame request payload (the part after the 9-byte
/// header).
pub fn encode_request_payload(cloud: &PointCloud, config: &PipelineConfig) -> Vec<u8> {
    let mut buf = Vec::with_capacity(REQUEST_FIXED_BYTES + cloud.len() * 12);
    put_u32(&mut buf, config.threshold as u32);
    buf.extend_from_slice(&config.sample_rate.to_le_bytes());
    buf.extend_from_slice(&config.radius.to_le_bytes());
    put_u32(&mut buf, config.neighbors as u32);
    put_u32(&mut buf, cloud.len() as u32);
    for i in 0..cloud.len() {
        let p = cloud.point(i);
        buf.extend_from_slice(&p.x.to_le_bytes());
        buf.extend_from_slice(&p.y.to_le_bytes());
        buf.extend_from_slice(&p.z.to_le_bytes());
    }
    buf
}

/// Decodes a process-frame request payload.
///
/// # Errors
///
/// [`WireError`] when the payload is truncated, over-long, or its declared
/// point count disagrees with its length.
pub fn decode_request_payload(payload: &[u8]) -> Result<(PointCloud, PipelineConfig), WireError> {
    let mut r = Reader { buf: payload, at: 0 };
    let threshold = r.u32("truncated threshold")? as usize;
    let sample_rate = r.f64("truncated sample_rate")?;
    let radius = r.f32("truncated radius")?;
    let neighbors = r.u32("truncated neighbors")? as usize;
    let n = r.u32("truncated point count")? as usize;
    let coords = r.take(
        n.checked_mul(12).ok_or(WireError("point count overflow"))?,
        "truncated coordinates",
    )?;
    r.done()?;
    let mut points = Vec::with_capacity(n);
    for c in coords.chunks_exact(12) {
        points.push(Point3::new(
            f32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
            f32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
            f32::from_le_bytes(c[8..12].try_into().expect("4 bytes")),
        ));
    }
    Ok((
        PointCloud::from_points(points),
        PipelineConfig::new(threshold, sample_rate, radius, neighbors),
    ))
}

/// The response fields that cross the wire (the in-process
/// [`FrameResponse`](crate::FrameResponse) minus the op counters, which are
/// observability data, not results).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// Sampled global indices in block order.
    pub sampled_indices: Vec<u32>,
    /// `centers × num` neighbor indices, row-major.
    pub neighbor_indices: Vec<u32>,
    /// In-radius hits per center.
    pub found: Vec<u32>,
    /// Neighbor slots per center.
    pub num: u32,
    /// Leaf blocks in the partition.
    pub blocks: u32,
    /// Whether the partition came from the server's LRU.
    pub cache_hit: bool,
    /// Frames fused into the executing batch.
    pub batch_size: u32,
}

/// Encodes an OK response payload.
pub fn encode_response_payload(resp: &WireResponse) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        17 + 4 * (resp.sampled_indices.len() + resp.neighbor_indices.len() + resp.found.len() + 2),
    );
    put_u32(&mut buf, resp.blocks);
    buf.push(u8::from(resp.cache_hit));
    put_u32(&mut buf, resp.batch_size);
    put_u32(&mut buf, resp.sampled_indices.len() as u32);
    for &v in &resp.sampled_indices {
        put_u32(&mut buf, v);
    }
    put_u32(&mut buf, resp.found.len() as u32);
    put_u32(&mut buf, resp.num);
    for &v in &resp.neighbor_indices {
        put_u32(&mut buf, v);
    }
    for &v in &resp.found {
        put_u32(&mut buf, v);
    }
    buf
}

/// Decodes an OK response payload.
///
/// # Errors
///
/// [`WireError`] when the payload is truncated, over-long, or its internal
/// lengths disagree.
pub fn decode_response_payload(payload: &[u8]) -> Result<WireResponse, WireError> {
    let mut r = Reader { buf: payload, at: 0 };
    let blocks = r.u32("truncated blocks")?;
    let cache_hit = r.u8("truncated cache_hit")? != 0;
    let batch_size = r.u32("truncated batch_size")?;
    // Every declared count is validated against the bytes actually present
    // before any buffer is sized from it, so a hostile peer cannot force
    // allocations beyond the (already bounded) payload it sent.
    let n_sampled = r.u32("truncated sample count")? as usize;
    if n_sampled > r.remaining() / 4 {
        return Err(WireError("sample count exceeds payload"));
    }
    let mut sampled_indices = Vec::with_capacity(n_sampled);
    for _ in 0..n_sampled {
        sampled_indices.push(r.u32("truncated samples")?);
    }
    let n_centers = r.u32("truncated center count")? as usize;
    let num = r.u32("truncated num")?;
    let slots = n_centers.checked_mul(num as usize).ok_or(WireError("slot count overflow"))?;
    if slots.checked_add(n_centers).ok_or(WireError("slot count overflow"))? > r.remaining() / 4 {
        return Err(WireError("neighbor counts exceed payload"));
    }
    let mut neighbor_indices = Vec::with_capacity(slots);
    for _ in 0..slots {
        neighbor_indices.push(r.u32("truncated neighbors")?);
    }
    let mut found = Vec::with_capacity(n_centers);
    for _ in 0..n_centers {
        found.push(r.u32("truncated found")?);
    }
    r.done()?;
    Ok(WireResponse {
        sampled_indices,
        neighbor_indices,
        found,
        num,
        blocks,
        cache_hit,
        batch_size,
    })
}

/// Encodes a complete message: header plus payload.
pub fn encode_message(kind_byte: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(9 + payload.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(kind_byte);
    put_u32(&mut buf, payload.len() as u32);
    buf.extend_from_slice(payload);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_pointcloud::generate::uniform_cube;

    #[test]
    fn request_round_trips() {
        let cloud = uniform_cube(100, 1);
        let cfg = PipelineConfig::new(64, 0.5, 0.3, 8);
        let payload = encode_request_payload(&cloud, &cfg);
        assert_eq!(payload.len(), REQUEST_FIXED_BYTES + 1200);
        let (cloud2, cfg2) = decode_request_payload(&payload).unwrap();
        assert_eq!(cloud, cloud2);
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn response_round_trips() {
        let resp = WireResponse {
            sampled_indices: vec![5, 9, 200],
            neighbor_indices: vec![1, 2, 3, 4, 5, 6],
            found: vec![2, 1, 2],
            num: 2,
            blocks: 7,
            cache_hit: true,
            batch_size: 3,
        };
        let payload = encode_response_payload(&resp);
        assert_eq!(decode_response_payload(&payload).unwrap(), resp);
    }

    #[test]
    fn truncated_and_overlong_payloads_are_malformed() {
        let cloud = uniform_cube(10, 2);
        let payload = encode_request_payload(&cloud, &PipelineConfig::default());
        assert!(decode_request_payload(&payload[..payload.len() - 1]).is_err());
        let mut long = payload.clone();
        long.push(0);
        assert_eq!(decode_request_payload(&long), Err(WireError("trailing bytes")));
        assert!(decode_request_payload(&[]).is_err());
    }

    #[test]
    fn declared_point_count_must_match_bytes() {
        let cloud = uniform_cube(4, 3);
        let mut payload = encode_request_payload(&cloud, &PipelineConfig::default());
        // Claim 5 points while carrying 4.
        let at = REQUEST_FIXED_BYTES - 4;
        payload[at..at + 4].copy_from_slice(&5u32.to_le_bytes());
        assert!(decode_request_payload(&payload).is_err());
    }

    #[test]
    fn huge_declared_counts_are_rejected_before_allocation() {
        // A tiny payload claiming u32::MAX samples must error, not try to
        // reserve gigabytes.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u32.to_le_bytes()); // blocks
        payload.push(0); // cache_hit
        payload.extend_from_slice(&1u32.to_le_bytes()); // batch_size
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // n_sampled
        assert_eq!(
            decode_response_payload(&payload),
            Err(WireError("sample count exceeds payload"))
        );

        // Same for the neighbor matrix: n_centers * num overflowing or
        // exceeding the remaining bytes.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u32.to_le_bytes());
        payload.push(0);
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes()); // n_sampled = 0
        payload.extend_from_slice(&1000u32.to_le_bytes()); // n_centers
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // num
        assert!(decode_response_payload(&payload).is_err());
    }

    #[test]
    fn priority_rides_the_kind_byte_high_nibble() {
        // A Normal request is byte-identical to a pre-priority client's.
        assert_eq!(request_kind(Priority::Normal), OP_PROCESS_FRAME);
        for p in Priority::ALL {
            let kind = request_kind(p);
            let (opcode, nibble) = split_kind(kind);
            assert_eq!(opcode, OP_PROCESS_FRAME);
            assert_eq!(Priority::from_wire(nibble), Some(p));
        }
        // Old clients (high nibble 0) decode as the Normal default;
        // unknown nibbles are rejected rather than guessed.
        assert_eq!(Priority::from_wire(split_kind(OP_PROCESS_FRAME).1), Some(Priority::Normal));
        assert_eq!(Priority::from_wire(0xF), None);
    }

    #[test]
    fn message_header_layout() {
        let msg = encode_message(OP_PROCESS_FRAME, &[0xAB, 0xCD]);
        assert_eq!(&msg[0..4], b"FCS1");
        assert_eq!(msg[4], OP_PROCESS_FRAME);
        assert_eq!(u32::from_le_bytes(msg[5..9].try_into().unwrap()), 2);
        assert_eq!(&msg[9..], &[0xAB, 0xCD]);
    }
}

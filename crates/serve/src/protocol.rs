//! The length-prefixed binary wire protocol of the TCP front-end.
//!
//! Plain `std::net` framing, little-endian throughout — no async runtime,
//! matching the rest of the workspace. One request, one response, any
//! number of request/response pairs per connection.
//!
//! ```text
//! request  := magic:u32 kind:u8 payload_len:u32 payload
//!   kind: low nibble = opcode (1 = PROCESS_FRAME, 2 = HEALTH, 3 = INFER,
//!         4 = METRICS, 5 = TRACE_DUMP, 6 = STREAM, 7 = STREAM_CREDIT,
//!         8 = STREAM_CANCEL)
//!         high nibble = priority (0 = normal, 1 = high, 2 = bulk)
//!   payload (opcode PROCESS_FRAME):
//!     threshold:u32 sample_rate:f64 radius:f32 neighbors:u32
//!     n_points:u32 (x:f32 y:f32 z:f32){n_points}
//!     [deadline_ms:u32 [budget:u32]]
//!   payload (opcode STREAM):
//!     threshold:u32 sample_rate:f64 radius:f32 neighbors:u32
//!     n_points:u32 (x:f32 y:f32 z:f32){n_points}
//!     deadline_ms:u32 first_paint:u32 chunk:u32 credits:u32
//!   payload (opcode STREAM_CREDIT): empty (grants ONE refinement chunk)
//!   payload (opcode STREAM_CANCEL): empty
//!   payload (opcode HEALTH): empty
//!   payload (opcode INFER):
//!     threshold:u32 seed:u64 aggregation:u8 (0 = server default,
//!       1 = eager, 2 = delayed)
//!     notation_len:u32 notation:utf8{notation_len}
//!     n_points:u32 (x:f32 y:f32 z:f32){n_points} [deadline_ms:u32]
//!   payload (opcode METRICS): empty
//!   payload (opcode TRACE_DUMP): empty
//!
//! response := magic:u32 status:u8 payload_len:u32 payload
//!   payload (status OK, PROCESS_FRAME):
//!     blocks:u32 cache_hit:u8 batch_size:u32
//!     n_sampled:u32 sampled:u32{n_sampled}
//!     n_centers:u32 num:u32 neighbors:u32{n_centers*num}
//!     found:u32{n_centers} [budget_served:u32]
//!   payload (status OK, HEALTH):
//!     live:u8 workers_alive:u64 workers_configured:u64
//!     queued_high:u64 queued_normal:u64 queued_bulk:u64
//!     last_progress_age_ms:u64 worker_panics:u64 workers_respawned:u64
//!     uptime_ms:u64 trace_enabled:u8 trace_capacity:u64
//!     trace_dropped:u64 streams_open:u64 draining:u8 overload_level:u8
//!   payload (status OK, METRICS): UTF-8 Prometheus-style exposition text
//!   payload (status OK, TRACE_DUMP): UTF-8 Chrome trace-event JSON
//!     (draining the flight recorder)
//!   payload (status OK, INFER):
//!     classes:u32 cache_hit:u8 batch_size:u32 aggregation:u8 (1|2)
//!     macs_moved:u64 macs_saved:u64 gather_bytes:u64
//!     n_rows:u32 row_index:u32{n_rows} logits:f32{n_rows*classes}
//!   payload (status CHUNK, STREAM):
//!     seq:u32 lo:u32 hi:u32 total:u32 blocks:u32 num:u32 cache_hit:u8
//!     n_segments:u32 segment{n_segments}
//!       segment := block:u32 count:u32 sampled:u32{count}
//!                  grouped:u32{count*num} found:u32{count}
//!   payload (status STREAM_END, STREAM):
//!     chunks:u32 delivered:u32 cancelled:u8
//!   payload (status != OK/CHUNK/STREAM_END): UTF-8 human-readable reason
//! ```
//!
//! A STREAM exchange is one request followed by a CHUNK frame per
//! coarse-to-fine refinement slice and a terminating STREAM_END (or a
//! plain error status, which also ends the stream). Flow control is
//! credit-based: the opening request carries an initial refinement budget,
//! and each (empty) STREAM_CREDIT frame from the client grants exactly one
//! more refinement chunk — the first-paint chunk is never gated. The
//! client may send STREAM_CANCEL at any depth; the server stops slicing,
//! answers STREAM_END with `cancelled = 1`, and the connection returns to
//! the ordinary request/response loop. Concatenating the per-block
//! segments of chunks `1..=n` reproduces byte-for-byte the PROCESS_FRAME
//! response a direct `budget = hi_n` request returns (see
//! [`StreamAccumulator`]).
//!
//! Inference logits cross the wire as raw little-endian `f32` bit
//! patterns, so a TCP round-trip is *bit-identical* to the in-process
//! [`InferResponse`](crate::InferResponse) — the serving layer never
//! perturbs the numerics.
//!
//! The priority nibble is backward compatible by construction: clients
//! that predate priority classes send the bare opcode (high nibble 0),
//! which decodes as [`Priority::Normal`]. Unknown priority nibbles are
//! answered [`status::MALFORMED`]. The trailing `deadline_ms` is likewise
//! optional: pre-deadline clients simply omit it (and deadline-aware
//! clients omit it for 0, keeping their unbounded requests byte-identical
//! to old ones); when present and non-zero it overrides the server's
//! default request deadline.
//!
//! Status codes mirror [`ServeError`](crate::ServeError): `1` queue full,
//! `2` oversized frame, `3` shutting down, `4` invalid request, `5`
//! malformed wire data, `6` connection limit reached, `7` internal
//! executor failure, `8` deadline exceeded, `11` GOAWAY (the connection's
//! server is draining — reconnect elsewhere or retry later). Shed statuses
//! (`1`–`3`, `6`, `8`, `11`) are retryable by contract; `4`/`5`/`7` are
//! not.
//!
//! The trailing `budget_served` on a PROCESS_FRAME response is the
//! brown-out marker: its *presence* means the server degraded the request
//! — it ran the frame at `budget_served` samples instead of the full (or
//! requested) budget, and the results are the exact `budget_served`-sample
//! prefix of the full run (see
//! [`Pipeline::run_with_partition_budget`](fractalcloud_core::Pipeline::run_with_partition_budget)).
//! Non-degraded responses omit the field, staying byte-identical to
//! pre-brown-out servers.

use crate::engine::{EngineHealth, Priority};
use fractalcloud_core::PipelineConfig;
use fractalcloud_pointcloud::{Point3, PointCloud};

/// Frame magic: `"FCS1"` (FractalCloud Serve, version 1).
pub const MAGIC: u32 = u32::from_le_bytes(*b"FCS1");

/// Request opcode: process one frame. Lives in the low nibble of the
/// request kind byte; the high nibble carries the [`Priority`].
pub const OP_PROCESS_FRAME: u8 = 1;

/// Request opcode: engine liveness snapshot ([`EngineHealth`]). The
/// payload is empty and the priority nibble is ignored — health probes
/// are answered inline by the connection handler, never queued.
pub const OP_HEALTH: u8 = 2;

/// Request opcode: run end-to-end network inference over a frame
/// (partition → stage-1 sample/group → PNN forward pass), returning
/// per-row class logits. Shares the priority nibble, optional deadline
/// trailer, partition cache, and shedding semantics with
/// [`OP_PROCESS_FRAME`].
pub const OP_INFER: u8 = 3;

/// Request opcode: metrics exposition. Empty payload; answered inline
/// (never queued) with the engine's Prometheus-style text —
/// [`MetricsSnapshot`](crate::MetricsSnapshot), per-class histograms,
/// cache/fault/worker counters, aggregated op counters, and
/// flight-recorder status. The priority nibble is ignored.
pub const OP_METRICS: u8 = 4;

/// Request opcode: drain the flight recorder. Empty payload; answered
/// inline with Chrome trace-event JSON (empty `traceEvents` when tracing
/// is off). Draining consumes: two consecutive dumps never repeat an
/// event. The priority nibble is ignored.
pub const OP_TRACE_DUMP: u8 = 5;

/// Request opcode: open a progressive LOD stream over a frame. The server
/// answers with a first-paint [`status::CHUNK`] at the request's priority,
/// then credit-gated refinement chunks (demoted to bulk internally), then
/// [`status::STREAM_END`]. Payload is the PROCESS_FRAME layout with a
/// *required* trailer: `deadline_ms first_paint chunk credits` (see
/// [`WireStreamOpen`]).
pub const OP_STREAM: u8 = 6;

/// Mid-stream client frame: grant one more refinement chunk. Empty
/// payload; only valid while a STREAM exchange is open.
pub const OP_STREAM_CREDIT: u8 = 7;

/// Mid-stream client frame: stop refining at the current depth. Empty
/// payload; the server answers [`status::STREAM_END`] with
/// `cancelled = 1`.
pub const OP_STREAM_CANCEL: u8 = 8;

/// Builds a request kind byte: opcode in the low nibble, priority in the
/// high nibble. A [`Priority::Normal`] request is byte-identical to what a
/// pre-priority client sends.
pub fn request_kind(priority: Priority) -> u8 {
    OP_PROCESS_FRAME | (priority.to_wire() << 4)
}

/// Builds an [`OP_STREAM`] request kind byte, priority in the high nibble
/// (the class the first-paint chunk rides; refinement is demoted to bulk
/// server-side).
pub fn stream_request_kind(priority: Priority) -> u8 {
    OP_STREAM | (priority.to_wire() << 4)
}

/// Builds an [`OP_INFER`] request kind byte, priority in the high nibble.
pub fn infer_request_kind(priority: Priority) -> u8 {
    OP_INFER | (priority.to_wire() << 4)
}

/// Splits a request kind byte into `(opcode, priority_nibble)`; feed the
/// nibble to [`Priority::from_wire`].
pub fn split_kind(kind: u8) -> (u8, u8) {
    (kind & 0x0F, kind >> 4)
}

/// Fixed request-payload bytes before the coordinate triplets.
pub const REQUEST_FIXED_BYTES: usize = 4 + 8 + 4 + 4 + 4;

/// Largest trailer any request opcode appends after the coordinate
/// triplets: the [`OP_STREAM`] trailer (`deadline_ms`, `first_paint`,
/// `chunk`, `credits` — four `u32`s). The server's payload-size bound
/// budgets for this on top of a `max_points` frame so a maximal frame can
/// still carry a full trailer.
pub const REQUEST_TRAILER_MAX_BYTES: usize = 16;

/// Sanity ceiling a client applies to a server-declared response payload
/// before allocating (a megapoint frame's response is ~20 MB; anything
/// near this bound means a corrupt or hostile peer, not a real result).
pub const MAX_RESPONSE_PAYLOAD: usize = 1 << 28;

/// Response status codes.
pub mod status {
    /// Success; payload carries the results.
    pub const OK: u8 = 0;
    /// Shed: admission queue full (retryable).
    pub const QUEUE_FULL: u8 = 1;
    /// Shed: frame exceeds the server's point limit (retryable smaller).
    pub const OVERSIZED: u8 = 2;
    /// Shed: server draining for shutdown (retryable elsewhere).
    pub const SHUTTING_DOWN: u8 = 3;
    /// Rejected: invalid parameters or empty frame (not retryable as-is).
    pub const INVALID: u8 = 4;
    /// Rejected: the bytes did not parse as a protocol frame.
    pub const MALFORMED: u8 = 5;
    /// Shed: the server's concurrent-connection limit is reached
    /// (retryable later or elsewhere).
    pub const TOO_MANY_CONNECTIONS: u8 = 6;
    /// Failed: the request's executor panicked or hit an injected fault
    /// (not blindly retryable — the same input may fail the same way; the
    /// server itself survived).
    pub const INTERNAL_ERROR: u8 = 7;
    /// Shed: the request's deadline expired before completion (retryable —
    /// with a fresh deadline).
    pub const DEADLINE_EXCEEDED: u8 = 8;
    /// Streaming: one coarse-to-fine refinement chunk; more frames follow.
    pub const CHUNK: u8 = 9;
    /// Streaming: the stream is over (completed, cancelled, or shed); the
    /// connection is back in the request/response loop.
    pub const STREAM_END: u8 = 10;
    /// Shed: the server is draining this listener for maintenance. Finish
    /// reading any in-flight replies, then reconnect elsewhere or retry
    /// later (retryable). Work opcodes (PROCESS_FRAME / INFER / STREAM)
    /// are answered GOAWAY while draining; HEALTH and METRICS stay
    /// answered inline so probes keep working.
    pub const GOAWAY: u8 = 11;
}

/// A decoding failure (maps to [`status::MALFORMED`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// A little-endian cursor over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError("length overflow"))?;
        if end > self.buf.len() {
            return Err(WireError(what));
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Bytes left to read — the bound any wire-declared element count must
    /// respect *before* its buffer is allocated.
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError("trailing bytes"))
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a process-frame request payload (the part after the 9-byte
/// header) with no wire deadline — byte-identical to what pre-deadline
/// clients send.
pub fn encode_request_payload(cloud: &PointCloud, config: &PipelineConfig) -> Vec<u8> {
    encode_request_payload_deadline(cloud, config, 0)
}

/// [`encode_request_payload`] with a per-request deadline in milliseconds.
/// A non-zero deadline rides as the optional trailing `deadline_ms:u32`;
/// zero ("use the server default") omits the field entirely, so unbounded
/// requests stay parseable by pre-deadline servers.
pub fn encode_request_payload_deadline(
    cloud: &PointCloud,
    config: &PipelineConfig,
    deadline_ms: u32,
) -> Vec<u8> {
    encode_request_payload_budget(cloud, config, deadline_ms, 0)
}

/// [`encode_request_payload_deadline`] with an explicit sample budget: the
/// server runs the pipeline at `n_samples = budget` (the first `budget`
/// ranks of the frame's coarse-to-fine ordering) instead of the full
/// `sample_rate` allocation. Zero means "full budget" and omits the field;
/// a non-zero budget forces the deadline field so the trailer stays
/// positionally unambiguous (`[deadline_ms [budget]]`).
pub fn encode_request_payload_budget(
    cloud: &PointCloud,
    config: &PipelineConfig,
    deadline_ms: u32,
    budget: u32,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(REQUEST_FIXED_BYTES + cloud.len() * 12 + 8);
    put_u32(&mut buf, config.threshold as u32);
    buf.extend_from_slice(&config.sample_rate.to_le_bytes());
    buf.extend_from_slice(&config.radius.to_le_bytes());
    put_u32(&mut buf, config.neighbors as u32);
    put_u32(&mut buf, cloud.len() as u32);
    for i in 0..cloud.len() {
        let p = cloud.point(i);
        buf.extend_from_slice(&p.x.to_le_bytes());
        buf.extend_from_slice(&p.y.to_le_bytes());
        buf.extend_from_slice(&p.z.to_le_bytes());
    }
    if deadline_ms > 0 || budget > 0 {
        put_u32(&mut buf, deadline_ms);
    }
    if budget > 0 {
        put_u32(&mut buf, budget);
    }
    buf
}

/// Decodes a process-frame request payload. The third element is the wire
/// deadline in milliseconds — 0 when absent or explicitly zero, meaning
/// "use the server's default" — and the fourth the sample budget (0 =
/// full).
///
/// # Errors
///
/// [`WireError`] when the payload is truncated, over-long, or its declared
/// point count disagrees with its length.
pub fn decode_request_payload(
    payload: &[u8],
) -> Result<(PointCloud, PipelineConfig, u32, u32), WireError> {
    let mut r = Reader { buf: payload, at: 0 };
    let (cloud, config) = decode_frame_prefix(&mut r)?;
    // Optional trailer: nothing, `deadline_ms`, or `deadline_ms budget`.
    let deadline_ms = if r.remaining() > 0 { r.u32("truncated deadline")? } else { 0 };
    let budget = if r.remaining() > 0 { r.u32("truncated budget")? } else { 0 };
    r.done()?;
    Ok((cloud, config, deadline_ms, budget))
}

/// The shared frame prefix of PROCESS_FRAME and STREAM payloads:
/// pipeline parameters plus coordinate triplets, leaving the cursor at the
/// opcode-specific trailer.
fn decode_frame_prefix(r: &mut Reader<'_>) -> Result<(PointCloud, PipelineConfig), WireError> {
    let threshold = r.u32("truncated threshold")? as usize;
    let sample_rate = r.f64("truncated sample_rate")?;
    let radius = r.f32("truncated radius")?;
    let neighbors = r.u32("truncated neighbors")? as usize;
    let n = r.u32("truncated point count")? as usize;
    let coords = r.take(
        n.checked_mul(12).ok_or(WireError("point count overflow"))?,
        "truncated coordinates",
    )?;
    let mut points = Vec::with_capacity(n);
    for c in coords.chunks_exact(12) {
        points.push(Point3::new(
            f32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
            f32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
            f32::from_le_bytes(c[8..12].try_into().expect("4 bytes")),
        ));
    }
    Ok((
        PointCloud::from_points(points),
        PipelineConfig::new(threshold, sample_rate, radius, neighbors),
    ))
}

/// The streaming knobs that ride an [`OP_STREAM`] request after the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStreamOpen {
    /// Samples in the first-paint chunk (0 = server default).
    pub first_paint: u32,
    /// Samples per refinement chunk (0 = server default).
    pub chunk: u32,
    /// Initial refinement-chunk credits (0 = server default). Each
    /// [`OP_STREAM_CREDIT`] frame adds one more.
    pub credits: u32,
}

/// Encodes an [`OP_STREAM`] request payload: the PROCESS_FRAME frame
/// prefix plus the required `deadline_ms first_paint chunk credits`
/// trailer.
pub fn encode_stream_request_payload(
    cloud: &PointCloud,
    config: &PipelineConfig,
    deadline_ms: u32,
    open: &WireStreamOpen,
) -> Vec<u8> {
    let mut buf = encode_request_payload(cloud, config);
    put_u32(&mut buf, deadline_ms);
    put_u32(&mut buf, open.first_paint);
    put_u32(&mut buf, open.chunk);
    put_u32(&mut buf, open.credits);
    buf
}

/// Decodes an [`OP_STREAM`] request payload.
///
/// # Errors
///
/// [`WireError`] when the payload is truncated, over-long, or its declared
/// point count disagrees with its length.
pub fn decode_stream_request_payload(
    payload: &[u8],
) -> Result<(PointCloud, PipelineConfig, u32, WireStreamOpen), WireError> {
    let mut r = Reader { buf: payload, at: 0 };
    let (cloud, config) = decode_frame_prefix(&mut r)?;
    let deadline_ms = r.u32("truncated deadline")?;
    let open = WireStreamOpen {
        first_paint: r.u32("truncated first_paint")?,
        chunk: r.u32("truncated chunk")?,
        credits: r.u32("truncated credits")?,
    };
    r.done()?;
    Ok((cloud, config, deadline_ms, open))
}

/// Wire aggregation byte: use the server's configured default
/// (`FRACTALCLOUD_AGGREGATION`).
pub const AGG_SERVER_DEFAULT: u8 = 0;
/// Wire aggregation byte: force the eager (gather-then-MLP) schedule.
pub const AGG_EAGER: u8 = 1;
/// Wire aggregation byte: force the Mesorasi delayed-aggregation schedule.
pub const AGG_DELAYED: u8 = 2;

/// The inference parameters that ride an [`OP_INFER`] request alongside
/// the frame itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireInferRequest {
    /// Partition leaf threshold (the stage-1 pipeline's `threshold`).
    pub threshold: u32,
    /// Deterministic weight seed — same seed, same logits, everywhere.
    pub seed: u64,
    /// Aggregation schedule byte: [`AGG_SERVER_DEFAULT`], [`AGG_EAGER`],
    /// or [`AGG_DELAYED`]. Anything else is malformed.
    pub aggregation: u8,
    /// Model-zoo notation, e.g. `"PN++ (c)"` — resolved against the
    /// server's Table I zoo; unknown notations are rejected as invalid.
    pub notation: String,
}

/// Encodes an [`OP_INFER`] request payload. A non-zero `deadline_ms` rides
/// as the same optional trailing `u32` as process-frame requests.
pub fn encode_infer_request_payload(
    cloud: &PointCloud,
    req: &WireInferRequest,
    deadline_ms: u32,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + 8 + 1 + 4 + req.notation.len() + 4 + cloud.len() * 12 + 4);
    put_u32(&mut buf, req.threshold);
    buf.extend_from_slice(&req.seed.to_le_bytes());
    buf.push(req.aggregation);
    put_u32(&mut buf, req.notation.len() as u32);
    buf.extend_from_slice(req.notation.as_bytes());
    put_u32(&mut buf, cloud.len() as u32);
    for i in 0..cloud.len() {
        let p = cloud.point(i);
        buf.extend_from_slice(&p.x.to_le_bytes());
        buf.extend_from_slice(&p.y.to_le_bytes());
        buf.extend_from_slice(&p.z.to_le_bytes());
    }
    if deadline_ms > 0 {
        put_u32(&mut buf, deadline_ms);
    }
    buf
}

/// Decodes an [`OP_INFER`] request payload. The third element is the wire
/// deadline in milliseconds (0 when absent).
///
/// # Errors
///
/// [`WireError`] when the payload is truncated, over-long, carries an
/// unknown aggregation byte, a non-UTF-8 notation, or declared lengths
/// that disagree with the bytes present.
pub fn decode_infer_request_payload(
    payload: &[u8],
) -> Result<(PointCloud, WireInferRequest, u32), WireError> {
    let mut r = Reader { buf: payload, at: 0 };
    let threshold = r.u32("truncated threshold")?;
    let seed = r.u64("truncated seed")?;
    let aggregation = r.u8("truncated aggregation")?;
    if aggregation > AGG_DELAYED {
        return Err(WireError("unknown aggregation byte"));
    }
    let notation_len = r.u32("truncated notation length")? as usize;
    if notation_len > r.remaining() {
        return Err(WireError("notation length exceeds payload"));
    }
    let notation = std::str::from_utf8(r.take(notation_len, "truncated notation")?)
        .map_err(|_| WireError("notation is not UTF-8"))?
        .to_owned();
    let n = r.u32("truncated point count")? as usize;
    let coords = r.take(
        n.checked_mul(12).ok_or(WireError("point count overflow"))?,
        "truncated coordinates",
    )?;
    let deadline_ms = if r.remaining() > 0 { r.u32("truncated deadline")? } else { 0 };
    r.done()?;
    let mut points = Vec::with_capacity(n);
    for c in coords.chunks_exact(12) {
        points.push(Point3::new(
            f32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
            f32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
            f32::from_le_bytes(c[8..12].try_into().expect("4 bytes")),
        ));
    }
    Ok((
        PointCloud::from_points(points),
        WireInferRequest { threshold, seed, aggregation, notation },
        deadline_ms,
    ))
}

/// The inference results that cross the wire (the in-process
/// [`InferResponse`](crate::InferResponse) with logits as raw `f32` bit
/// patterns — a TCP round-trip is bit-identical to calling the engine
/// in-process).
#[derive(Debug, Clone, PartialEq)]
pub struct WireInferResponse {
    /// Output classes per row (`logits.len() == row_index.len() * classes`).
    pub classes: u32,
    /// Whether the partition came from the server's LRU.
    pub cache_hit: bool,
    /// Frames fused into the executing batch.
    pub batch_size: u32,
    /// The schedule that actually ran: [`AGG_EAGER`] or [`AGG_DELAYED`]
    /// (the server resolves [`AGG_SERVER_DEFAULT`] before replying).
    pub aggregation: u8,
    /// SA-stage MLP multiply-accumulates the delayed schedule performs.
    pub macs_moved: u64,
    /// MLP multiply-accumulates eliminated vs the eager schedule.
    pub macs_saved: u64,
    /// Bytes of neighbor-gather traffic the executed schedule incurred.
    pub gather_bytes: u64,
    /// Global point index each logit row describes.
    pub row_index: Vec<u32>,
    /// Row-major `rows × classes` class scores.
    pub logits: Vec<f32>,
}

/// Encodes an OK [`OP_INFER`] response payload.
pub fn encode_infer_response_payload(resp: &WireInferResponse) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(4 + 1 + 4 + 1 + 24 + 4 + 4 * (resp.row_index.len() + resp.logits.len()));
    encode_infer_response_payload_into(resp, &mut buf);
    buf
}

/// [`encode_infer_response_payload`] appending into a caller-provided
/// buffer (the wire path's per-connection scratch form).
pub fn encode_infer_response_payload_into(resp: &WireInferResponse, buf: &mut Vec<u8>) {
    put_u32(buf, resp.classes);
    buf.push(u8::from(resp.cache_hit));
    put_u32(buf, resp.batch_size);
    buf.push(resp.aggregation);
    buf.extend_from_slice(&resp.macs_moved.to_le_bytes());
    buf.extend_from_slice(&resp.macs_saved.to_le_bytes());
    buf.extend_from_slice(&resp.gather_bytes.to_le_bytes());
    put_u32(buf, resp.row_index.len() as u32);
    for &v in &resp.row_index {
        put_u32(buf, v);
    }
    for &v in &resp.logits {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes an OK [`OP_INFER`] response payload.
///
/// # Errors
///
/// [`WireError`] when the payload is truncated, over-long, or its declared
/// row/class counts disagree with its length.
pub fn decode_infer_response_payload(payload: &[u8]) -> Result<WireInferResponse, WireError> {
    let mut r = Reader { buf: payload, at: 0 };
    let classes = r.u32("truncated classes")?;
    let cache_hit = r.u8("truncated cache_hit")? != 0;
    let batch_size = r.u32("truncated batch_size")?;
    let aggregation = r.u8("truncated aggregation")?;
    if aggregation != AGG_EAGER && aggregation != AGG_DELAYED {
        return Err(WireError("unknown aggregation byte"));
    }
    let macs_moved = r.u64("truncated macs_moved")?;
    let macs_saved = r.u64("truncated macs_saved")?;
    let gather_bytes = r.u64("truncated gather_bytes")?;
    // Validate declared counts against the bytes present before sizing any
    // buffer from them, mirroring `decode_response_payload`.
    let rows = r.u32("truncated row count")? as usize;
    let cells = rows.checked_mul(classes as usize).ok_or(WireError("logit count overflow"))?;
    if rows.checked_add(cells).ok_or(WireError("logit count overflow"))? > r.remaining() / 4 {
        return Err(WireError("row counts exceed payload"));
    }
    let mut row_index = Vec::with_capacity(rows);
    for _ in 0..rows {
        row_index.push(r.u32("truncated row index")?);
    }
    let mut logits = Vec::with_capacity(cells);
    for _ in 0..cells {
        logits.push(r.f32("truncated logits")?);
    }
    r.done()?;
    Ok(WireInferResponse {
        classes,
        cache_hit,
        batch_size,
        aggregation,
        macs_moved,
        macs_saved,
        gather_bytes,
        row_index,
        logits,
    })
}

/// The response fields that cross the wire (the in-process
/// [`FrameResponse`](crate::FrameResponse) minus the op counters, which are
/// observability data, not results).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// Sampled global indices in block order.
    pub sampled_indices: Vec<u32>,
    /// `centers × num` neighbor indices, row-major.
    pub neighbor_indices: Vec<u32>,
    /// In-radius hits per center.
    pub found: Vec<u32>,
    /// Neighbor slots per center.
    pub num: u32,
    /// Leaf blocks in the partition.
    pub blocks: u32,
    /// Whether the partition came from the server's LRU.
    pub cache_hit: bool,
    /// Frames fused into the executing batch.
    pub batch_size: u32,
    /// Whether the server browned-out this request (ran it at a reduced
    /// sample budget). Wired as the *presence* of the `budget_served`
    /// trailer, so non-degraded responses stay byte-identical to
    /// pre-brown-out servers.
    pub degraded: bool,
    /// Samples actually served when `degraded` (0 otherwise). The results
    /// are the exact `budget_served`-sample prefix of the full run.
    pub budget_served: u32,
}

/// Encodes an OK response payload.
pub fn encode_response_payload(resp: &WireResponse) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        17 + 4 * (resp.sampled_indices.len() + resp.neighbor_indices.len() + resp.found.len() + 2),
    );
    encode_response_payload_into(resp, &mut buf);
    buf
}

/// [`encode_response_payload`] appending into a caller-provided buffer —
/// the wire path's per-connection scratch form (a warmed buffer encodes a
/// steady-state response with zero heap allocation).
pub fn encode_response_payload_into(resp: &WireResponse, buf: &mut Vec<u8>) {
    put_u32(buf, resp.blocks);
    buf.push(u8::from(resp.cache_hit));
    put_u32(buf, resp.batch_size);
    put_u32(buf, resp.sampled_indices.len() as u32);
    for &v in &resp.sampled_indices {
        put_u32(buf, v);
    }
    put_u32(buf, resp.found.len() as u32);
    put_u32(buf, resp.num);
    for &v in &resp.neighbor_indices {
        put_u32(buf, v);
    }
    for &v in &resp.found {
        put_u32(buf, v);
    }
    // Brown-out marker: presence of the trailer *is* the degraded flag.
    if resp.degraded {
        put_u32(buf, resp.budget_served);
    }
}

/// Decodes an OK response payload.
///
/// # Errors
///
/// [`WireError`] when the payload is truncated, over-long, or its internal
/// lengths disagree.
pub fn decode_response_payload(payload: &[u8]) -> Result<WireResponse, WireError> {
    let mut r = Reader { buf: payload, at: 0 };
    let blocks = r.u32("truncated blocks")?;
    let cache_hit = r.u8("truncated cache_hit")? != 0;
    let batch_size = r.u32("truncated batch_size")?;
    // Every declared count is validated against the bytes actually present
    // before any buffer is sized from it, so a hostile peer cannot force
    // allocations beyond the (already bounded) payload it sent.
    let n_sampled = r.u32("truncated sample count")? as usize;
    if n_sampled > r.remaining() / 4 {
        return Err(WireError("sample count exceeds payload"));
    }
    let mut sampled_indices = Vec::with_capacity(n_sampled);
    for _ in 0..n_sampled {
        sampled_indices.push(r.u32("truncated samples")?);
    }
    let n_centers = r.u32("truncated center count")? as usize;
    let num = r.u32("truncated num")?;
    let slots = n_centers.checked_mul(num as usize).ok_or(WireError("slot count overflow"))?;
    if slots.checked_add(n_centers).ok_or(WireError("slot count overflow"))? > r.remaining() / 4 {
        return Err(WireError("neighbor counts exceed payload"));
    }
    let mut neighbor_indices = Vec::with_capacity(slots);
    for _ in 0..slots {
        neighbor_indices.push(r.u32("truncated neighbors")?);
    }
    let mut found = Vec::with_capacity(n_centers);
    for _ in 0..n_centers {
        found.push(r.u32("truncated found")?);
    }
    // Optional brown-out trailer: present iff the server degraded the
    // request.
    let (degraded, budget_served) =
        if r.remaining() > 0 { (true, r.u32("truncated budget_served")?) } else { (false, 0) };
    r.done()?;
    Ok(WireResponse {
        sampled_indices,
        neighbor_indices,
        found,
        num,
        blocks,
        cache_hit,
        batch_size,
        degraded,
        budget_served,
    })
}

/// Encodes an OK health response payload ([`OP_HEALTH`]).
pub fn encode_health_payload(h: &EngineHealth) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + 11 * 8);
    buf.push(u8::from(h.live));
    for v in [
        h.workers_alive,
        h.workers_configured,
        h.queued_by_class[0],
        h.queued_by_class[1],
        h.queued_by_class[2],
        h.last_progress_age_ms,
        h.worker_panics,
        h.workers_respawned,
        h.uptime_ms,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.push(u8::from(h.trace_enabled));
    buf.extend_from_slice(&h.trace_capacity.to_le_bytes());
    buf.extend_from_slice(&h.trace_dropped.to_le_bytes());
    buf.extend_from_slice(&h.streams_open.to_le_bytes());
    buf.push(u8::from(h.draining));
    buf.push(h.overload_level);
    buf
}

/// Decodes an OK health response payload.
///
/// # Errors
///
/// [`WireError`] when the payload is truncated or over-long.
pub fn decode_health_payload(payload: &[u8]) -> Result<EngineHealth, WireError> {
    let mut r = Reader { buf: payload, at: 0 };
    let live = r.u8("truncated live flag")? != 0;
    let workers_alive = r.u64("truncated workers_alive")?;
    let workers_configured = r.u64("truncated workers_configured")?;
    let queued_by_class = [
        r.u64("truncated queued_high")?,
        r.u64("truncated queued_normal")?,
        r.u64("truncated queued_bulk")?,
    ];
    let last_progress_age_ms = r.u64("truncated last_progress_age_ms")?;
    let worker_panics = r.u64("truncated worker_panics")?;
    let workers_respawned = r.u64("truncated workers_respawned")?;
    let uptime_ms = r.u64("truncated uptime_ms")?;
    let trace_enabled = r.u8("truncated trace_enabled")? != 0;
    let trace_capacity = r.u64("truncated trace_capacity")?;
    let trace_dropped = r.u64("truncated trace_dropped")?;
    let streams_open = r.u64("truncated streams_open")?;
    let draining = r.u8("truncated draining")? != 0;
    let overload_level = r.u8("truncated overload_level")?;
    r.done()?;
    Ok(EngineHealth {
        live,
        draining,
        overload_level,
        workers_alive,
        workers_configured,
        queued_by_class,
        last_progress_age_ms,
        worker_panics,
        workers_respawned,
        uptime_ms,
        trace_enabled,
        trace_capacity,
        trace_dropped,
        streams_open,
    })
}

/// One block's contribution to a streaming chunk: the refinement samples
/// it gains in this slice, with their neighbor rows and hit counts (the
/// wire form of [`fractalcloud_core::LodSegment`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireLodSegment {
    /// Leaf block index.
    pub block: u32,
    /// New sampled global indices (FPS order continues seamlessly).
    pub sampled: Vec<u32>,
    /// `sampled.len() × num` neighbor indices, row-major.
    pub grouped: Vec<u32>,
    /// In-radius hits per new center before padding.
    pub found: Vec<u32>,
}

/// One [`status::CHUNK`] payload: a contiguous coarse-to-fine LOD slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStreamChunk {
    /// 1-based chunk sequence number within the stream.
    pub seq: u32,
    /// Slice start depth (samples `lo..hi` of the frame's ordering).
    pub lo: u32,
    /// Slice end depth.
    pub hi: u32,
    /// Total samples in the full ordering (the maximum depth).
    pub total: u32,
    /// Leaf blocks in the partition.
    pub blocks: u32,
    /// Neighbor slots per center.
    pub num: u32,
    /// Whether the frame's ordering came from the server's LRU (true for
    /// every chunk after the first viewer computes it).
    pub cache_hit: bool,
    /// Per-block refinement deltas, block order, empty blocks omitted.
    pub segments: Vec<WireLodSegment>,
}

/// Encodes a [`status::CHUNK`] payload into a caller-provided buffer.
pub fn encode_stream_chunk_into(chunk: &WireStreamChunk, buf: &mut Vec<u8>) {
    put_u32(buf, chunk.seq);
    put_u32(buf, chunk.lo);
    put_u32(buf, chunk.hi);
    put_u32(buf, chunk.total);
    put_u32(buf, chunk.blocks);
    put_u32(buf, chunk.num);
    buf.push(u8::from(chunk.cache_hit));
    put_u32(buf, chunk.segments.len() as u32);
    for seg in &chunk.segments {
        put_u32(buf, seg.block);
        put_u32(buf, seg.sampled.len() as u32);
        for &v in &seg.sampled {
            put_u32(buf, v);
        }
        for &v in &seg.grouped {
            put_u32(buf, v);
        }
        for &v in &seg.found {
            put_u32(buf, v);
        }
    }
}

/// Encodes a [`status::CHUNK`] payload.
pub fn encode_stream_chunk_payload(chunk: &WireStreamChunk) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_stream_chunk_into(chunk, &mut buf);
    buf
}

/// Decodes a [`status::CHUNK`] payload.
///
/// # Errors
///
/// [`WireError`] when the payload is truncated, over-long, or a declared
/// segment count disagrees with the bytes present.
pub fn decode_stream_chunk_payload(payload: &[u8]) -> Result<WireStreamChunk, WireError> {
    let mut r = Reader { buf: payload, at: 0 };
    let seq = r.u32("truncated seq")?;
    let lo = r.u32("truncated lo")?;
    let hi = r.u32("truncated hi")?;
    let total = r.u32("truncated total")?;
    let blocks = r.u32("truncated blocks")?;
    let num = r.u32("truncated num")?;
    let cache_hit = r.u8("truncated cache_hit")? != 0;
    let nseg = r.u32("truncated segment count")? as usize;
    // Every declared count is validated against the bytes actually present
    // before any buffer is sized from it (hostile-peer rule).
    if nseg > r.remaining() / 8 {
        return Err(WireError("segment count exceeds payload"));
    }
    let mut segments = Vec::with_capacity(nseg);
    for _ in 0..nseg {
        let block = r.u32("truncated segment block")?;
        let count = r.u32("truncated segment length")? as usize;
        let rows = count.checked_mul(num as usize).ok_or(WireError("segment size overflow"))?;
        let cells = count
            .checked_add(rows)
            .and_then(|v| v.checked_add(count))
            .ok_or(WireError("segment size overflow"))?;
        if cells > r.remaining() / 4 {
            return Err(WireError("segment length exceeds payload"));
        }
        let mut sampled = Vec::with_capacity(count);
        for _ in 0..count {
            sampled.push(r.u32("truncated segment samples")?);
        }
        let mut grouped = Vec::with_capacity(rows);
        for _ in 0..rows {
            grouped.push(r.u32("truncated segment neighbors")?);
        }
        let mut found = Vec::with_capacity(count);
        for _ in 0..count {
            found.push(r.u32("truncated segment found")?);
        }
        segments.push(WireLodSegment { block, sampled, grouped, found });
    }
    r.done()?;
    Ok(WireStreamChunk { seq, lo, hi, total, blocks, num, cache_hit, segments })
}

/// The terminating [`status::STREAM_END`] payload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStreamEnd {
    /// Chunks delivered (first paint included).
    pub chunks: u32,
    /// Refinement depth reached (samples delivered in total).
    pub delivered: u32,
    /// Whether the client cancelled mid-stream.
    pub cancelled: bool,
}

/// Encodes a [`status::STREAM_END`] payload into a caller-provided buffer.
pub fn encode_stream_end_into(end: &WireStreamEnd, buf: &mut Vec<u8>) {
    put_u32(buf, end.chunks);
    put_u32(buf, end.delivered);
    buf.push(u8::from(end.cancelled));
}

/// Decodes a [`status::STREAM_END`] payload.
///
/// # Errors
///
/// [`WireError`] when the payload is truncated or over-long.
pub fn decode_stream_end_payload(payload: &[u8]) -> Result<WireStreamEnd, WireError> {
    let mut r = Reader { buf: payload, at: 0 };
    let chunks = r.u32("truncated chunks")?;
    let delivered = r.u32("truncated delivered")?;
    let cancelled = r.u8("truncated cancelled")? != 0;
    r.done()?;
    Ok(WireStreamEnd { chunks, delivered, cancelled })
}

/// Client-side reassembly of streaming chunks into the response a direct
/// budget request returns.
///
/// Chunks append per-block state (sampled prefixes grow, neighbor rows and
/// found counts follow); [`StreamAccumulator::response`] concatenates the
/// per-block state in block order, which is exactly the layout
/// [`encode_response_payload`] wires for a PROCESS_FRAME run — so after
/// pushing chunks `1..=n`, `response()` encodes byte-for-byte the payload a
/// direct `budget = hi_n` request would have returned (for the same warm
/// frame; `cache_hit` is taken from the first chunk and `batch_size` is 1,
/// matching an unbatched direct request).
#[derive(Debug, Clone, Default)]
pub struct StreamAccumulator {
    blocks: u32,
    num: u32,
    total: u32,
    cache_hit: bool,
    depth: u32,
    chunks: u32,
    sampled: Vec<Vec<u32>>,
    grouped: Vec<Vec<u32>>,
    found: Vec<Vec<u32>>,
}

impl StreamAccumulator {
    /// An empty accumulator; the first pushed chunk fixes the geometry.
    pub fn new() -> StreamAccumulator {
        StreamAccumulator::default()
    }

    /// Folds one chunk in.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the chunk is non-contiguous with the depth
    /// reached so far, disagrees with the stream's geometry, or references
    /// an out-of-range block.
    pub fn push(&mut self, chunk: &WireStreamChunk) -> Result<(), WireError> {
        if self.chunks == 0 {
            self.blocks = chunk.blocks;
            self.num = chunk.num;
            self.total = chunk.total;
            self.cache_hit = chunk.cache_hit;
            self.sampled = vec![Vec::new(); chunk.blocks as usize];
            self.grouped = vec![Vec::new(); chunk.blocks as usize];
            self.found = vec![Vec::new(); chunk.blocks as usize];
        } else if chunk.blocks != self.blocks || chunk.num != self.num || chunk.total != self.total
        {
            return Err(WireError("chunk geometry changed mid-stream"));
        }
        if chunk.lo != self.depth {
            return Err(WireError("non-contiguous chunk"));
        }
        let mut delivered = 0usize;
        for seg in &chunk.segments {
            let b = seg.block as usize;
            if b >= self.sampled.len() {
                return Err(WireError("segment block out of range"));
            }
            if seg.grouped.len() != seg.sampled.len() * self.num as usize
                || seg.found.len() != seg.sampled.len()
            {
                return Err(WireError("segment row shape mismatch"));
            }
            self.sampled[b].extend_from_slice(&seg.sampled);
            self.grouped[b].extend_from_slice(&seg.grouped);
            self.found[b].extend_from_slice(&seg.found);
            delivered += seg.sampled.len();
        }
        if delivered != (chunk.hi - chunk.lo) as usize {
            return Err(WireError("chunk sample count mismatch"));
        }
        self.depth = chunk.hi;
        self.chunks += 1;
        Ok(())
    }

    /// Refinement depth reached (samples accumulated).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Total samples the stream could refine to.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Chunks folded in so far.
    pub fn chunks(&self) -> u32 {
        self.chunks
    }

    /// The accumulated state as the [`WireResponse`] a direct
    /// `budget = depth()` request returns (block-order concatenation,
    /// `batch_size` 1).
    pub fn response(&self) -> WireResponse {
        let mut sampled_indices = Vec::new();
        let mut neighbor_indices = Vec::new();
        let mut found = Vec::new();
        for b in 0..self.sampled.len() {
            sampled_indices.extend_from_slice(&self.sampled[b]);
            neighbor_indices.extend_from_slice(&self.grouped[b]);
            found.extend_from_slice(&self.found[b]);
        }
        WireResponse {
            sampled_indices,
            neighbor_indices,
            found,
            num: self.num,
            blocks: self.blocks,
            cache_hit: self.cache_hit,
            batch_size: 1,
            degraded: false,
            budget_served: 0,
        }
    }
}

/// Encodes a complete message: header plus payload.
pub fn encode_message(kind_byte: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(9 + payload.len());
    encode_message_into(kind_byte, payload, &mut buf);
    buf
}

/// [`encode_message`] appending into a caller-provided buffer (the wire
/// path's per-connection scratch form).
pub fn encode_message_into(kind_byte: u8, payload: &[u8], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(kind_byte);
    put_u32(buf, payload.len() as u32);
    buf.extend_from_slice(payload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_pointcloud::generate::uniform_cube;

    #[test]
    fn request_round_trips() {
        let cloud = uniform_cube(100, 1);
        let cfg = PipelineConfig::new(64, 0.5, 0.3, 8);
        let payload = encode_request_payload(&cloud, &cfg);
        assert_eq!(payload.len(), REQUEST_FIXED_BYTES + 1200);
        let (cloud2, cfg2, deadline_ms, budget) = decode_request_payload(&payload).unwrap();
        assert_eq!(cloud, cloud2);
        assert_eq!(cfg, cfg2);
        assert_eq!(deadline_ms, 0);
        assert_eq!(budget, 0);
    }

    #[test]
    fn deadline_rides_as_an_optional_trailer() {
        let cloud = uniform_cube(16, 2);
        let cfg = PipelineConfig::default();
        // Zero deadline encodes byte-identically to the legacy payload …
        assert_eq!(
            encode_request_payload_deadline(&cloud, &cfg, 0),
            encode_request_payload(&cloud, &cfg)
        );
        // … while a non-zero one appends exactly 4 bytes and round-trips.
        let with = encode_request_payload_deadline(&cloud, &cfg, 250);
        assert_eq!(with.len(), encode_request_payload(&cloud, &cfg).len() + 4);
        let (cloud2, cfg2, deadline_ms, budget) = decode_request_payload(&with).unwrap();
        assert_eq!(cloud, cloud2);
        assert_eq!(cfg, cfg2);
        assert_eq!(deadline_ms, 250);
        assert_eq!(budget, 0);
        // A budget rides as a second trailer field (and forces the
        // deadline field so positions stay unambiguous).
        let budgeted = encode_request_payload_budget(&cloud, &cfg, 0, 77);
        assert_eq!(budgeted.len(), encode_request_payload(&cloud, &cfg).len() + 8);
        let (_, _, deadline_ms, budget) = decode_request_payload(&budgeted).unwrap();
        assert_eq!(deadline_ms, 0);
        assert_eq!(budget, 77);
    }

    #[test]
    fn health_round_trips() {
        let h = EngineHealth {
            live: true,
            draining: true,
            overload_level: 2,
            workers_alive: 3,
            workers_configured: 4,
            queued_by_class: [1, 2, 3],
            last_progress_age_ms: 1234,
            worker_panics: 7,
            workers_respawned: 6,
            uptime_ms: 98_765,
            trace_enabled: true,
            trace_capacity: 16_384,
            trace_dropped: 42,
            streams_open: 2,
        };
        let payload = encode_health_payload(&h);
        assert_eq!(payload.len(), 2 + 12 * 8 + 2);
        assert_eq!(decode_health_payload(&payload).unwrap(), h);
        assert!(decode_health_payload(&payload[..payload.len() - 1]).is_err());
        let mut long = payload;
        long.push(0);
        assert_eq!(decode_health_payload(&long), Err(WireError("trailing bytes")));
    }

    #[test]
    fn response_round_trips() {
        let resp = WireResponse {
            sampled_indices: vec![5, 9, 200],
            neighbor_indices: vec![1, 2, 3, 4, 5, 6],
            found: vec![2, 1, 2],
            num: 2,
            blocks: 7,
            cache_hit: true,
            batch_size: 3,
            degraded: false,
            budget_served: 0,
        };
        let payload = encode_response_payload(&resp);
        assert_eq!(decode_response_payload(&payload).unwrap(), resp);
    }

    #[test]
    fn degraded_marker_rides_as_an_optional_trailer() {
        let full = WireResponse {
            sampled_indices: vec![5, 9, 200],
            neighbor_indices: vec![1, 2, 3, 4, 5, 6],
            found: vec![2, 1, 2],
            num: 2,
            blocks: 7,
            cache_hit: false,
            batch_size: 1,
            degraded: false,
            budget_served: 0,
        };
        let degraded = WireResponse { degraded: true, budget_served: 3, ..full.clone() };
        // A degraded response appends exactly 4 bytes and round-trips …
        let with = encode_response_payload(&degraded);
        assert_eq!(with.len(), encode_response_payload(&full).len() + 4);
        assert_eq!(decode_response_payload(&with).unwrap(), degraded);
        // … while a non-degraded one is byte-identical to a pre-brown-out
        // server's encoding (presence of the trailer *is* the flag).
        assert_eq!(decode_response_payload(&encode_response_payload(&full)).unwrap(), full);
        // A partial trailer is malformed, not silently ignored.
        assert!(decode_response_payload(&with[..with.len() - 1]).is_err());
    }

    #[test]
    fn truncated_and_overlong_payloads_are_malformed() {
        let cloud = uniform_cube(10, 2);
        let payload = encode_request_payload(&cloud, &PipelineConfig::default());
        assert!(decode_request_payload(&payload[..payload.len() - 1]).is_err());
        // A partial trailer (1–3 extra bytes) is truncated, not a deadline;
        // 5 extra bytes leave a partial budget after the deadline; 9 leave
        // a trailing byte after both fields.
        let mut long = payload.clone();
        long.push(0);
        assert_eq!(decode_request_payload(&long), Err(WireError("truncated deadline")));
        let mut way_long = payload.clone();
        way_long.extend_from_slice(&[1, 0, 0, 0, 9]);
        assert_eq!(decode_request_payload(&way_long), Err(WireError("truncated budget")));
        let mut over_long = payload.clone();
        over_long.extend_from_slice(&[1, 0, 0, 0, 9, 0, 0, 0, 5]);
        assert_eq!(decode_request_payload(&over_long), Err(WireError("trailing bytes")));
        assert!(decode_request_payload(&[]).is_err());
    }

    #[test]
    fn declared_point_count_must_match_bytes() {
        let cloud = uniform_cube(4, 3);
        let mut payload = encode_request_payload(&cloud, &PipelineConfig::default());
        // Claim 5 points while carrying 4.
        let at = REQUEST_FIXED_BYTES - 4;
        payload[at..at + 4].copy_from_slice(&5u32.to_le_bytes());
        assert!(decode_request_payload(&payload).is_err());
    }

    #[test]
    fn huge_declared_counts_are_rejected_before_allocation() {
        // A tiny payload claiming u32::MAX samples must error, not try to
        // reserve gigabytes.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u32.to_le_bytes()); // blocks
        payload.push(0); // cache_hit
        payload.extend_from_slice(&1u32.to_le_bytes()); // batch_size
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // n_sampled
        assert_eq!(
            decode_response_payload(&payload),
            Err(WireError("sample count exceeds payload"))
        );

        // Same for the neighbor matrix: n_centers * num overflowing or
        // exceeding the remaining bytes.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u32.to_le_bytes());
        payload.push(0);
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes()); // n_sampled = 0
        payload.extend_from_slice(&1000u32.to_le_bytes()); // n_centers
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // num
        assert!(decode_response_payload(&payload).is_err());
    }

    #[test]
    fn priority_rides_the_kind_byte_high_nibble() {
        // A Normal request is byte-identical to a pre-priority client's.
        assert_eq!(request_kind(Priority::Normal), OP_PROCESS_FRAME);
        for p in Priority::ALL {
            let kind = request_kind(p);
            let (opcode, nibble) = split_kind(kind);
            assert_eq!(opcode, OP_PROCESS_FRAME);
            assert_eq!(Priority::from_wire(nibble), Some(p));
        }
        // Old clients (high nibble 0) decode as the Normal default;
        // unknown nibbles are rejected rather than guessed.
        assert_eq!(Priority::from_wire(split_kind(OP_PROCESS_FRAME).1), Some(Priority::Normal));
        assert_eq!(Priority::from_wire(0xF), None);
    }

    #[test]
    fn infer_request_round_trips() {
        let cloud = uniform_cube(50, 4);
        let req = WireInferRequest {
            threshold: 64,
            seed: 0xDEAD_BEEF,
            aggregation: AGG_DELAYED,
            notation: "PN++ (c)".to_owned(),
        };
        let payload = encode_infer_request_payload(&cloud, &req, 0);
        let (cloud2, req2, deadline_ms) = decode_infer_request_payload(&payload).unwrap();
        assert_eq!(cloud, cloud2);
        assert_eq!(req, req2);
        assert_eq!(deadline_ms, 0);
        // Deadline rides the same optional trailer as process-frame.
        let with = encode_infer_request_payload(&cloud, &req, 750);
        assert_eq!(with.len(), payload.len() + 4);
        assert_eq!(decode_infer_request_payload(&with).unwrap().2, 750);
        // Truncation anywhere is malformed, not a panic.
        for cut in 0..payload.len() {
            assert!(decode_infer_request_payload(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn infer_request_rejects_hostile_fields() {
        let cloud = uniform_cube(4, 1);
        let req = WireInferRequest {
            threshold: 32,
            seed: 1,
            aggregation: AGG_SERVER_DEFAULT,
            notation: "PN++ (s)".to_owned(),
        };
        let mut payload = encode_infer_request_payload(&cloud, &req, 0);
        // Unknown aggregation byte.
        payload[12] = 9;
        assert_eq!(
            decode_infer_request_payload(&payload),
            Err(WireError("unknown aggregation byte"))
        );
        payload[12] = AGG_EAGER;
        // Notation length claiming more bytes than the payload holds must
        // fail before any allocation.
        payload[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_infer_request_payload(&payload),
            Err(WireError("notation length exceeds payload"))
        );
    }

    #[test]
    fn infer_response_round_trips_bit_exact() {
        // Logit values that only survive a round-trip if the codec is
        // bit-exact: NaN, -0.0, subnormals.
        let resp = WireInferResponse {
            classes: 3,
            cache_hit: true,
            batch_size: 2,
            aggregation: AGG_DELAYED,
            macs_moved: 123_456,
            macs_saved: 987_654,
            gather_bytes: 55_555,
            row_index: vec![7, 0, 31],
            logits: vec![f32::NAN, -0.0, 1.5e-42, -3.25, 0.0, f32::INFINITY, 1.0, 2.0, 3.0],
        };
        let payload = encode_infer_response_payload(&resp);
        let back = decode_infer_response_payload(&payload).unwrap();
        assert_eq!(back.row_index, resp.row_index);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.logits), bits(&resp.logits));
        assert_eq!(back.classes, 3);
        assert_eq!(back.aggregation, AGG_DELAYED);
        assert_eq!(
            (back.macs_moved, back.macs_saved, back.gather_bytes),
            (123_456, 987_654, 55_555)
        );
        for cut in 0..payload.len() {
            assert!(decode_infer_response_payload(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn infer_response_rejects_hostile_counts() {
        // A tiny payload declaring u32::MAX rows must error before any
        // buffer is sized from it.
        let mut payload = Vec::new();
        payload.extend_from_slice(&40u32.to_le_bytes()); // classes
        payload.push(0); // cache_hit
        payload.extend_from_slice(&1u32.to_le_bytes()); // batch_size
        payload.push(AGG_EAGER);
        payload.extend_from_slice(&[0u8; 24]); // three u64 counters
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // rows
        assert!(decode_infer_response_payload(&payload).is_err());
        // A resolved response never carries the server-default byte.
        let mut bad_agg = payload.clone();
        let at = 4 + 1 + 4;
        bad_agg[at] = AGG_SERVER_DEFAULT;
        assert_eq!(
            decode_infer_response_payload(&bad_agg),
            Err(WireError("unknown aggregation byte"))
        );
    }

    #[test]
    fn infer_kind_byte_carries_priority() {
        assert_eq!(infer_request_kind(Priority::Normal), OP_INFER);
        for p in Priority::ALL {
            let (opcode, nibble) = split_kind(infer_request_kind(p));
            assert_eq!(opcode, OP_INFER);
            assert_eq!(Priority::from_wire(nibble), Some(p));
        }
    }

    #[test]
    fn stream_request_round_trips() {
        let cloud = uniform_cube(30, 5);
        let cfg = PipelineConfig::new(64, 0.5, 0.3, 8);
        let open = WireStreamOpen { first_paint: 64, chunk: 128, credits: 2 };
        let payload = encode_stream_request_payload(&cloud, &cfg, 500, &open);
        let (cloud2, cfg2, deadline_ms, open2) = decode_stream_request_payload(&payload).unwrap();
        assert_eq!(cloud, cloud2);
        assert_eq!(cfg, cfg2);
        assert_eq!(deadline_ms, 500);
        assert_eq!(open, open2);
        // The trailer is mandatory: truncation anywhere is malformed.
        for cut in 0..payload.len() {
            assert!(decode_stream_request_payload(&payload[..cut]).is_err());
        }
        // Kind byte carries the priority like every other opcode.
        for p in Priority::ALL {
            let (opcode, nibble) = split_kind(stream_request_kind(p));
            assert_eq!(opcode, OP_STREAM);
            assert_eq!(Priority::from_wire(nibble), Some(p));
        }
    }

    #[test]
    fn stream_chunk_round_trips() {
        let chunk = WireStreamChunk {
            seq: 2,
            lo: 3,
            hi: 6,
            total: 12,
            blocks: 4,
            num: 2,
            cache_hit: true,
            segments: vec![
                WireLodSegment {
                    block: 0,
                    sampled: vec![10, 11],
                    grouped: vec![1, 2, 3, 4],
                    found: vec![2, 1],
                },
                WireLodSegment { block: 3, sampled: vec![40], grouped: vec![9, 9], found: vec![0] },
            ],
        };
        let payload = encode_stream_chunk_payload(&chunk);
        assert_eq!(decode_stream_chunk_payload(&payload).unwrap(), chunk);
        for cut in 0..payload.len() {
            assert!(decode_stream_chunk_payload(&payload[..cut]).is_err());
        }
        let end = WireStreamEnd { chunks: 3, delivered: 6, cancelled: true };
        let mut buf = Vec::new();
        encode_stream_end_into(&end, &mut buf);
        assert_eq!(decode_stream_end_payload(&buf).unwrap(), end);
        assert!(decode_stream_end_payload(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn stream_chunk_rejects_hostile_counts() {
        // Declared segment counts far beyond the payload must fail before
        // any allocation is sized from them.
        let mut payload = Vec::new();
        for v in [1u32, 0, 4, 8, 2, 2] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        payload.push(0); // cache_hit
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // n_segments
        assert_eq!(
            decode_stream_chunk_payload(&payload),
            Err(WireError("segment count exceeds payload"))
        );
    }

    #[test]
    fn accumulated_chunks_equal_a_direct_budget_response() {
        // Two contiguous chunks over 3 blocks reassemble into the
        // block-order concatenation a direct budget request wires.
        let c1 = WireStreamChunk {
            seq: 1,
            lo: 0,
            hi: 3,
            total: 5,
            blocks: 3,
            num: 2,
            cache_hit: true,
            segments: vec![
                WireLodSegment {
                    block: 0,
                    sampled: vec![5, 6],
                    grouped: vec![1, 2, 3, 4],
                    found: vec![2, 2],
                },
                WireLodSegment { block: 2, sampled: vec![30], grouped: vec![7, 8], found: vec![1] },
            ],
        };
        let c2 = WireStreamChunk {
            seq: 2,
            lo: 3,
            hi: 5,
            total: 5,
            blocks: 3,
            num: 2,
            cache_hit: true,
            segments: vec![
                WireLodSegment { block: 0, sampled: vec![7], grouped: vec![5, 6], found: vec![0] },
                WireLodSegment { block: 1, sampled: vec![20], grouped: vec![9, 9], found: vec![1] },
            ],
        };
        let mut acc = StreamAccumulator::new();
        acc.push(&c1).unwrap();
        // A gap is rejected, then the contiguous chunk lands.
        let mut gap = c2.clone();
        gap.lo = 4;
        assert_eq!(acc.push(&gap), Err(WireError("non-contiguous chunk")));
        acc.push(&c2).unwrap();
        assert_eq!(acc.depth(), 5);
        assert_eq!(acc.chunks(), 2);
        let resp = acc.response();
        assert_eq!(resp.sampled_indices, vec![5, 6, 7, 20, 30]);
        assert_eq!(resp.neighbor_indices, vec![1, 2, 3, 4, 5, 6, 9, 9, 7, 8]);
        assert_eq!(resp.found, vec![2, 2, 0, 1, 1]);
        assert_eq!((resp.blocks, resp.num, resp.batch_size), (3, 2, 1));
        assert!(resp.cache_hit);
    }

    #[test]
    fn message_header_layout() {
        let msg = encode_message(OP_PROCESS_FRAME, &[0xAB, 0xCD]);
        assert_eq!(&msg[0..4], b"FCS1");
        assert_eq!(msg[4], OP_PROCESS_FRAME);
        assert_eq!(u32::from_le_bytes(msg[5..9].try_into().unwrap()), 2);
        assert_eq!(&msg[9..], &[0xAB, 0xCD]);
    }
}

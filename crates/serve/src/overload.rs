//! Adaptive overload control: hysteresis-guarded brown-out levels.
//!
//! The paper's core observation — greedy FPS makes the first `k` samples a
//! near-optimal `k`-point answer — gives the engine a knob between "serve
//! everything at full quality" and "shed": under pressure it can serve
//! *less depth* instead of *fewer requests*. The [`OverloadController`]
//! watches queue-wait observations from the workers and moves through
//! levels `Normal → BrownOut(1..=3) → Shed`:
//!
//! * **Normal** (level 0) — every request runs at its requested budget.
//! * **BrownOut(n)** (levels 1–3) — admitted `Normal`/`Bulk` frames run
//!   through `Pipeline::run_with_partition_budget` at `1/2ⁿ` of their
//!   requested depth (bit-identical to the same-length prefix of the full
//!   run, by the PR 9 ordering contract). `High` priority is never
//!   degraded, and responses carry a `degraded: budget_served` marker.
//! * **Shed** (level 4) — degradation wasn't enough: new `Normal`/`Bulk`
//!   admissions shed retryably ([`QueueFull`](crate::ShedReason)) before
//!   touching the queue; `High` still admits (and still runs full-depth).
//!
//! Transitions are hysteresis-guarded three ways so the level cannot flap
//! across a threshold: escalation and relaxation use *different* wait
//! thresholds (`escalate_wait_us` > `relax_wait_us`), each needs a run of
//! *consecutive* over/under observations (`escalate_after` /
//! `relax_after`), and every change is rate-limited by a dwell time
//! (`dwell_ms`). Relaxation additionally happens on *idle decay*: a level
//! held with no observations at all (traffic stopped entirely) steps down
//! one level per dwell period whenever anything reads the level — so the
//! controller provably returns to `Normal` after load subsides, with or
//! without residual traffic.
//!
//! The not-overloaded hot path costs exactly one relaxed atomic load
//! ([`OverloadController::level_u8`] in `Engine::admit`); all bookkeeping
//! runs on the worker side, once per batch.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// Highest brown-out level before shedding kicks in.
pub(crate) const MAX_BROWNOUT: u8 = 3;
/// The shed level (one past the deepest brown-out).
pub(crate) const SHED_LEVEL: u8 = MAX_BROWNOUT + 1;

/// Where the engine sits on the graceful-degradation ladder. Obtained from
/// [`Engine::overload_level`](crate::Engine::overload_level) or the
/// `overload_level` field of [`EngineHealth`](crate::EngineHealth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadLevel {
    /// No degradation: every request runs at its requested budget.
    Normal,
    /// Brown-out level `n` (1–3): `Normal`/`Bulk` frames run at `1/2ⁿ` of
    /// their requested sample budget; `High` is untouched.
    BrownOut(u8),
    /// Beyond brown-out: new `Normal`/`Bulk` admissions shed retryably.
    Shed,
}

impl OverloadLevel {
    /// The wire/metrics byte: 0 = Normal, 1–3 = BrownOut(n), 4 = Shed.
    pub fn as_u8(self) -> u8 {
        match self {
            OverloadLevel::Normal => 0,
            OverloadLevel::BrownOut(n) => n.clamp(1, MAX_BROWNOUT),
            OverloadLevel::Shed => SHED_LEVEL,
        }
    }

    /// Decodes the wire/metrics byte (values past the ladder clamp to
    /// [`OverloadLevel::Shed`]).
    pub fn from_u8(v: u8) -> OverloadLevel {
        match v {
            0 => OverloadLevel::Normal,
            n if n <= MAX_BROWNOUT => OverloadLevel::BrownOut(n),
            _ => OverloadLevel::Shed,
        }
    }
}

impl std::fmt::Display for OverloadLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverloadLevel::Normal => write!(f, "normal"),
            OverloadLevel::BrownOut(n) => write!(f, "brownout-{n}"),
            OverloadLevel::Shed => write!(f, "shed"),
        }
    }
}

/// Tunables of the [`OverloadController`], carried in
/// [`ServeConfig::brownout`](crate::ServeConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// Master switch: disabled pins the level at `Normal` forever (and the
    /// admission-path load still costs one relaxed atomic read).
    pub enabled: bool,
    /// Pin the controller at this level (0–4) regardless of observations —
    /// the test/chaos hook behind `FRACTALCLOUD_SERVE_BROWNOUT=force:N`.
    /// `None` = adaptive.
    pub forced: Option<u8>,
    /// Queue-wait observation (µs) above which pressure is "over": a run
    /// of `escalate_after` consecutive over-observations escalates one
    /// level (dwell permitting).
    pub escalate_wait_us: u64,
    /// Queue-wait observation (µs) below which pressure is "under": a run
    /// of `relax_after` consecutive under-observations relaxes one level
    /// (dwell permitting). Must sit *below* `escalate_wait_us` — the gap
    /// is the hysteresis band where the level holds.
    pub relax_wait_us: u64,
    /// Consecutive over-threshold observations required to escalate.
    pub escalate_after: u32,
    /// Consecutive under-threshold observations required to relax.
    pub relax_after: u32,
    /// Minimum milliseconds between level changes (both directions), and
    /// the idle-decay period: a level with no observations at all steps
    /// down once per dwell.
    pub dwell_ms: u64,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            enabled: true,
            forced: None,
            // Defaults are deliberately conservative: a request sitting
            // 250 ms in queue is far outside any healthy steady state, so
            // ordinary test and benchmark traffic never browns out.
            escalate_wait_us: 250_000,
            relax_wait_us: 50_000,
            escalate_after: 4,
            relax_after: 8,
            dwell_ms: 250,
        }
    }
}

impl BrownoutConfig {
    /// Parses the `FRACTALCLOUD_SERVE_BROWNOUT` grammar:
    /// `off` | `0` disables, `on` | `1` | `adaptive` enables the defaults,
    /// `force:N` pins level `N` (0–4), and
    /// `adaptive:escalate_us,relax_us,dwell_ms` tunes the thresholds.
    /// Anything unparseable falls back to `def`.
    pub fn parse(spec: &str, def: BrownoutConfig) -> BrownoutConfig {
        let spec = spec.trim();
        match spec {
            "off" | "0" => return BrownoutConfig { enabled: false, ..def },
            "on" | "1" | "adaptive" => {
                return BrownoutConfig { enabled: true, forced: None, ..def }
            }
            _ => {}
        }
        if let Some(level) = spec.strip_prefix("force:") {
            if let Ok(level) = level.trim().parse::<u8>() {
                return BrownoutConfig {
                    enabled: true,
                    forced: Some(level.min(SHED_LEVEL)),
                    ..def
                };
            }
        }
        if let Some(rest) = spec.strip_prefix("adaptive:") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if let [esc, rel, dwell] = parts[..] {
                if let (Ok(esc), Ok(rel), Ok(dwell)) =
                    (esc.parse::<u64>(), rel.parse::<u64>(), dwell.parse::<u64>())
                {
                    return BrownoutConfig {
                        enabled: true,
                        forced: None,
                        escalate_wait_us: esc.max(1),
                        relax_wait_us: rel.min(esc.saturating_sub(1)),
                        dwell_ms: dwell,
                        ..def
                    };
                }
            }
        }
        def
    }
}

/// The engine-side controller. All state is atomic: observations arrive
/// from many workers, level reads from every admission, and neither side
/// ever takes a lock for it.
pub(crate) struct OverloadController {
    cfg: BrownoutConfig,
    /// Current level byte (0–4). The one word the admission path reads.
    level: AtomicU8,
    /// Consecutive over-threshold observations.
    over: AtomicU32,
    /// Consecutive under-threshold observations.
    under: AtomicU32,
    /// Milliseconds (since `epoch`) of the last level change.
    changed_ms: AtomicU64,
    /// Milliseconds (since `epoch`) of the last observation.
    observed_ms: AtomicU64,
    epoch: Instant,
}

impl OverloadController {
    pub(crate) fn new(cfg: BrownoutConfig, epoch: Instant) -> OverloadController {
        OverloadController {
            level: AtomicU8::new(cfg.forced.map_or(0, |f| f.min(SHED_LEVEL))),
            cfg,
            over: AtomicU32::new(0),
            under: AtomicU32::new(0),
            changed_ms: AtomicU64::new(0),
            observed_ms: AtomicU64::new(0),
            epoch,
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// The admission-path read: one relaxed load, nothing else.
    #[inline]
    pub(crate) fn level_u8(&self) -> u8 {
        self.level.load(Ordering::Relaxed)
    }

    /// The level as the public enum, after applying idle decay (a level
    /// held with zero traffic steps down one notch per dwell period) —
    /// the form health probes and metrics renderers read.
    pub(crate) fn level(&self) -> OverloadLevel {
        self.decay_idle();
        OverloadLevel::from_u8(self.level_u8())
    }

    /// One queue-wait observation (µs a job sat admitted before its batch
    /// started). Called by workers once per batch with the batch's worst
    /// wait; applies the hysteresis rules.
    pub(crate) fn observe_wait_us(&self, wait_us: u64) {
        if !self.cfg.enabled || self.cfg.forced.is_some() {
            return;
        }
        let now = self.now_ms();
        self.observed_ms.store(now, Ordering::Relaxed);
        if wait_us >= self.cfg.escalate_wait_us {
            self.under.store(0, Ordering::Relaxed);
            let run = self.over.fetch_add(1, Ordering::Relaxed) + 1;
            if run >= self.cfg.escalate_after {
                self.try_step(now, 1);
            }
        } else if wait_us <= self.cfg.relax_wait_us {
            self.over.store(0, Ordering::Relaxed);
            let run = self.under.fetch_add(1, Ordering::Relaxed) + 1;
            if run >= self.cfg.relax_after {
                self.try_step(now, -1);
            }
        } else {
            // Inside the hysteresis band: both runs reset, the level holds.
            self.over.store(0, Ordering::Relaxed);
            self.under.store(0, Ordering::Relaxed);
        }
    }

    /// A deadline shed observed at the execution seam counts as maximal
    /// pressure: jobs are dying in the queue, which is exactly what
    /// brown-out exists to prevent.
    pub(crate) fn observe_deadline_shed(&self) {
        self.observe_wait_us(u64::MAX);
    }

    /// Steps the level by `dir` (±1) if the dwell has elapsed; resets the
    /// run counters either way, so the next run starts fresh.
    fn try_step(&self, now: u64, dir: i8) {
        let level = self.level.load(Ordering::Relaxed);
        let target =
            if dir > 0 { level.saturating_add(1).min(SHED_LEVEL) } else { level.saturating_sub(1) };
        if target == level {
            return;
        }
        let changed = self.changed_ms.load(Ordering::Relaxed);
        if now.saturating_sub(changed) < self.cfg.dwell_ms && changed != 0 {
            return;
        }
        if self.level.compare_exchange(level, target, Ordering::Relaxed, Ordering::Relaxed).is_ok()
        {
            self.changed_ms.store(now.max(1), Ordering::Relaxed);
            self.over.store(0, Ordering::Relaxed);
            self.under.store(0, Ordering::Relaxed);
        }
    }

    /// Idle decay: with no observations for a full dwell period (traffic
    /// stopped entirely — workers see no batches, so nothing calls
    /// `observe_wait_us`), the level steps down one notch per dwell.
    /// Driven from level reads (health probes, metrics renders), which is
    /// where recovery matters: an orchestrator polling HEALTH sees the
    /// ladder walk back to `Normal` even in total silence.
    fn decay_idle(&self) {
        if !self.cfg.enabled || self.cfg.forced.is_some() {
            return;
        }
        if self.level.load(Ordering::Relaxed) == 0 {
            return;
        }
        let now = self.now_ms();
        let quiet_since =
            self.observed_ms.load(Ordering::Relaxed).max(self.changed_ms.load(Ordering::Relaxed));
        if now.saturating_sub(quiet_since) >= self.cfg.dwell_ms.max(1) {
            self.observed_ms.store(now, Ordering::Relaxed);
            self.try_step(now, -1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> BrownoutConfig {
        BrownoutConfig {
            enabled: true,
            forced: None,
            escalate_wait_us: 1000,
            relax_wait_us: 100,
            escalate_after: 3,
            relax_after: 3,
            dwell_ms: 0,
        }
    }

    #[test]
    fn escalates_only_after_consecutive_over_observations() {
        let c = OverloadController::new(quick_cfg(), Instant::now());
        c.observe_wait_us(5000);
        c.observe_wait_us(5000);
        assert_eq!(c.level(), OverloadLevel::Normal, "two of three is not a run");
        // An under-observation resets the run.
        c.observe_wait_us(10);
        c.observe_wait_us(5000);
        c.observe_wait_us(5000);
        assert_eq!(c.level(), OverloadLevel::Normal);
        c.observe_wait_us(5000);
        assert_eq!(c.level(), OverloadLevel::BrownOut(1));
    }

    #[test]
    fn climbs_to_shed_and_walks_back_to_normal() {
        let c = OverloadController::new(quick_cfg(), Instant::now());
        for _ in 0..12 {
            c.observe_wait_us(5000);
        }
        assert_eq!(c.level(), OverloadLevel::Shed, "sustained pressure tops the ladder");
        for _ in 0..12 {
            c.observe_wait_us(10);
        }
        assert_eq!(c.level(), OverloadLevel::Normal, "sustained calm walks it back down");
    }

    #[test]
    fn hysteresis_band_holds_the_level_without_flapping() {
        let c = OverloadController::new(quick_cfg(), Instant::now());
        for _ in 0..3 {
            c.observe_wait_us(5000);
        }
        assert_eq!(c.level(), OverloadLevel::BrownOut(1));
        // Observations between relax (100) and escalate (1000) thresholds:
        // the level must hold exactly, however many arrive.
        for _ in 0..100 {
            c.observe_wait_us(500);
        }
        assert_eq!(c.level(), OverloadLevel::BrownOut(1), "the band is where the level rests");
        // And alternating straddles never accumulate a run either way.
        for i in 0..100 {
            c.observe_wait_us(if i % 2 == 0 { 5000 } else { 10 });
        }
        assert_eq!(c.level(), OverloadLevel::BrownOut(1), "alternation must not flap the level");
    }

    #[test]
    fn forced_level_ignores_observations() {
        let cfg = BrownoutConfig { forced: Some(2), ..quick_cfg() };
        let c = OverloadController::new(cfg, Instant::now());
        for _ in 0..20 {
            c.observe_wait_us(10);
        }
        assert_eq!(c.level(), OverloadLevel::BrownOut(2));
    }

    #[test]
    fn disabled_controller_stays_normal() {
        let cfg = BrownoutConfig { enabled: false, ..quick_cfg() };
        let c = OverloadController::new(cfg, Instant::now());
        for _ in 0..20 {
            c.observe_wait_us(u64::MAX);
        }
        assert_eq!(c.level(), OverloadLevel::Normal);
    }

    #[test]
    fn idle_decay_recovers_without_traffic() {
        let cfg = BrownoutConfig { dwell_ms: 1, ..quick_cfg() };
        let c = OverloadController::new(cfg, Instant::now());
        for _ in 0..3 {
            c.observe_wait_us(5000);
        }
        assert!(matches!(c.level(), OverloadLevel::BrownOut(_)));
        // No further observations at all: polling the level must walk it
        // back down, one dwell period per step.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while c.level() != OverloadLevel::Normal && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(c.level(), OverloadLevel::Normal, "idle decay must reach Normal");
    }

    #[test]
    fn level_byte_round_trips() {
        for v in 0..=4u8 {
            assert_eq!(OverloadLevel::from_u8(v).as_u8(), v);
        }
        assert_eq!(OverloadLevel::from_u8(200), OverloadLevel::Shed);
    }

    #[test]
    fn parse_grammar() {
        let def = BrownoutConfig::default();
        assert!(!BrownoutConfig::parse("off", def).enabled);
        assert!(!BrownoutConfig::parse("0", def).enabled);
        assert!(BrownoutConfig::parse("on", def).enabled);
        assert_eq!(BrownoutConfig::parse("force:2", def).forced, Some(2));
        assert_eq!(BrownoutConfig::parse("force:99", def).forced, Some(SHED_LEVEL));
        let tuned = BrownoutConfig::parse("adaptive:2000,300,50", def);
        assert_eq!(tuned.escalate_wait_us, 2000);
        assert_eq!(tuned.relax_wait_us, 300);
        assert_eq!(tuned.dwell_ms, 50);
        assert_eq!(BrownoutConfig::parse("gibberish", def), def);
    }
}

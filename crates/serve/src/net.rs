//! The `std::net` TCP front-end and its matching client.
//!
//! Thread-per-connection over blocking sockets: the accept loop runs on one
//! thread (non-blocking listener polled at a few hundred Hz so shutdown
//! needs no self-connection tricks), each connection gets a handler thread,
//! and every request inside a connection is processed synchronously through
//! the shared [`Engine`]. Backpressure therefore composes: a flood of
//! connections lands in the same bounded admission queue as in-process
//! callers and sheds with the same counted reasons.
//!
//! Three connection-level protections bound what one client can do to the
//! rest: a **concurrent-connection limit** (`ServeConfig::max_connections`
//! — excess connects are answered `TOO_MANY_CONNECTIONS` and closed, so a
//! connection flood cannot exhaust handler threads), **round-robin
//! admission** across connections (a FIFO turnstile around engine
//! submission: when several connections have a request ready, queue slots
//! are granted in the order the requests became ready, so a greedy client
//! hammering one connection cannot barge ahead of patiently waiting ones),
//! and **per-connection socket timeouts** (`ServeConfig::idle_timeout_ms`
//! bounds every read and write, so a peer that stops feeding or draining
//! the socket is reaped instead of pinning a handler thread forever).
//!
//! During a zero-downtime drain ([`Engine::drain`]) every work opcode
//! (PROCESS_FRAME / INFER / STREAM) is answered [`status::GOAWAY`] — the
//! client reconnects elsewhere or retries after the maintenance window —
//! while HEALTH and METRICS stay answered inline so probes keep working.
//! [`ServeClient`] heals itself through all of this via [`RetryPolicy`]:
//! seeded-deterministic exponential backoff with decorrelated jitter,
//! reconnect-and-replay on GOAWAY or a dead transport, and never a retry
//! past the request's own deadline.

use crate::engine::{
    aggregation_wire, Engine, EngineHealth, FrameResponse, InferRequest, InferResponse, Priority,
    ServeError, ShedReason,
};
use crate::faults::{self, FaultLayer, FaultPoint};
use crate::protocol::{
    self, status, WireError, WireInferRequest, WireInferResponse, WireLodSegment, WireResponse,
    WireStreamChunk, WireStreamEnd, WireStreamOpen, AGG_DELAYED, AGG_EAGER, MAGIC, OP_HEALTH,
    OP_INFER, OP_METRICS, OP_PROCESS_FRAME, OP_STREAM, OP_STREAM_CANCEL, OP_STREAM_CREDIT,
    OP_TRACE_DUMP,
};
use fractalcloud_core::PipelineConfig;
use fractalcloud_obs as obs;
use fractalcloud_pnn::{Aggregation, ModelConfig};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop polls the non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Most concurrent courtesy-refusal threads (see [`refuse_connection`]);
/// beyond this a refused connection is hard-closed without a status byte,
/// so a refusal flood cannot itself exhaust threads.
const MAX_REFUSAL_THREADS: usize = 32;

/// Longest a refusal thread lingers draining a refused connection.
const REFUSAL_LINGER: Duration = Duration::from_millis(500);

/// FIFO turnstile granting engine-submission turns in ready order across
/// connections — the per-client fairness mechanism: each connection takes
/// a numbered ticket when its request is ready and submits when its number
/// comes up, so a connection that just finished a request joins the back
/// of the line behind every already-waiting peer (round-robin when all
/// connections are saturated) instead of barging on raw lock acquisition.
#[derive(Default)]
struct FairGate {
    state: Mutex<(u64, u64)>, // (next ticket, now serving)
    turn: Condvar,
}

impl FairGate {
    /// Runs `f` when this caller's turn comes up. `f` must be brief (an
    /// engine submission — validation plus a queue push, never the wait
    /// for the response).
    fn admit<T>(&self, f: impl FnOnce() -> T) -> T {
        let mut state = self.state.lock().expect("gate lock");
        let ticket = state.0;
        state.0 += 1;
        while state.1 != ticket {
            state = self.turn.wait(state).expect("gate wait");
        }
        let out = f();
        state.1 += 1;
        drop(state);
        self.turn.notify_all();
        out
    }
}

/// Per-connection reusable wire buffers: the request-payload read buffer
/// plus the response payload/message encode staging. A steady-state
/// connection cycles the same three allocations for every frame instead of
/// growing fresh ones per request — `loadgen`'s `wire-allocs/frame` line
/// exists to watch exactly this stay flat.
#[derive(Default)]
struct WireScratch {
    /// Incoming request payload (sized to each request, capacity retained).
    request: Vec<u8>,
    /// Outgoing response payload staging.
    payload: Vec<u8>,
    /// Outgoing framed message staging (header + payload).
    message: Vec<u8>,
}

/// Decrements a thread-count gauge (active connections, or in-flight
/// refusals) when the owning thread exits, however it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The TCP front-end. Binds, serves until [`TcpServer::shutdown`], and
/// shares one [`Engine`] across every connection.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections against `engine`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind(addr: impl ToSocketAddrs, engine: Arc<Engine>) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("fc-serve-accept".into())
            .spawn(move || accept_loop(&listener, &engine, &stop2))?;
        Ok(TcpServer { addr: local, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop. Open
    /// connections finish their in-flight request and then close on their
    /// next read (their handler threads are detached and exit on EOF or
    /// error; the engine's own [`Engine::shutdown`] drains in-flight work).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            h.join().expect("accept loop panicked");
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>, stop: &AtomicBool) {
    let active = Arc::new(AtomicUsize::new(0));
    let refusing = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(FairGate::default());
    let max_connections = engine.config().max_connections;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Connection limit: the accept thread is the only
                // incrementer, so load-then-add cannot race past the bound.
                if active.load(Ordering::SeqCst) >= max_connections {
                    engine.metrics_registry().net_conn_refused.fetch_add(1, Ordering::Relaxed);
                    // Refused on a detached thread: the lingering close
                    // must not stall the accept loop. Refusal threads are
                    // themselves capped — past the cap the connection is
                    // simply dropped, so a refusal flood cannot exhaust
                    // threads either (the status byte is a courtesy, the
                    // bound is the contract).
                    if refusing.load(Ordering::SeqCst) < MAX_REFUSAL_THREADS {
                        refusing.fetch_add(1, Ordering::SeqCst);
                        let guard = ConnGuard(Arc::clone(&refusing));
                        let _ = std::thread::Builder::new().name("fc-serve-refuse".into()).spawn(
                            move || {
                                let _guard = guard;
                                refuse_connection(stream);
                            },
                        );
                    }
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let guard = ConnGuard(Arc::clone(&active));
                let engine = Arc::clone(engine);
                let gate = Arc::clone(&gate);
                // Handler threads are detached: they exit on EOF/error, and
                // process shutdown tears them down with everything else.
                // A handler panic (it shouldn't — the body is total — but
                // the fault layer can inject one) is contained here: the
                // connection drops, the server keeps accepting.
                let _ = std::thread::Builder::new().name("fc-serve-conn".into()).spawn(move || {
                    let _guard = guard;
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(stream, &engine, &gate);
                    }))
                    .is_err()
                    {
                        engine.metrics_registry().net_disconnects.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Answers a connection refused at the limit with a retryable
/// `TOO_MANY_CONNECTIONS` status, then lingers briefly before closing:
/// dropping the socket while the client's first request sits unread in the
/// receive queue would turn the close into a TCP RST that can destroy the
/// refusal before the client reads it. Draining (bounded bytes, bounded
/// time) until the client's EOF lets the FIN path deliver the status.
fn refuse_connection(mut stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if write_error(
        &mut stream,
        status::TOO_MANY_CONNECTIONS,
        "connection limit reached, retry later",
    )
    .is_err()
    {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut scratch = [0u8; 4096];
    // Deadline-bounded courtesy: a trickling client cannot hold this
    // thread past the linger window.
    let deadline = std::time::Instant::now() + REFUSAL_LINGER;
    while std::time::Instant::now() < deadline {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Serves one connection: a loop of request → response frames. Returns (and
/// closes the stream) on EOF, protocol violation, or I/O error.
fn handle_connection(mut stream: TcpStream, engine: &Arc<Engine>, gate: &FairGate) {
    // Handlers use blocking reads; the listener's non-blocking flag is
    // inherited on some platforms, so reset it explicitly.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Slow-peer defense: bound every socket read and write so a peer that
    // stops feeding (or draining) the connection cannot pin this handler
    // thread forever. An idle-but-healthy client is reaped too — it simply
    // reconnects on its next request.
    let idle_ms = engine.config().idle_timeout_ms;
    if idle_ms > 0 {
        let t = Some(Duration::from_millis(idle_ms));
        if stream.set_read_timeout(t).is_err() || stream.set_write_timeout(t).is_err() {
            return;
        }
    }
    let metrics = engine.metrics_registry();
    // Counts this connection as drained (when it eventually closes) once
    // it has been told to go away at least once.
    struct DrainTally<'a> {
        m: &'a crate::metrics::Metrics,
        sent: bool,
    }
    impl Drop for DrainTally<'_> {
        fn drop(&mut self) {
            if self.sent {
                self.m.connections_drained.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let mut drain_tally = DrainTally { m: metrics, sent: false };
    let faults: Option<Arc<FaultLayer>> = engine.fault_layer().clone();
    let mut scratch = WireScratch::default();
    loop {
        let mut header = [0u8; 9];
        match read_exact_or_eof(&mut stream, &mut header) {
            Ok(ReadOutcome::Eof) => return, // clean close between requests
            Ok(ReadOutcome::Full) => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                // Idle past the timeout between requests: reaped quietly,
                // not counted as a disconnect error.
                return;
            }
            Err(_) => {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if faults::fire(&faults, FaultPoint::NetRead) {
            // Injected read failure: indistinguishable (to the client) from
            // the peer dying mid-request — the connection just drops.
            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let (opcode, prio_nibble) = protocol::split_kind(header[4]);
        let payload_len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;

        if magic != MAGIC
            || !matches!(
                opcode,
                OP_PROCESS_FRAME
                    | OP_HEALTH
                    | OP_INFER
                    | OP_METRICS
                    | OP_TRACE_DUMP
                    | OP_STREAM
                    | OP_STREAM_CREDIT
                    | OP_STREAM_CANCEL
            )
        {
            // The stream cannot be resynchronized after a framing error:
            // answer malformed and drop the connection.
            metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(&mut stream, status::MALFORMED, "bad magic or opcode");
            return;
        }
        if matches!(opcode, OP_HEALTH | OP_METRICS | OP_TRACE_DUMP) {
            // Answered inline — a health probe or metrics scrape must work
            // even when every worker is wedged, so these never touch the
            // queue.
            if payload_len != 0 {
                metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
                if drain(&mut stream, payload_len).is_err()
                    || write_error(&mut stream, status::MALFORMED, "opcode takes no payload")
                        .is_err()
                {
                    metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                continue;
            }
            let payload = match opcode {
                OP_METRICS => engine.metrics_text().into_bytes(),
                OP_TRACE_DUMP => obs::chrome::trace_json(&obs::drain()).into_bytes(),
                _ => protocol::encode_health_payload(&engine.health()),
            };
            if faults::fire(&faults, FaultPoint::NetWrite)
                || stream.write_all(&protocol::encode_message(status::OK, &payload)).is_err()
            {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            continue;
        }
        if matches!(opcode, OP_STREAM_CREDIT | OP_STREAM_CANCEL) {
            // Stream-control frames are only meaningful inside an open
            // stream (consumed by [`serve_stream`]'s control reads). One
            // landing here is the tail of an inherent race — a client
            // replenishing credits just as the stream completed, or
            // cancelling a stream that ended naturally — so it is silently
            // ignored rather than rejected.
            if payload_len != 0 {
                metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
                if drain(&mut stream, payload_len).is_err()
                    || write_error(&mut stream, status::MALFORMED, "opcode takes no payload")
                        .is_err()
                {
                    metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            continue;
        }
        // Old clients leave the high nibble zero → Normal; nibbles beyond
        // the known classes are a caller bug, not a framing error, so the
        // connection stays usable.
        let Some(priority) = Priority::from_wire(prio_nibble) else {
            metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
            if drain(&mut stream, payload_len).is_err()
                || write_error(&mut stream, status::MALFORMED, "unknown priority class").is_err()
            {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            continue;
        };
        if payload_len > engine.config().max_payload_bytes() {
            // Refuse to buffer the payload: drain it through a small
            // scratch (bounded memory regardless of the declared size),
            // reply OVERSIZED, and keep the connection usable.
            metrics.shed_oversized.fetch_add(1, Ordering::Relaxed);
            if drain(&mut stream, payload_len).is_err()
                || write_error(
                    &mut stream,
                    status::OVERSIZED,
                    &format!("payload of {payload_len} bytes exceeds the server limit"),
                )
                .is_err()
            {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            continue;
        }

        // Reused per-connection read buffer: resized to each request,
        // capacity retained across the connection's lifetime.
        scratch.request.clear();
        scratch.request.resize(payload_len, 0);
        if stream.read_exact(&mut scratch.request).is_err() {
            // Disconnect (or stall) mid-request.
            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }

        // Zero-downtime drain: while the engine is soft-draining, work
        // opcodes are answered GOAWAY (retryable — the client reconnects
        // elsewhere or retries after the maintenance window) instead of
        // queued. Health and metrics probes above stay answered inline so
        // orchestrators can watch the drain progress.
        if engine.is_draining() {
            metrics.goaway_sent.fetch_add(1, Ordering::Relaxed);
            drain_tally.sent = true;
            if write_error(&mut stream, status::GOAWAY, "server draining, reconnect later").is_err()
            {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            continue;
        }

        if opcode == OP_STREAM {
            match protocol::decode_stream_request_payload(&scratch.request) {
                Err(WireError(what)) => {
                    metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
                    if write_error(&mut stream, status::MALFORMED, what).is_err() {
                        metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                Ok((cloud, config, deadline_ms, open)) => {
                    let deadline =
                        (deadline_ms > 0).then(|| Duration::from_millis(u64::from(deadline_ms)));
                    match serve_stream(
                        &mut stream,
                        engine,
                        gate,
                        &faults,
                        cloud,
                        config,
                        priority,
                        deadline,
                        &open,
                        &mut scratch,
                    ) {
                        StreamExit::Continue => {}
                        StreamExit::CloseQuiet => return,
                        StreamExit::CloseError => {
                            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            }
            continue;
        }

        let reply = if opcode == OP_INFER {
            match protocol::decode_infer_request_payload(&scratch.request) {
                Err(WireError(what)) => {
                    metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
                    let r = write_error(&mut stream, status::MALFORMED, what);
                    if r.is_err() {
                        metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // Framing was intact — the connection may continue.
                    continue;
                }
                Ok((cloud, wire_req, deadline_ms)) => {
                    // Resolve the notation against the server-side zoo; an
                    // unknown notation is a caller bug, not a framing error.
                    let Some(model) =
                        ModelConfig::table1().into_iter().find(|m| m.notation == wire_req.notation)
                    else {
                        let r = write_error(
                            &mut stream,
                            status::INVALID,
                            &format!("unknown model notation {:?}", wire_req.notation),
                        );
                        if r.is_err() {
                            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        continue;
                    };
                    // The decoder already rejected bytes past AGG_DELAYED,
                    // so the only remaining value is the server default.
                    let aggregation = match wire_req.aggregation {
                        AGG_EAGER => Some(Aggregation::Eager),
                        AGG_DELAYED => Some(Aggregation::Delayed),
                        _ => None,
                    };
                    let req = InferRequest {
                        model,
                        seed: wire_req.seed,
                        threshold: wire_req.threshold as usize,
                        aggregation,
                        priority,
                        deadline: (deadline_ms > 0)
                            .then(|| Duration::from_millis(u64::from(deadline_ms))),
                    };
                    let (trace_req, outcome) =
                        match gate.admit(|| engine.submit_infer(Arc::new(cloud), req)) {
                            Ok(ticket) => (ticket.request_id(), ticket.wait()),
                            Err(e) => (0, Err(e)),
                        };
                    if faults::fire(&faults, FaultPoint::NetWrite) {
                        metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    let _trace = obs::scoped_context(trace_req, priority.index() as u8);
                    match outcome {
                        Ok(resp) => write_infer_ok(&mut stream, &resp, &mut scratch),
                        Err(e) => write_error(&mut stream, error_status(&e), &e.to_string()),
                    }
                }
            }
        } else {
            match protocol::decode_request_payload(&scratch.request) {
                Err(WireError(what)) => {
                    metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
                    let r = write_error(&mut stream, status::MALFORMED, what);
                    if r.is_err() {
                        metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // Framing was intact — the connection may continue.
                    continue;
                }
                Ok((cloud, config, deadline_ms, budget)) => {
                    let deadline =
                        (deadline_ms > 0).then(|| Duration::from_millis(u64::from(deadline_ms)));
                    // Round-robin admission: the submission (queue push) takes
                    // its fairness turn; the wait for the response happens
                    // outside the gate so slow frames don't block other
                    // connections' admissions. A non-zero wire budget runs
                    // the truncated (prefix-identical) frame.
                    let (trace_req, outcome) = match gate.admit(|| {
                        engine.submit_shared_budget(
                            Arc::new(cloud),
                            config,
                            budget as usize,
                            priority,
                            deadline,
                        )
                    }) {
                        Ok(ticket) => (ticket.request_id(), ticket.wait()),
                        Err(e) => (0, Err(e)),
                    };
                    if faults::fire(&faults, FaultPoint::NetWrite) {
                        // Injected write failure: the response is computed but
                        // lost on the wire; the client sees the connection die.
                        metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    let _trace = obs::scoped_context(trace_req, priority.index() as u8);
                    match outcome {
                        Ok(resp) => write_ok(&mut stream, &resp, &mut scratch),
                        Err(e) => write_error(&mut stream, error_status(&e), &e.to_string()),
                    }
                }
            }
        };
        if reply.is_err() {
            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Reads and discards `n` bytes through a fixed-size scratch buffer.
fn drain(stream: &mut TcpStream, mut n: usize) -> io::Result<()> {
    let mut scratch = [0u8; 8192];
    while n > 0 {
        let take = n.min(scratch.len());
        stream.read_exact(&mut scratch[..take])?;
        n -= take;
    }
    Ok(())
}

/// Result of an initial header read: clean EOF or a full buffer.
enum ReadOutcome {
    Eof,
    Full,
}

/// Reads exactly `buf.len()` bytes, distinguishing "EOF before any byte"
/// (clean connection close) from "EOF mid-buffer" (error).
fn read_exact_or_eof(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

/// How [`serve_stream`] left the connection.
enum StreamExit {
    /// The stream ended (completed or cancelled); the connection may serve
    /// further requests.
    Continue,
    /// The peer went away cleanly mid-stream (EOF on a control read) — a
    /// viewer closing its tab, not an error.
    CloseQuiet,
    /// Transport or framing failure; the caller counts a disconnect.
    CloseError,
}

/// Outcome of one chunk: submitted, executed, encoded, written.
enum ChunkOutcome {
    /// Chunk delivered; the stream advanced to depth `hi` of `total`.
    Sent { hi: usize, total: usize },
    /// The engine refused the chunk (shed/invalid); an error frame was
    /// written and the stream is over, but the connection survives.
    Refused,
    /// The transport died (or a write fault fired).
    Dead,
}

/// One stream-control read's verdict.
enum ControlRead {
    /// Nothing pending (non-blocking poll only).
    None,
    /// `OP_STREAM_CREDIT`: one more refinement chunk is welcome.
    Credit,
    /// `OP_STREAM_CANCEL`: stop refining now.
    Cancel,
    /// Clean EOF — the peer is gone.
    Eof,
    /// Framing violation or transport error.
    Bad,
}

/// Drives one progressive-LOD stream: first paint at the requester's
/// priority, then credit-gated refinement chunks at [`Priority::Bulk`]
/// until the ordering is exhausted, the client cancels, or the peer goes
/// away. Every chunk is its own engine job, so a cancel takes effect at
/// chunk granularity — the engine-side `stream_chunks_sent` counter stops
/// advancing, which is how tests prove the server stopped *working*, not
/// just stopped talking.
#[allow(clippy::too_many_arguments)]
fn serve_stream(
    stream: &mut TcpStream,
    engine: &Arc<Engine>,
    gate: &FairGate,
    faults: &Option<Arc<FaultLayer>>,
    cloud: fractalcloud_pointcloud::PointCloud,
    config: PipelineConfig,
    priority: Priority,
    deadline: Option<Duration>,
    open: &WireStreamOpen,
    scratch: &mut WireScratch,
) -> StreamExit {
    let metrics = engine.metrics_registry();
    metrics.streams_opened.fetch_add(1, Ordering::Relaxed);
    // Every exit path balances the open/closed pair through this guard —
    // `opened − closed` staying above zero with no client connected is the
    // hung-stream signal CI greps for.
    struct CloseGuard<'a>(&'a crate::metrics::Metrics);
    impl Drop for CloseGuard<'_> {
        fn drop(&mut self) {
            self.0.streams_closed.fetch_add(1, Ordering::Relaxed);
        }
    }
    let _close = CloseGuard(metrics);

    let cfg = engine.config();
    let pick = |wire: u32, default: usize| if wire == 0 { default } else { wire as usize };
    let first_paint = pick(open.first_paint, cfg.stream_first_paint);
    let chunk_size = pick(open.chunk, cfg.stream_chunk);
    let mut credits = pick(open.credits, cfg.stream_credits);

    // The stream's wall-clock deadline (explicit, or the server default)
    // also bounds credit waits: a viewer that stops sending credits used
    // to pin this handler in an unbounded blocking read, leaking the
    // stream (`opened − closed` never rebalanced). Now the wait resolves
    // DEADLINE_EXCEEDED at the deadline and the guard above closes the
    // stream. With no deadline configured anywhere the wait stays
    // unbounded by contract, but polls instead of blocking.
    let wait_deadline = deadline
        .or((cfg.deadline_ms > 0).then(|| Duration::from_millis(cfg.deadline_ms)))
        .map(|d| std::time::Instant::now() + d);

    let cloud = Arc::new(cloud);
    let mut seq = 0u32;

    // First paint: admitted at the requester's priority — it is the
    // time-to-first-point the viewer sees — and never credit-gated.
    #[rustfmt::skip]
    let first = run_chunk(
        stream, engine, gate, faults, &cloud, config, 0, first_paint, priority, deadline,
        &mut seq, scratch,
    );
    let (mut depth, total) = match first {
        ChunkOutcome::Sent { hi, total } => (hi, total),
        ChunkOutcome::Refused => return StreamExit::Continue,
        ChunkOutcome::Dead => return StreamExit::CloseError,
    };

    while depth < total {
        // Consume queued control frames before each refinement — waiting
        // (deadline-bounded) only when out of credits, so a cancel takes
        // effect even while credits remain.
        loop {
            let verdict = if credits == 0 {
                wait_for_credit(stream, faults, wait_deadline)
            } else {
                read_control(stream, false)
            };
            match verdict {
                ControlRead::None if credits == 0 => {
                    // Deadline expired while credit-starved: the stream
                    // resolves instead of hanging the handler forever.
                    return if write_error(
                        stream,
                        status::DEADLINE_EXCEEDED,
                        "stream deadline expired waiting for credits",
                    )
                    .is_err()
                    {
                        StreamExit::CloseError
                    } else {
                        StreamExit::Continue
                    };
                }
                ControlRead::None => break,
                ControlRead::Credit => credits += 1,
                ControlRead::Cancel => {
                    metrics.streams_cancelled.fetch_add(1, Ordering::Relaxed);
                    return finish_stream(stream, faults, seq, depth, true, scratch);
                }
                ControlRead::Eof => return StreamExit::CloseQuiet,
                ControlRead::Bad => return StreamExit::CloseError,
            }
        }
        credits -= 1;
        let hi = (depth + chunk_size).min(total);
        // Refinements ride the Bulk class: a viewer's deep tail must never
        // displace another viewer's first paint.
        #[rustfmt::skip]
        let next = run_chunk(
            stream, engine, gate, faults, &cloud, config, depth, hi, Priority::Bulk, deadline,
            &mut seq, scratch,
        );
        match next {
            ChunkOutcome::Sent { hi, .. } => depth = hi,
            ChunkOutcome::Refused => return StreamExit::Continue,
            ChunkOutcome::Dead => return StreamExit::CloseError,
        }
    }
    finish_stream(stream, faults, seq, depth, false, scratch)
}

/// Submits one chunk job through the fairness gate, waits for its slice,
/// and writes it as a [`status::CHUNK`] frame through the connection's
/// scratch buffers.
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    stream: &mut TcpStream,
    engine: &Arc<Engine>,
    gate: &FairGate,
    faults: &Option<Arc<FaultLayer>>,
    cloud: &Arc<fractalcloud_pointcloud::PointCloud>,
    config: PipelineConfig,
    lo: usize,
    hi: usize,
    priority: Priority,
    deadline: Option<Duration>,
    seq: &mut u32,
    scratch: &mut WireScratch,
) -> ChunkOutcome {
    let outcome = match gate
        .admit(|| engine.submit_stream_chunk(Arc::clone(cloud), config, lo, hi, priority, deadline))
    {
        Ok(ticket) => ticket.wait(),
        Err(e) => Err(e),
    };
    if faults::fire(faults, FaultPoint::NetWrite) {
        return ChunkOutcome::Dead;
    }
    match outcome {
        Ok(resp) => {
            *seq += 1;
            let slice = &resp.slice;
            let encode_span = obs::span(obs::SpanKind::WireEncode, 0);
            let wire = WireStreamChunk {
                seq: *seq,
                lo: slice.lo as u32,
                hi: slice.hi as u32,
                total: slice.total as u32,
                blocks: slice.blocks as u32,
                num: slice.num as u32,
                cache_hit: resp.cache_hit,
                segments: slice
                    .segments
                    .iter()
                    .map(|s| WireLodSegment {
                        block: s.block as u32,
                        sampled: s.sampled.iter().map(|&i| i as u32).collect(),
                        grouped: s.grouped.iter().map(|&i| i as u32).collect(),
                        found: s.found.iter().map(|&i| i as u32).collect(),
                    })
                    .collect(),
            };
            scratch.payload.clear();
            protocol::encode_stream_chunk_into(&wire, &mut scratch.payload);
            scratch.message.clear();
            protocol::encode_message_into(status::CHUNK, &scratch.payload, &mut scratch.message);
            encode_span.done();
            let write_span = obs::span(obs::SpanKind::WireWrite, 0);
            let w = stream.write_all(&scratch.message);
            write_span.done();
            if w.is_err() {
                return ChunkOutcome::Dead;
            }
            ChunkOutcome::Sent { hi: slice.hi, total: slice.total }
        }
        Err(e) => {
            if write_error(stream, error_status(&e), &e.to_string()).is_err() {
                ChunkOutcome::Dead
            } else {
                ChunkOutcome::Refused
            }
        }
    }
}

/// Terminates a stream with its [`status::STREAM_END`] summary frame.
fn finish_stream(
    stream: &mut TcpStream,
    faults: &Option<Arc<FaultLayer>>,
    chunks: u32,
    delivered: usize,
    cancelled: bool,
    scratch: &mut WireScratch,
) -> StreamExit {
    let end = WireStreamEnd { chunks, delivered: delivered as u32, cancelled };
    scratch.payload.clear();
    protocol::encode_stream_end_into(&end, &mut scratch.payload);
    scratch.message.clear();
    protocol::encode_message_into(status::STREAM_END, &scratch.payload, &mut scratch.message);
    if faults::fire(faults, FaultPoint::NetWrite) || stream.write_all(&scratch.message).is_err() {
        StreamExit::CloseError
    } else {
        StreamExit::Continue
    }
}

/// How often the credit-starved wait polls for a control frame.
const CREDIT_POLL: Duration = Duration::from_millis(2);

/// Waits (deadline-bounded) for a stream-control frame while
/// credit-starved, polling non-blocking so the socket's idle timeout never
/// misfires as a transport error. Returns [`ControlRead::None`] only when
/// the deadline expires first. The [`FaultPoint::CreditStall`] hook fires
/// once per wait: an injected `delay` models a viewer that stops sending
/// credits for a while; an injected `err` drops the control read as if the
/// socket died.
fn wait_for_credit(
    stream: &mut TcpStream,
    faults: &Option<Arc<FaultLayer>>,
    deadline: Option<std::time::Instant>,
) -> ControlRead {
    if faults::fire(faults, FaultPoint::CreditStall) {
        return ControlRead::Bad;
    }
    loop {
        match read_control(stream, false) {
            ControlRead::None => {}
            verdict => return verdict,
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            return ControlRead::None;
        }
        std::thread::sleep(CREDIT_POLL);
    }
}

/// Reads one stream-control frame (header-only by contract). Non-blocking
/// mode *peeks* first and only consumes a complete 9-byte header, so a
/// partially arrived frame is left queued intact for the next poll.
fn read_control(stream: &mut TcpStream, blocking: bool) -> ControlRead {
    let mut header = [0u8; 9];
    if !blocking {
        if stream.set_nonblocking(true).is_err() {
            return ControlRead::Bad;
        }
        let peeked = stream.peek(&mut header);
        if stream.set_nonblocking(false).is_err() {
            return ControlRead::Bad;
        }
        match peeked {
            Ok(0) => return ControlRead::Eof,
            Ok(n) if n < header.len() => return ControlRead::None,
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ControlRead::None,
            Err(_) => return ControlRead::Bad,
        }
    }
    match read_exact_or_eof(stream, &mut header) {
        Ok(ReadOutcome::Eof) => return ControlRead::Eof,
        Ok(ReadOutcome::Full) => {}
        Err(_) => return ControlRead::Bad,
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let (opcode, _nibble) = protocol::split_kind(header[4]);
    let payload_len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
    if magic != MAGIC || payload_len != 0 {
        return ControlRead::Bad;
    }
    match opcode {
        OP_STREAM_CREDIT => ControlRead::Credit,
        OP_STREAM_CANCEL => ControlRead::Cancel,
        // Any other frame mid-stream is a pipelining violation the framing
        // cannot recover from.
        _ => ControlRead::Bad,
    }
}

fn error_status(e: &ServeError) -> u8 {
    match e {
        ServeError::Shed(ShedReason::QueueFull) => status::QUEUE_FULL,
        ServeError::Shed(ShedReason::Oversized { .. }) => status::OVERSIZED,
        ServeError::Shed(ShedReason::ShuttingDown) => status::SHUTTING_DOWN,
        ServeError::Shed(ShedReason::DeadlineExceeded) => status::DEADLINE_EXCEEDED,
        ServeError::Invalid(_) => status::INVALID,
        ServeError::Internal => status::INTERNAL_ERROR,
    }
}

fn write_ok(
    stream: &mut TcpStream,
    resp: &FrameResponse,
    scratch: &mut WireScratch,
) -> io::Result<()> {
    let encode_span = obs::span(obs::SpanKind::WireEncode, 0);
    let wire = WireResponse {
        sampled_indices: resp.sampled_indices.iter().map(|&i| i as u32).collect(),
        neighbor_indices: resp.neighbor_indices.iter().map(|&i| i as u32).collect(),
        found: resp.found.iter().map(|&i| i as u32).collect(),
        num: resp.num as u32,
        blocks: resp.blocks as u32,
        cache_hit: resp.cache_hit,
        batch_size: resp.batch_size as u32,
        degraded: resp.degraded,
        budget_served: resp.budget_served as u32,
    };
    scratch.payload.clear();
    protocol::encode_response_payload_into(&wire, &mut scratch.payload);
    scratch.message.clear();
    protocol::encode_message_into(status::OK, &scratch.payload, &mut scratch.message);
    encode_span.done();
    let _write_span = obs::span(obs::SpanKind::WireWrite, 0);
    stream.write_all(&scratch.message)
}

fn write_infer_ok(
    stream: &mut TcpStream,
    resp: &InferResponse,
    scratch: &mut WireScratch,
) -> io::Result<()> {
    let encode_span = obs::span(obs::SpanKind::WireEncode, 0);
    let wire = WireInferResponse {
        classes: resp.output.classes as u32,
        cache_hit: resp.cache_hit,
        batch_size: resp.batch_size as u32,
        aggregation: aggregation_wire(resp.aggregation),
        macs_moved: resp.output.counters.macs_moved,
        macs_saved: resp.output.counters.macs_saved,
        gather_bytes: resp.output.counters.gather_bytes,
        row_index: resp.output.row_index.iter().map(|&i| i as u32).collect(),
        // Logits cross as raw LE bit patterns, so the wire response is
        // bit-identical to the in-process one.
        logits: resp.output.logits.clone(),
    };
    scratch.payload.clear();
    protocol::encode_infer_response_payload_into(&wire, &mut scratch.payload);
    scratch.message.clear();
    protocol::encode_message_into(status::OK, &scratch.payload, &mut scratch.message);
    encode_span.done();
    let _write_span = obs::span(obs::SpanKind::WireWrite, 0);
    stream.write_all(&scratch.message)
}

fn write_error(stream: &mut TcpStream, code: u8, message: &str) -> io::Result<()> {
    stream.write_all(&protocol::encode_message(code, message.as_bytes()))
}

/// Errors a [`ServeClient`] call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with a non-OK status.
    Server {
        /// The [`status`] code.
        code: u8,
        /// The server's human-readable reason.
        message: String,
    },
    /// The server's bytes did not parse.
    Protocol(WireError),
}

impl ClientError {
    /// True when the server shed the request (retryable by contract;
    /// includes [`status::DEADLINE_EXCEEDED`] — retry with a fresh
    /// deadline — and [`status::GOAWAY`] — reconnect first, the server is
    /// draining). [`status::INTERNAL_ERROR`] is deliberately *not* shed:
    /// the same input may fail the same way.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: status::QUEUE_FULL
                    | status::OVERSIZED
                    | status::SHUTTING_DOWN
                    | status::TOO_MANY_CONNECTIONS
                    | status::DEADLINE_EXCEEDED
                    | status::GOAWAY,
                ..
            }
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server status {code}: {message}")
            }
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One frame of an open progressive-LOD stream, as the client sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A coarse-to-fine refinement slice ([`status::CHUNK`]).
    Chunk(WireStreamChunk),
    /// The terminating summary ([`status::STREAM_END`]).
    End(WireStreamEnd),
}

/// Seeded, deterministic retry schedule for a self-healing client:
/// exponential backoff with decorrelated jitter, capped, and never past
/// the request's deadline. Two policies built with the same seed produce
/// the same delay sequence, so chaos runs replay identically.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    max_retries: u32,
    base: Duration,
    cap: Duration,
    state: u64,
}

impl RetryPolicy {
    /// A policy allowing `max_retries` retries, jittered from `seed`
    /// (base delay 10 ms, cap 1 s).
    pub fn new(max_retries: u32, seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            state: seed,
        }
    }

    /// Reads `FRACTALCLOUD_CLIENT_RETRIES` for the retry budget (default
    /// 3 when unset or unparseable), jittered from `seed`.
    pub fn from_env(seed: u64) -> RetryPolicy {
        let max = std::env::var("FRACTALCLOUD_CLIENT_RETRIES")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(3);
        RetryPolicy::new(max, seed)
    }

    /// Returns `self` with the given base (first-retry) delay.
    pub fn base_delay(mut self, base: Duration) -> RetryPolicy {
        self.base = base;
        self
    }

    /// Returns `self` with the given backoff cap.
    pub fn max_delay(mut self, cap: Duration) -> RetryPolicy {
        self.cap = cap;
        self
    }

    /// Retries this policy allows per request.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The delay before retry number `attempt` (0-based), or `None` when
    /// the retry budget is exhausted or the delay would land past
    /// `deadline` — a retry that cannot complete in time is not worth
    /// sleeping for.
    pub fn next_delay(
        &mut self,
        attempt: u32,
        deadline: Option<std::time::Instant>,
    ) -> Option<Duration> {
        if attempt >= self.max_retries {
            return None;
        }
        let exp = self.base.saturating_mul(1 << attempt.min(16)).min(self.cap);
        // Decorrelated jitter over [exp/2, exp): enough spread to break up
        // synchronized client stampedes, deterministic per seed.
        let span = (exp.as_micros() / 2).max(1) as u64;
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let delay = Duration::from_micros(span + crate::faults::splitmix64(self.state) % span);
        if let Some(d) = deadline {
            if std::time::Instant::now() + delay >= d {
                return None;
            }
        }
        Some(delay)
    }
}

/// A blocking client for the TCP front-end.
pub struct ServeClient {
    stream: TcpStream,
    peer: SocketAddr,
    read_timeout: Option<Duration>,
    retries: u64,
}

impl ServeClient {
    /// Connects to a running [`TcpServer`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(ServeClient { stream, peer, read_timeout: None, retries: 0 })
    }

    /// Bounds every subsequent read; a stalled server then surfaces as
    /// [`ClientError::Io`] (`WouldBlock`/`TimedOut`) instead of hanging the
    /// caller forever. `None` restores unbounded reads. Chaos tests use
    /// this to turn "hung" into an assertable outcome. The setting
    /// survives [`RetryPolicy`]-driven reconnects.
    ///
    /// # Errors
    ///
    /// Propagates socket configuration failures.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        self.stream.set_read_timeout(timeout)
    }

    /// Total retries this client has performed across every `*_retry`
    /// call (reconnect-and-replay included). In-process harnesses fold
    /// this into the server's
    /// [`Metrics::record_retries`](crate::metrics::Metrics::record_retries)
    /// before rendering the exposition.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Drops the current connection and dials the same peer again,
    /// restoring the recorded read timeout.
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.peer)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        self.stream = stream;
        Ok(())
    }

    /// Requests the server's [`EngineHealth`] snapshot ([`OP_HEALTH`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`]/[`ClientError::Protocol`] for transport and
    /// framing failures; [`ClientError::Server`] for non-OK statuses.
    pub fn health(&mut self) -> Result<EngineHealth, ClientError> {
        self.stream.write_all(&protocol::encode_message(OP_HEALTH, &[]))?;
        let (code, payload) = self.read_reply()?;
        if code != status::OK {
            return Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            });
        }
        protocol::decode_health_payload(&payload).map_err(ClientError::Protocol)
    }

    /// Requests the server's Prometheus-style metrics exposition
    /// ([`OP_METRICS`]) — the text [`Engine::metrics_text`] renders.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::health`]; additionally [`ClientError::Protocol`]
    /// when the body is not UTF-8.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        self.text_request(OP_METRICS)
    }

    /// Drains the server's flight recorder ([`OP_TRACE_DUMP`]) as Chrome
    /// trace-event JSON (load into `chrome://tracing` or Perfetto).
    /// Draining consumes: a second dump returns only newer events.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::metrics_text`].
    pub fn trace_dump(&mut self) -> Result<String, ClientError> {
        self.text_request(OP_TRACE_DUMP)
    }

    fn text_request(&mut self, opcode: u8) -> Result<String, ClientError> {
        self.stream.write_all(&protocol::encode_message(opcode, &[]))?;
        let (code, payload) = self.read_reply()?;
        if code != status::OK {
            return Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            });
        }
        String::from_utf8(payload)
            .map_err(|_| ClientError::Protocol(WireError("response body is not UTF-8")))
    }

    /// Sends one [`Priority::Normal`] frame and blocks for its result.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::process_with_priority`].
    pub fn process(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
    ) -> Result<WireResponse, ClientError> {
        self.process_with_priority(cloud, config, Priority::Normal)
    }

    /// Sends one frame at the given [`Priority`] (encoded in the kind
    /// byte's high nibble) and blocks for its result.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for shed/rejected requests,
    /// [`ClientError::Io`]/[`ClientError::Protocol`] for transport and
    /// framing failures.
    pub fn process_with_priority(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
        priority: Priority,
    ) -> Result<WireResponse, ClientError> {
        self.process_with_options(cloud, config, priority, 0)
    }

    /// [`ServeClient::process_with_priority`] with a per-request deadline
    /// in milliseconds (0 = use the server's default). A non-zero deadline
    /// rides the optional payload trailer; an expired request comes back as
    /// the retryable [`status::DEADLINE_EXCEEDED`].
    ///
    /// # Errors
    ///
    /// As [`ServeClient::process_with_priority`].
    pub fn process_with_options(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
        priority: Priority,
        deadline_ms: u32,
    ) -> Result<WireResponse, ClientError> {
        let payload = protocol::encode_request_payload_deadline(cloud, config, deadline_ms);
        self.stream
            .write_all(&protocol::encode_message(protocol::request_kind(priority), &payload))?;
        let (code, payload) = self.read_reply()?;
        if code != status::OK {
            return Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            });
        }
        protocol::decode_response_payload(&payload).map_err(ClientError::Protocol)
    }

    /// [`ServeClient::process_with_options`] wrapped in the self-healing
    /// retry loop: shed statuses (including [`status::GOAWAY`]) and
    /// transport failures are retried on `policy`'s backoff schedule —
    /// reconnecting and replaying the request when the connection died or
    /// the server said go away — and never past the request's own
    /// deadline. Non-retryable rejections ([`status::INVALID`],
    /// [`status::MALFORMED`], [`status::INTERNAL_ERROR`]) surface
    /// immediately.
    ///
    /// # Errors
    ///
    /// The final attempt's error, as [`ServeClient::process_with_options`].
    pub fn process_retry(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
        priority: Priority,
        deadline_ms: u32,
        policy: &mut RetryPolicy,
    ) -> Result<WireResponse, ClientError> {
        let deadline = (deadline_ms > 0)
            .then(|| std::time::Instant::now() + Duration::from_millis(u64::from(deadline_ms)));
        let mut attempt = 0u32;
        loop {
            let err = match self.process_with_options(cloud, config, priority, deadline_ms) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            let (retryable, reconnect) = match &err {
                ClientError::Server { code, .. } => (err.is_shed(), *code == status::GOAWAY),
                // A dead or desynced transport (EOF mid-reply, reset,
                // timeout) is always replayed on a fresh connection.
                ClientError::Io(_) => (true, true),
                ClientError::Protocol(_) => (false, false),
            };
            let Some(delay) = retryable.then(|| policy.next_delay(attempt, deadline)).flatten()
            else {
                return Err(err);
            };
            attempt += 1;
            self.retries += 1;
            std::thread::sleep(delay);
            if reconnect {
                if let Err(e) = self.reconnect() {
                    return Err(ClientError::Io(e));
                }
            }
        }
    }

    /// [`ServeClient::process_with_options`] with a sample budget: a
    /// non-zero `budget` asks the server to answer with only the first
    /// `budget` samples of the frame's coarse-to-fine quality ordering —
    /// byte-identical to the prefix of the full response, at
    /// proportionally lower cost (0 = full depth).
    ///
    /// # Errors
    ///
    /// As [`ServeClient::process_with_priority`].
    pub fn process_budget(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
        priority: Priority,
        deadline_ms: u32,
        budget: u32,
    ) -> Result<WireResponse, ClientError> {
        let payload = protocol::encode_request_payload_budget(cloud, config, deadline_ms, budget);
        self.stream
            .write_all(&protocol::encode_message(protocol::request_kind(priority), &payload))?;
        let (code, payload) = self.read_reply()?;
        if code != status::OK {
            return Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            });
        }
        protocol::decode_response_payload(&payload).map_err(ClientError::Protocol)
    }

    /// Opens a progressive-LOD stream ([`OP_STREAM`]) for one frame. The
    /// server answers with a first-paint [`StreamEvent::Chunk`] at this
    /// request's priority, then refinement chunks (server-side
    /// [`Priority::Bulk`]) as credits allow — read them with
    /// [`ServeClient::stream_next`], replenish with
    /// [`ServeClient::stream_credit`], stop early with
    /// [`ServeClient::cancel`]. Zero fields in `open` select the server's
    /// configured defaults.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] for transport failures.
    pub fn stream_open(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
        priority: Priority,
        deadline_ms: u32,
        open: &WireStreamOpen,
    ) -> Result<(), ClientError> {
        let payload = protocol::encode_stream_request_payload(cloud, config, deadline_ms, open);
        self.stream.write_all(&protocol::encode_message(
            protocol::stream_request_kind(priority),
            &payload,
        ))?;
        Ok(())
    }

    /// Reads the next frame of the open stream.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the server aborts the stream with an
    /// error status; [`ClientError::Io`]/[`ClientError::Protocol`] for
    /// transport and framing failures.
    pub fn stream_next(&mut self) -> Result<StreamEvent, ClientError> {
        let (code, payload) = self.read_reply()?;
        match code {
            status::CHUNK => protocol::decode_stream_chunk_payload(&payload)
                .map(StreamEvent::Chunk)
                .map_err(ClientError::Protocol),
            status::STREAM_END => protocol::decode_stream_end_payload(&payload)
                .map(StreamEvent::End)
                .map_err(ClientError::Protocol),
            code => Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            }),
        }
    }

    /// Grants the server one more refinement chunk ([`OP_STREAM_CREDIT`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] for transport failures.
    pub fn stream_credit(&mut self) -> Result<(), ClientError> {
        self.stream.write_all(&protocol::encode_message(OP_STREAM_CREDIT, &[]))?;
        Ok(())
    }

    /// Asks the server to stop refining the open stream
    /// ([`OP_STREAM_CANCEL`]). The server still terminates the stream with
    /// a [`StreamEvent::End`] — keep reading [`ServeClient::stream_next`]
    /// (skipping chunks already in flight) until it arrives. Cancelling a
    /// stream that just completed naturally is harmless: the stray frame is
    /// ignored server-side.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] for transport failures.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        self.stream.write_all(&protocol::encode_message(OP_STREAM_CANCEL, &[]))?;
        Ok(())
    }

    /// Drives one frame's stream to completion: opens it, folds every
    /// chunk into a [`protocol::StreamAccumulator`] (replenishing one
    /// credit per consumed refinement so the window never starves), and
    /// returns the accumulated response — byte-identical to a direct
    /// request with `budget = depth reached` — plus the stream summary.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::stream_next`]; additionally
    /// [`ClientError::Protocol`] when chunks arrive non-contiguous or
    /// geometry-inconsistent.
    pub fn stream_frame(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
        priority: Priority,
        deadline_ms: u32,
        open: &WireStreamOpen,
    ) -> Result<(WireResponse, WireStreamEnd), ClientError> {
        self.stream_open(cloud, config, priority, deadline_ms, open)?;
        let mut acc = protocol::StreamAccumulator::new();
        loop {
            match self.stream_next()? {
                StreamEvent::Chunk(chunk) => {
                    acc.push(&chunk).map_err(ClientError::Protocol)?;
                    if acc.depth() < acc.total() {
                        self.stream_credit()?;
                    }
                }
                StreamEvent::End(end) => return Ok((acc.response(), end)),
            }
        }
    }

    /// Sends one [`Priority::Normal`] inference request ([`OP_INFER`]) and
    /// blocks for its logits.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::infer_with_options`].
    pub fn infer(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        req: &WireInferRequest,
    ) -> Result<WireInferResponse, ClientError> {
        self.infer_with_options(cloud, req, Priority::Normal, 0)
    }

    /// Sends one inference request at the given [`Priority`] with an
    /// optional deadline in milliseconds (0 = server default). The reply's
    /// logits are bit-identical to what [`Engine::submit_infer`] returns
    /// in-process for the same cloud, model, seed, and schedule.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for shed/rejected requests (an unknown model
    /// notation comes back as [`status::INVALID`]),
    /// [`ClientError::Io`]/[`ClientError::Protocol`] for transport and
    /// framing failures.
    pub fn infer_with_options(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        req: &WireInferRequest,
        priority: Priority,
        deadline_ms: u32,
    ) -> Result<WireInferResponse, ClientError> {
        let payload = protocol::encode_infer_request_payload(cloud, req, deadline_ms);
        self.stream.write_all(&protocol::encode_message(
            protocol::infer_request_kind(priority),
            &payload,
        ))?;
        let (code, payload) = self.read_reply()?;
        if code != status::OK {
            return Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            });
        }
        protocol::decode_infer_response_payload(&payload).map_err(ClientError::Protocol)
    }

    /// Reads one response frame: `(status, payload)`.
    fn read_reply(&mut self) -> Result<(u8, Vec<u8>), ClientError> {
        let mut header = [0u8; 9];
        self.stream.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(ClientError::Protocol(WireError("bad response magic")));
        }
        let code = header[4];
        let payload_len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
        if payload_len > protocol::MAX_RESPONSE_PAYLOAD {
            // A declared length this large means a corrupt/hostile stream;
            // refuse before allocating (the connection is desynced anyway).
            return Err(ClientError::Protocol(WireError("response payload exceeds sanity limit")));
        }
        let mut payload = vec![0u8; payload_len];
        self.stream.read_exact(&mut payload)?;
        Ok((code, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_is_deterministic_per_seed() {
        let mut a = RetryPolicy::new(8, 42);
        let mut b = RetryPolicy::new(8, 42);
        let seq_a: Vec<_> = (0..8).map(|i| a.next_delay(i, None).unwrap()).collect();
        let seq_b: Vec<_> = (0..8).map(|i| b.next_delay(i, None).unwrap()).collect();
        assert_eq!(seq_a, seq_b);
        // Delays start in the base window, grow exponentially, and stay
        // within the cap …
        assert!(seq_a[0] >= Duration::from_millis(5) && seq_a[0] < Duration::from_millis(10));
        assert!(*seq_a.last().unwrap() <= Duration::from_secs(1));
        assert!(seq_a[4] > seq_a[0]);
        // … and a different seed jitters differently.
        let mut c = RetryPolicy::new(8, 43);
        let seq_c: Vec<_> = (0..8).map(|i| c.next_delay(i, None).unwrap()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn retry_budget_and_deadline_both_stop_the_loop() {
        let mut p = RetryPolicy::new(2, 7);
        assert!(p.next_delay(0, None).is_some());
        assert!(p.next_delay(1, None).is_some());
        assert!(p.next_delay(2, None).is_none()); // budget exhausted
        assert!(p.next_delay(100, None).is_none());
        // A deadline closer than the backoff delay stops retrying even
        // with budget left — sleeping past it cannot help.
        let mut p = RetryPolicy::new(10, 7).base_delay(Duration::from_millis(50));
        let near = std::time::Instant::now() + Duration::from_millis(1);
        assert!(p.next_delay(0, Some(near)).is_none());
        // A generous deadline leaves the schedule untouched.
        let far = std::time::Instant::now() + Duration::from_secs(60);
        assert!(p.next_delay(0, Some(far)).is_some());
    }

    #[test]
    fn goaway_is_retryable_by_contract() {
        let goaway = ClientError::Server { code: status::GOAWAY, message: "draining".to_owned() };
        assert!(goaway.is_shed());
        let internal =
            ClientError::Server { code: status::INTERNAL_ERROR, message: "boom".to_owned() };
        assert!(!internal.is_shed());
    }
}

//! The `std::net` TCP front-end and its matching client.
//!
//! Thread-per-connection over blocking sockets: the accept loop runs on one
//! thread (non-blocking listener polled at a few hundred Hz so shutdown
//! needs no self-connection tricks), each connection gets a handler thread,
//! and every request inside a connection is processed synchronously through
//! the shared [`Engine`]. Backpressure therefore composes: a flood of
//! connections lands in the same bounded admission queue as in-process
//! callers and sheds with the same counted reasons.

use crate::engine::{Engine, FrameResponse, ServeError, ShedReason};
use crate::protocol::{self, status, WireError, WireResponse, MAGIC, OP_PROCESS_FRAME};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop polls the non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// The TCP front-end. Binds, serves until [`TcpServer::shutdown`], and
/// shares one [`Engine`] across every connection.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections against `engine`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind(addr: impl ToSocketAddrs, engine: Arc<Engine>) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("fc-serve-accept".into())
            .spawn(move || accept_loop(&listener, &engine, &stop2))?;
        Ok(TcpServer { addr: local, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop. Open
    /// connections finish their in-flight request and then close on their
    /// next read (their handler threads are detached and exit on EOF or
    /// error; the engine's own [`Engine::shutdown`] drains in-flight work).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            h.join().expect("accept loop panicked");
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(engine);
                // Handler threads are detached: they exit on EOF/error, and
                // process shutdown tears them down with everything else.
                let _ = std::thread::Builder::new()
                    .name("fc-serve-conn".into())
                    .spawn(move || handle_connection(stream, &engine));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serves one connection: a loop of request → response frames. Returns (and
/// closes the stream) on EOF, protocol violation, or I/O error.
fn handle_connection(mut stream: TcpStream, engine: &Arc<Engine>) {
    // Handlers use blocking reads; the listener's non-blocking flag is
    // inherited on some platforms, so reset it explicitly.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let metrics = engine.metrics_registry();
    loop {
        let mut header = [0u8; 9];
        match read_exact_or_eof(&mut stream, &mut header) {
            Ok(ReadOutcome::Eof) => return, // clean close between requests
            Ok(ReadOutcome::Full) => {}
            Err(_) => {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let opcode = header[4];
        let payload_len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;

        if magic != MAGIC || opcode != OP_PROCESS_FRAME {
            // The stream cannot be resynchronized after a framing error:
            // answer malformed and drop the connection.
            metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(&mut stream, status::MALFORMED, "bad magic or opcode");
            return;
        }
        if payload_len > engine.config().max_payload_bytes() {
            // Refuse to buffer the payload: drain it through a small
            // scratch (bounded memory regardless of the declared size),
            // reply OVERSIZED, and keep the connection usable.
            metrics.shed_oversized.fetch_add(1, Ordering::Relaxed);
            if drain(&mut stream, payload_len).is_err()
                || write_error(
                    &mut stream,
                    status::OVERSIZED,
                    &format!("payload of {payload_len} bytes exceeds the server limit"),
                )
                .is_err()
            {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            continue;
        }

        let mut payload = vec![0u8; payload_len];
        if stream.read_exact(&mut payload).is_err() {
            // Disconnect (or stall) mid-request.
            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }

        let reply = match protocol::decode_request_payload(&payload) {
            Err(WireError(what)) => {
                metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
                let r = write_error(&mut stream, status::MALFORMED, what);
                if r.is_err() {
                    metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                }
                // Framing was intact — the connection may continue.
                continue;
            }
            Ok((cloud, config)) => match engine.process(cloud, config) {
                Ok(resp) => write_ok(&mut stream, &resp),
                Err(e) => write_error(&mut stream, error_status(&e), &e.to_string()),
            },
        };
        if reply.is_err() {
            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Reads and discards `n` bytes through a fixed-size scratch buffer.
fn drain(stream: &mut TcpStream, mut n: usize) -> io::Result<()> {
    let mut scratch = [0u8; 8192];
    while n > 0 {
        let take = n.min(scratch.len());
        stream.read_exact(&mut scratch[..take])?;
        n -= take;
    }
    Ok(())
}

/// Result of an initial header read: clean EOF or a full buffer.
enum ReadOutcome {
    Eof,
    Full,
}

/// Reads exactly `buf.len()` bytes, distinguishing "EOF before any byte"
/// (clean connection close) from "EOF mid-buffer" (error).
fn read_exact_or_eof(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

fn error_status(e: &ServeError) -> u8 {
    match e {
        ServeError::Shed(ShedReason::QueueFull) => status::QUEUE_FULL,
        ServeError::Shed(ShedReason::Oversized { .. }) => status::OVERSIZED,
        ServeError::Shed(ShedReason::ShuttingDown) => status::SHUTTING_DOWN,
        ServeError::Invalid(_) => status::INVALID,
    }
}

fn write_ok(stream: &mut TcpStream, resp: &FrameResponse) -> io::Result<()> {
    let wire = WireResponse {
        sampled_indices: resp.sampled_indices.iter().map(|&i| i as u32).collect(),
        neighbor_indices: resp.neighbor_indices.iter().map(|&i| i as u32).collect(),
        found: resp.found.iter().map(|&i| i as u32).collect(),
        num: resp.num as u32,
        blocks: resp.blocks as u32,
        cache_hit: resp.cache_hit,
        batch_size: resp.batch_size as u32,
    };
    let payload = protocol::encode_response_payload(&wire);
    stream.write_all(&protocol::encode_message(status::OK, &payload))
}

fn write_error(stream: &mut TcpStream, code: u8, message: &str) -> io::Result<()> {
    stream.write_all(&protocol::encode_message(code, message.as_bytes()))
}

/// Errors a [`ServeClient`] call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with a non-OK status.
    Server {
        /// The [`status`] code.
        code: u8,
        /// The server's human-readable reason.
        message: String,
    },
    /// The server's bytes did not parse.
    Protocol(WireError),
}

impl ClientError {
    /// True when the server shed the request (retryable by contract).
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: status::QUEUE_FULL | status::OVERSIZED | status::SHUTTING_DOWN,
                ..
            }
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server status {code}: {message}")
            }
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking client for the TCP front-end.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a running [`TcpServer`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    /// Sends one frame and blocks for its result.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for shed/rejected requests,
    /// [`ClientError::Io`]/[`ClientError::Protocol`] for transport and
    /// framing failures.
    pub fn process(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
    ) -> Result<WireResponse, ClientError> {
        let payload = protocol::encode_request_payload(cloud, config);
        self.stream.write_all(&protocol::encode_message(OP_PROCESS_FRAME, &payload))?;

        let mut header = [0u8; 9];
        self.stream.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(ClientError::Protocol(WireError("bad response magic")));
        }
        let code = header[4];
        let payload_len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
        if payload_len > protocol::MAX_RESPONSE_PAYLOAD {
            // A declared length this large means a corrupt/hostile stream;
            // refuse before allocating (the connection is desynced anyway).
            return Err(ClientError::Protocol(WireError("response payload exceeds sanity limit")));
        }
        let mut payload = vec![0u8; payload_len];
        self.stream.read_exact(&mut payload)?;
        if code != status::OK {
            return Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            });
        }
        protocol::decode_response_payload(&payload).map_err(ClientError::Protocol)
    }
}

//! The `std::net` TCP front-end and its matching client.
//!
//! Thread-per-connection over blocking sockets: the accept loop runs on one
//! thread (non-blocking listener polled at a few hundred Hz so shutdown
//! needs no self-connection tricks), each connection gets a handler thread,
//! and every request inside a connection is processed synchronously through
//! the shared [`Engine`]. Backpressure therefore composes: a flood of
//! connections lands in the same bounded admission queue as in-process
//! callers and sheds with the same counted reasons.
//!
//! Two connection-level protections bound what one client can do to the
//! rest: a **concurrent-connection limit** (`ServeConfig::max_connections`
//! — excess connects are answered `TOO_MANY_CONNECTIONS` and closed, so a
//! connection flood cannot exhaust handler threads), and **round-robin
//! admission** across connections (a FIFO turnstile around engine
//! submission: when several connections have a request ready, queue slots
//! are granted in the order the requests became ready, so a greedy client
//! hammering one connection cannot barge ahead of patiently waiting ones).

use crate::engine::{
    aggregation_wire, Engine, EngineHealth, FrameResponse, InferRequest, InferResponse, Priority,
    ServeError, ShedReason,
};
use crate::faults::{self, FaultLayer, FaultPoint};
use crate::protocol::{
    self, status, WireError, WireInferRequest, WireInferResponse, WireResponse, AGG_DELAYED,
    AGG_EAGER, MAGIC, OP_HEALTH, OP_INFER, OP_METRICS, OP_PROCESS_FRAME, OP_TRACE_DUMP,
};
use fractalcloud_obs as obs;
use fractalcloud_pnn::{Aggregation, ModelConfig};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop polls the non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Most concurrent courtesy-refusal threads (see [`refuse_connection`]);
/// beyond this a refused connection is hard-closed without a status byte,
/// so a refusal flood cannot itself exhaust threads.
const MAX_REFUSAL_THREADS: usize = 32;

/// Longest a refusal thread lingers draining a refused connection.
const REFUSAL_LINGER: Duration = Duration::from_millis(500);

/// FIFO turnstile granting engine-submission turns in ready order across
/// connections — the per-client fairness mechanism: each connection takes
/// a numbered ticket when its request is ready and submits when its number
/// comes up, so a connection that just finished a request joins the back
/// of the line behind every already-waiting peer (round-robin when all
/// connections are saturated) instead of barging on raw lock acquisition.
#[derive(Default)]
struct FairGate {
    state: Mutex<(u64, u64)>, // (next ticket, now serving)
    turn: Condvar,
}

impl FairGate {
    /// Runs `f` when this caller's turn comes up. `f` must be brief (an
    /// engine submission — validation plus a queue push, never the wait
    /// for the response).
    fn admit<T>(&self, f: impl FnOnce() -> T) -> T {
        let mut state = self.state.lock().expect("gate lock");
        let ticket = state.0;
        state.0 += 1;
        while state.1 != ticket {
            state = self.turn.wait(state).expect("gate wait");
        }
        let out = f();
        state.1 += 1;
        drop(state);
        self.turn.notify_all();
        out
    }
}

/// Decrements a thread-count gauge (active connections, or in-flight
/// refusals) when the owning thread exits, however it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The TCP front-end. Binds, serves until [`TcpServer::shutdown`], and
/// shares one [`Engine`] across every connection.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections against `engine`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind(addr: impl ToSocketAddrs, engine: Arc<Engine>) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("fc-serve-accept".into())
            .spawn(move || accept_loop(&listener, &engine, &stop2))?;
        Ok(TcpServer { addr: local, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop. Open
    /// connections finish their in-flight request and then close on their
    /// next read (their handler threads are detached and exit on EOF or
    /// error; the engine's own [`Engine::shutdown`] drains in-flight work).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            h.join().expect("accept loop panicked");
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>, stop: &AtomicBool) {
    let active = Arc::new(AtomicUsize::new(0));
    let refusing = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(FairGate::default());
    let max_connections = engine.config().max_connections;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Connection limit: the accept thread is the only
                // incrementer, so load-then-add cannot race past the bound.
                if active.load(Ordering::SeqCst) >= max_connections {
                    engine.metrics_registry().net_conn_refused.fetch_add(1, Ordering::Relaxed);
                    // Refused on a detached thread: the lingering close
                    // must not stall the accept loop. Refusal threads are
                    // themselves capped — past the cap the connection is
                    // simply dropped, so a refusal flood cannot exhaust
                    // threads either (the status byte is a courtesy, the
                    // bound is the contract).
                    if refusing.load(Ordering::SeqCst) < MAX_REFUSAL_THREADS {
                        refusing.fetch_add(1, Ordering::SeqCst);
                        let guard = ConnGuard(Arc::clone(&refusing));
                        let _ = std::thread::Builder::new().name("fc-serve-refuse".into()).spawn(
                            move || {
                                let _guard = guard;
                                refuse_connection(stream);
                            },
                        );
                    }
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let guard = ConnGuard(Arc::clone(&active));
                let engine = Arc::clone(engine);
                let gate = Arc::clone(&gate);
                // Handler threads are detached: they exit on EOF/error, and
                // process shutdown tears them down with everything else.
                // A handler panic (it shouldn't — the body is total — but
                // the fault layer can inject one) is contained here: the
                // connection drops, the server keeps accepting.
                let _ = std::thread::Builder::new().name("fc-serve-conn".into()).spawn(move || {
                    let _guard = guard;
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(stream, &engine, &gate);
                    }))
                    .is_err()
                    {
                        engine.metrics_registry().net_disconnects.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Answers a connection refused at the limit with a retryable
/// `TOO_MANY_CONNECTIONS` status, then lingers briefly before closing:
/// dropping the socket while the client's first request sits unread in the
/// receive queue would turn the close into a TCP RST that can destroy the
/// refusal before the client reads it. Draining (bounded bytes, bounded
/// time) until the client's EOF lets the FIN path deliver the status.
fn refuse_connection(mut stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if write_error(
        &mut stream,
        status::TOO_MANY_CONNECTIONS,
        "connection limit reached, retry later",
    )
    .is_err()
    {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut scratch = [0u8; 4096];
    // Deadline-bounded courtesy: a trickling client cannot hold this
    // thread past the linger window.
    let deadline = std::time::Instant::now() + REFUSAL_LINGER;
    while std::time::Instant::now() < deadline {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Serves one connection: a loop of request → response frames. Returns (and
/// closes the stream) on EOF, protocol violation, or I/O error.
fn handle_connection(mut stream: TcpStream, engine: &Arc<Engine>, gate: &FairGate) {
    // Handlers use blocking reads; the listener's non-blocking flag is
    // inherited on some platforms, so reset it explicitly.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let metrics = engine.metrics_registry();
    let faults: Option<Arc<FaultLayer>> = engine.fault_layer().clone();
    loop {
        let mut header = [0u8; 9];
        match read_exact_or_eof(&mut stream, &mut header) {
            Ok(ReadOutcome::Eof) => return, // clean close between requests
            Ok(ReadOutcome::Full) => {}
            Err(_) => {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if faults::fire(&faults, FaultPoint::NetRead) {
            // Injected read failure: indistinguishable (to the client) from
            // the peer dying mid-request — the connection just drops.
            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let (opcode, prio_nibble) = protocol::split_kind(header[4]);
        let payload_len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;

        if magic != MAGIC
            || !matches!(
                opcode,
                OP_PROCESS_FRAME | OP_HEALTH | OP_INFER | OP_METRICS | OP_TRACE_DUMP
            )
        {
            // The stream cannot be resynchronized after a framing error:
            // answer malformed and drop the connection.
            metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(&mut stream, status::MALFORMED, "bad magic or opcode");
            return;
        }
        if matches!(opcode, OP_HEALTH | OP_METRICS | OP_TRACE_DUMP) {
            // Answered inline — a health probe or metrics scrape must work
            // even when every worker is wedged, so these never touch the
            // queue.
            if payload_len != 0 {
                metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
                if drain(&mut stream, payload_len).is_err()
                    || write_error(&mut stream, status::MALFORMED, "opcode takes no payload")
                        .is_err()
                {
                    metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                continue;
            }
            let payload = match opcode {
                OP_METRICS => engine.metrics_text().into_bytes(),
                OP_TRACE_DUMP => obs::chrome::trace_json(&obs::drain()).into_bytes(),
                _ => protocol::encode_health_payload(&engine.health()),
            };
            if faults::fire(&faults, FaultPoint::NetWrite)
                || stream.write_all(&protocol::encode_message(status::OK, &payload)).is_err()
            {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            continue;
        }
        // Old clients leave the high nibble zero → Normal; nibbles beyond
        // the known classes are a caller bug, not a framing error, so the
        // connection stays usable.
        let Some(priority) = Priority::from_wire(prio_nibble) else {
            metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
            if drain(&mut stream, payload_len).is_err()
                || write_error(&mut stream, status::MALFORMED, "unknown priority class").is_err()
            {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            continue;
        };
        if payload_len > engine.config().max_payload_bytes() {
            // Refuse to buffer the payload: drain it through a small
            // scratch (bounded memory regardless of the declared size),
            // reply OVERSIZED, and keep the connection usable.
            metrics.shed_oversized.fetch_add(1, Ordering::Relaxed);
            if drain(&mut stream, payload_len).is_err()
                || write_error(
                    &mut stream,
                    status::OVERSIZED,
                    &format!("payload of {payload_len} bytes exceeds the server limit"),
                )
                .is_err()
            {
                metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            continue;
        }

        let mut payload = vec![0u8; payload_len];
        if stream.read_exact(&mut payload).is_err() {
            // Disconnect (or stall) mid-request.
            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }

        let reply = if opcode == OP_INFER {
            match protocol::decode_infer_request_payload(&payload) {
                Err(WireError(what)) => {
                    metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
                    let r = write_error(&mut stream, status::MALFORMED, what);
                    if r.is_err() {
                        metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // Framing was intact — the connection may continue.
                    continue;
                }
                Ok((cloud, wire_req, deadline_ms)) => {
                    // Resolve the notation against the server-side zoo; an
                    // unknown notation is a caller bug, not a framing error.
                    let Some(model) =
                        ModelConfig::table1().into_iter().find(|m| m.notation == wire_req.notation)
                    else {
                        let r = write_error(
                            &mut stream,
                            status::INVALID,
                            &format!("unknown model notation {:?}", wire_req.notation),
                        );
                        if r.is_err() {
                            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        continue;
                    };
                    // The decoder already rejected bytes past AGG_DELAYED,
                    // so the only remaining value is the server default.
                    let aggregation = match wire_req.aggregation {
                        AGG_EAGER => Some(Aggregation::Eager),
                        AGG_DELAYED => Some(Aggregation::Delayed),
                        _ => None,
                    };
                    let req = InferRequest {
                        model,
                        seed: wire_req.seed,
                        threshold: wire_req.threshold as usize,
                        aggregation,
                        priority,
                        deadline: (deadline_ms > 0)
                            .then(|| Duration::from_millis(u64::from(deadline_ms))),
                    };
                    let (trace_req, outcome) =
                        match gate.admit(|| engine.submit_infer(Arc::new(cloud), req)) {
                            Ok(ticket) => (ticket.request_id(), ticket.wait()),
                            Err(e) => (0, Err(e)),
                        };
                    if faults::fire(&faults, FaultPoint::NetWrite) {
                        metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    let _trace = obs::scoped_context(trace_req, priority.index() as u8);
                    match outcome {
                        Ok(resp) => write_infer_ok(&mut stream, &resp),
                        Err(e) => write_error(&mut stream, error_status(&e), &e.to_string()),
                    }
                }
            }
        } else {
            match protocol::decode_request_payload(&payload) {
                Err(WireError(what)) => {
                    metrics.net_malformed.fetch_add(1, Ordering::Relaxed);
                    let r = write_error(&mut stream, status::MALFORMED, what);
                    if r.is_err() {
                        metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // Framing was intact — the connection may continue.
                    continue;
                }
                Ok((cloud, config, deadline_ms)) => {
                    let deadline =
                        (deadline_ms > 0).then(|| Duration::from_millis(u64::from(deadline_ms)));
                    // Round-robin admission: the submission (queue push) takes
                    // its fairness turn; the wait for the response happens
                    // outside the gate so slow frames don't block other
                    // connections' admissions.
                    let (trace_req, outcome) = match gate
                        .admit(|| engine.submit_with_options(cloud, config, priority, deadline))
                    {
                        Ok(ticket) => (ticket.request_id(), ticket.wait()),
                        Err(e) => (0, Err(e)),
                    };
                    if faults::fire(&faults, FaultPoint::NetWrite) {
                        // Injected write failure: the response is computed but
                        // lost on the wire; the client sees the connection die.
                        metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    let _trace = obs::scoped_context(trace_req, priority.index() as u8);
                    match outcome {
                        Ok(resp) => write_ok(&mut stream, &resp),
                        Err(e) => write_error(&mut stream, error_status(&e), &e.to_string()),
                    }
                }
            }
        };
        if reply.is_err() {
            metrics.net_disconnects.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Reads and discards `n` bytes through a fixed-size scratch buffer.
fn drain(stream: &mut TcpStream, mut n: usize) -> io::Result<()> {
    let mut scratch = [0u8; 8192];
    while n > 0 {
        let take = n.min(scratch.len());
        stream.read_exact(&mut scratch[..take])?;
        n -= take;
    }
    Ok(())
}

/// Result of an initial header read: clean EOF or a full buffer.
enum ReadOutcome {
    Eof,
    Full,
}

/// Reads exactly `buf.len()` bytes, distinguishing "EOF before any byte"
/// (clean connection close) from "EOF mid-buffer" (error).
fn read_exact_or_eof(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

fn error_status(e: &ServeError) -> u8 {
    match e {
        ServeError::Shed(ShedReason::QueueFull) => status::QUEUE_FULL,
        ServeError::Shed(ShedReason::Oversized { .. }) => status::OVERSIZED,
        ServeError::Shed(ShedReason::ShuttingDown) => status::SHUTTING_DOWN,
        ServeError::Shed(ShedReason::DeadlineExceeded) => status::DEADLINE_EXCEEDED,
        ServeError::Invalid(_) => status::INVALID,
        ServeError::Internal => status::INTERNAL_ERROR,
    }
}

fn write_ok(stream: &mut TcpStream, resp: &FrameResponse) -> io::Result<()> {
    let encode_span = obs::span(obs::SpanKind::WireEncode, 0);
    let wire = WireResponse {
        sampled_indices: resp.sampled_indices.iter().map(|&i| i as u32).collect(),
        neighbor_indices: resp.neighbor_indices.iter().map(|&i| i as u32).collect(),
        found: resp.found.iter().map(|&i| i as u32).collect(),
        num: resp.num as u32,
        blocks: resp.blocks as u32,
        cache_hit: resp.cache_hit,
        batch_size: resp.batch_size as u32,
    };
    let payload = protocol::encode_response_payload(&wire);
    let message = protocol::encode_message(status::OK, &payload);
    encode_span.done();
    let _write_span = obs::span(obs::SpanKind::WireWrite, 0);
    stream.write_all(&message)
}

fn write_infer_ok(stream: &mut TcpStream, resp: &InferResponse) -> io::Result<()> {
    let encode_span = obs::span(obs::SpanKind::WireEncode, 0);
    let wire = WireInferResponse {
        classes: resp.output.classes as u32,
        cache_hit: resp.cache_hit,
        batch_size: resp.batch_size as u32,
        aggregation: aggregation_wire(resp.aggregation),
        macs_moved: resp.output.counters.macs_moved,
        macs_saved: resp.output.counters.macs_saved,
        gather_bytes: resp.output.counters.gather_bytes,
        row_index: resp.output.row_index.iter().map(|&i| i as u32).collect(),
        // Logits cross as raw LE bit patterns, so the wire response is
        // bit-identical to the in-process one.
        logits: resp.output.logits.clone(),
    };
    let payload = protocol::encode_infer_response_payload(&wire);
    let message = protocol::encode_message(status::OK, &payload);
    encode_span.done();
    let _write_span = obs::span(obs::SpanKind::WireWrite, 0);
    stream.write_all(&message)
}

fn write_error(stream: &mut TcpStream, code: u8, message: &str) -> io::Result<()> {
    stream.write_all(&protocol::encode_message(code, message.as_bytes()))
}

/// Errors a [`ServeClient`] call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with a non-OK status.
    Server {
        /// The [`status`] code.
        code: u8,
        /// The server's human-readable reason.
        message: String,
    },
    /// The server's bytes did not parse.
    Protocol(WireError),
}

impl ClientError {
    /// True when the server shed the request (retryable by contract;
    /// includes [`status::DEADLINE_EXCEEDED`] — retry with a fresh
    /// deadline). [`status::INTERNAL_ERROR`] is deliberately *not* shed:
    /// the same input may fail the same way.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: status::QUEUE_FULL
                    | status::OVERSIZED
                    | status::SHUTTING_DOWN
                    | status::TOO_MANY_CONNECTIONS
                    | status::DEADLINE_EXCEEDED,
                ..
            }
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server status {code}: {message}")
            }
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking client for the TCP front-end.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a running [`TcpServer`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    /// Bounds every subsequent read; a stalled server then surfaces as
    /// [`ClientError::Io`] (`WouldBlock`/`TimedOut`) instead of hanging the
    /// caller forever. `None` restores unbounded reads. Chaos tests use
    /// this to turn "hung" into an assertable outcome.
    ///
    /// # Errors
    ///
    /// Propagates socket configuration failures.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Requests the server's [`EngineHealth`] snapshot ([`OP_HEALTH`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`]/[`ClientError::Protocol`] for transport and
    /// framing failures; [`ClientError::Server`] for non-OK statuses.
    pub fn health(&mut self) -> Result<EngineHealth, ClientError> {
        self.stream.write_all(&protocol::encode_message(OP_HEALTH, &[]))?;
        let (code, payload) = self.read_reply()?;
        if code != status::OK {
            return Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            });
        }
        protocol::decode_health_payload(&payload).map_err(ClientError::Protocol)
    }

    /// Requests the server's Prometheus-style metrics exposition
    /// ([`OP_METRICS`]) — the text [`Engine::metrics_text`] renders.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::health`]; additionally [`ClientError::Protocol`]
    /// when the body is not UTF-8.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        self.text_request(OP_METRICS)
    }

    /// Drains the server's flight recorder ([`OP_TRACE_DUMP`]) as Chrome
    /// trace-event JSON (load into `chrome://tracing` or Perfetto).
    /// Draining consumes: a second dump returns only newer events.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::metrics_text`].
    pub fn trace_dump(&mut self) -> Result<String, ClientError> {
        self.text_request(OP_TRACE_DUMP)
    }

    fn text_request(&mut self, opcode: u8) -> Result<String, ClientError> {
        self.stream.write_all(&protocol::encode_message(opcode, &[]))?;
        let (code, payload) = self.read_reply()?;
        if code != status::OK {
            return Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            });
        }
        String::from_utf8(payload)
            .map_err(|_| ClientError::Protocol(WireError("response body is not UTF-8")))
    }

    /// Sends one [`Priority::Normal`] frame and blocks for its result.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::process_with_priority`].
    pub fn process(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
    ) -> Result<WireResponse, ClientError> {
        self.process_with_priority(cloud, config, Priority::Normal)
    }

    /// Sends one frame at the given [`Priority`] (encoded in the kind
    /// byte's high nibble) and blocks for its result.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for shed/rejected requests,
    /// [`ClientError::Io`]/[`ClientError::Protocol`] for transport and
    /// framing failures.
    pub fn process_with_priority(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
        priority: Priority,
    ) -> Result<WireResponse, ClientError> {
        self.process_with_options(cloud, config, priority, 0)
    }

    /// [`ServeClient::process_with_priority`] with a per-request deadline
    /// in milliseconds (0 = use the server's default). A non-zero deadline
    /// rides the optional payload trailer; an expired request comes back as
    /// the retryable [`status::DEADLINE_EXCEEDED`].
    ///
    /// # Errors
    ///
    /// As [`ServeClient::process_with_priority`].
    pub fn process_with_options(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        config: &fractalcloud_core::PipelineConfig,
        priority: Priority,
        deadline_ms: u32,
    ) -> Result<WireResponse, ClientError> {
        let payload = protocol::encode_request_payload_deadline(cloud, config, deadline_ms);
        self.stream
            .write_all(&protocol::encode_message(protocol::request_kind(priority), &payload))?;
        let (code, payload) = self.read_reply()?;
        if code != status::OK {
            return Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            });
        }
        protocol::decode_response_payload(&payload).map_err(ClientError::Protocol)
    }

    /// Sends one [`Priority::Normal`] inference request ([`OP_INFER`]) and
    /// blocks for its logits.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::infer_with_options`].
    pub fn infer(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        req: &WireInferRequest,
    ) -> Result<WireInferResponse, ClientError> {
        self.infer_with_options(cloud, req, Priority::Normal, 0)
    }

    /// Sends one inference request at the given [`Priority`] with an
    /// optional deadline in milliseconds (0 = server default). The reply's
    /// logits are bit-identical to what [`Engine::submit_infer`] returns
    /// in-process for the same cloud, model, seed, and schedule.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for shed/rejected requests (an unknown model
    /// notation comes back as [`status::INVALID`]),
    /// [`ClientError::Io`]/[`ClientError::Protocol`] for transport and
    /// framing failures.
    pub fn infer_with_options(
        &mut self,
        cloud: &fractalcloud_pointcloud::PointCloud,
        req: &WireInferRequest,
        priority: Priority,
        deadline_ms: u32,
    ) -> Result<WireInferResponse, ClientError> {
        let payload = protocol::encode_infer_request_payload(cloud, req, deadline_ms);
        self.stream.write_all(&protocol::encode_message(
            protocol::infer_request_kind(priority),
            &payload,
        ))?;
        let (code, payload) = self.read_reply()?;
        if code != status::OK {
            return Err(ClientError::Server {
                code,
                message: String::from_utf8_lossy(&payload).into_owned(),
            });
        }
        protocol::decode_infer_response_payload(&payload).map_err(ClientError::Protocol)
    }

    /// Reads one response frame: `(status, payload)`.
    fn read_reply(&mut self) -> Result<(u8, Vec<u8>), ClientError> {
        let mut header = [0u8; 9];
        self.stream.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(ClientError::Protocol(WireError("bad response magic")));
        }
        let code = header[4];
        let payload_len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
        if payload_len > protocol::MAX_RESPONSE_PAYLOAD {
            // A declared length this large means a corrupt/hostile stream;
            // refuse before allocating (the connection is desynced anyway).
            return Err(ClientError::Protocol(WireError("response payload exceeds sanity limit")));
        }
        let mut payload = vec![0u8; payload_len];
        self.stream.read_exact(&mut payload)?;
        Ok((code, payload))
    }
}

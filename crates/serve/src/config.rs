//! Serving-engine configuration and its environment-variable knobs.

use crate::faults::FaultPlan;
use crate::overload::BrownoutConfig;

/// Tunables for [`Engine`](crate::Engine) and the TCP front-end.
///
/// Every knob has a `FRACTALCLOUD_SERVE_*` environment override (see
/// [`ServeConfig::from_env`]); programmatic configuration wins when both are
/// used, since `from_env` is just a constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum queued (admitted but not yet started) requests. Admission
    /// beyond this sheds with [`ShedReason::QueueFull`](crate::ShedReason)
    /// instead of growing the queue — the queue is the *only* buffer, so
    /// memory use is bounded by construction. A capacity of 0 sheds every
    /// request (useful for drain tests and hard maintenance mode).
    pub queue_capacity: usize,
    /// Worker threads pulling batches off the queue.
    pub workers: usize,
    /// Maximum compatible frames fused into one batch by a worker.
    pub max_batch: usize,
    /// Largest admissible frame, in points; larger frames shed with
    /// [`ShedReason::Oversized`](crate::ShedReason). Also bounds how many
    /// payload bytes the TCP front-end will read for one request.
    pub max_points: usize,
    /// Partition-LRU capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Thread budget shared by the requests of one batch: a lone request
    /// gets the whole budget (parallel build + block scheduling), while a
    /// fused batch shares it across the union of the frames' block tasks
    /// (see `batch_blocks`) or, with block batching off, across one
    /// sequential lane per frame.
    pub thread_budget: usize,
    /// Cross-frame block batching: a fused batch flattens the union of all
    /// frames' blocks into one work list and runs a single budgeted
    /// `parallel_map` over `(frame, block)` tasks, each fusing its block's
    /// sampling and grouping — bit-identical results, but the budget
    /// saturates even when frame counts are small and block counts are
    /// large, and each block's data stays hot across its two stages.
    /// Engages when `thread_budget > 1`: with one worker there is nothing
    /// to saturate and the frame-at-a-time order measures slightly faster
    /// (better frame locality), so budget-1 hosts keep it. Off = the
    /// legacy one-sequential-lane-per-frame schedule everywhere (kept for
    /// A/B measurement; `perf_snapshot` reports both).
    pub batch_blocks: bool,
    /// Maximum concurrent TCP connections; further connects are answered
    /// with `status::TOO_MANY_CONNECTIONS` (retryable) and closed.
    pub max_connections: usize,
    /// Default per-request deadline in milliseconds (0 = none). A request
    /// whose deadline passes before execution is shed with the retryable
    /// [`ShedReason::DeadlineExceeded`](crate::ShedReason); one that
    /// expires mid-run is cancelled at the next pipeline stage seam.
    /// Per-request wire deadlines override this default.
    pub deadline_ms: u64,
    /// Streaming first-paint depth in samples: how much of the quality
    /// ordering the first chunk of an [`OP_STREAM`](crate::protocol) frame
    /// carries. The first chunk runs at the requester's priority (it is the
    /// time-to-first-point the viewer sees); refinement chunks are demoted
    /// to [`Priority::Bulk`](crate::Priority). A wire value of 0 selects
    /// this default.
    pub stream_first_paint: usize,
    /// Streaming refinement-chunk size in samples (wire value 0 selects
    /// this default).
    pub stream_chunk: usize,
    /// Default refinement credits granted at stream open: how many chunks
    /// beyond first paint the server pushes before it blocks waiting for
    /// `STREAM_CREDIT` frames (wire value 0 selects this default).
    pub stream_credits: usize,
    /// Seeded fault-injection plan ([`FaultPlan::OFF`] outside chaos
    /// testing; the `FRACTALCLOUD_FAULTS` environment plan by default, so
    /// an exported spec soaks everything built on [`ServeConfig`]).
    pub faults: FaultPlan,
    /// Adaptive brown-out controller tunables (see
    /// [`BrownoutConfig`]); overridable via `FRACTALCLOUD_SERVE_BROWNOUT`
    /// (`off` | `on` | `force:N` | `adaptive:esc_us,relax_us,dwell_ms`).
    pub brownout: BrownoutConfig,
    /// Per-connection socket read/write timeout in milliseconds (slow-peer
    /// defense: a slow-loris writer or a peer that stops reading trips the
    /// timeout and the connection closes, freeing its slot). 0 disables.
    pub idle_timeout_ms: u64,
}

impl ServeConfig {
    /// Builds a configuration from the environment, falling back to
    /// defaults:
    ///
    /// | variable | default |
    /// |---|---|
    /// | `FRACTALCLOUD_SERVE_QUEUE` | 64 |
    /// | `FRACTALCLOUD_SERVE_WORKERS` | [`fractalcloud_parallel::workers`] |
    /// | `FRACTALCLOUD_SERVE_BATCH` | 8 |
    /// | `FRACTALCLOUD_SERVE_MAX_POINTS` | 1_048_576 |
    /// | `FRACTALCLOUD_SERVE_CACHE` | 32 |
    /// | `FRACTALCLOUD_SERVE_BATCH_BLOCKS` | 1 (`0` = legacy per-frame lanes) |
    /// | `FRACTALCLOUD_SERVE_CONNS` | 64 |
    /// | `FRACTALCLOUD_SERVE_DEADLINE_MS` | 0 (no default deadline) |
    /// | `FRACTALCLOUD_SERVE_STREAM_FIRST_PAINT` | 512 |
    /// | `FRACTALCLOUD_SERVE_STREAM_CHUNK` | 4096 |
    /// | `FRACTALCLOUD_SERVE_STREAM_CREDITS` | 4 |
    /// | `FRACTALCLOUD_SERVE_BROWNOUT` | on (adaptive; see [`BrownoutConfig::parse`]) |
    /// | `FRACTALCLOUD_SERVE_IDLE_TIMEOUT_MS` | 30_000 (0 = no socket timeouts) |
    /// | `FRACTALCLOUD_FAULTS` | off (see [`FaultPlan::parse`]) |
    ///
    /// The thread budget always follows the process-wide worker pool
    /// (`FRACTALCLOUD_THREADS`-overridable), keeping one knob for "how much
    /// CPU may point-cloud work use".
    pub fn from_env() -> ServeConfig {
        let def = ServeConfig::default();
        ServeConfig {
            queue_capacity: env_usize("FRACTALCLOUD_SERVE_QUEUE").unwrap_or(def.queue_capacity),
            workers: env_usize("FRACTALCLOUD_SERVE_WORKERS").unwrap_or(def.workers).max(1),
            max_batch: env_usize("FRACTALCLOUD_SERVE_BATCH").unwrap_or(def.max_batch).max(1),
            max_points: env_usize("FRACTALCLOUD_SERVE_MAX_POINTS").unwrap_or(def.max_points),
            cache_capacity: env_usize("FRACTALCLOUD_SERVE_CACHE").unwrap_or(def.cache_capacity),
            thread_budget: def.thread_budget,
            batch_blocks: env_usize("FRACTALCLOUD_SERVE_BATCH_BLOCKS")
                .map_or(def.batch_blocks, |v| v != 0),
            max_connections: env_usize("FRACTALCLOUD_SERVE_CONNS")
                .unwrap_or(def.max_connections)
                .max(1),
            deadline_ms: env_usize("FRACTALCLOUD_SERVE_DEADLINE_MS")
                .map_or(def.deadline_ms, |v| v as u64),
            stream_first_paint: env_usize("FRACTALCLOUD_SERVE_STREAM_FIRST_PAINT")
                .unwrap_or(def.stream_first_paint)
                .max(1),
            stream_chunk: env_usize("FRACTALCLOUD_SERVE_STREAM_CHUNK")
                .unwrap_or(def.stream_chunk)
                .max(1),
            stream_credits: env_usize("FRACTALCLOUD_SERVE_STREAM_CREDITS")
                .unwrap_or(def.stream_credits)
                .max(1),
            faults: def.faults,
            brownout: std::env::var("FRACTALCLOUD_SERVE_BROWNOUT")
                .map_or(def.brownout, |s| BrownoutConfig::parse(&s, def.brownout)),
            idle_timeout_ms: env_usize("FRACTALCLOUD_SERVE_IDLE_TIMEOUT_MS")
                .map_or(def.idle_timeout_ms, |v| v as u64),
        }
    }

    /// Returns `self` with the given admission-queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Returns `self` with the given worker-thread count (minimum 1).
    pub fn workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers.max(1);
        self
    }

    /// Returns `self` with the given maximum batch size (minimum 1).
    pub fn max_batch(mut self, max_batch: usize) -> ServeConfig {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Returns `self` with the given per-frame point limit.
    pub fn max_points(mut self, max_points: usize) -> ServeConfig {
        self.max_points = max_points;
        self
    }

    /// Returns `self` with the given partition-cache capacity.
    pub fn cache_capacity(mut self, cache_capacity: usize) -> ServeConfig {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Returns `self` with the given batch thread budget (minimum 1).
    pub fn thread_budget(mut self, thread_budget: usize) -> ServeConfig {
        self.thread_budget = thread_budget.max(1);
        self
    }

    /// Returns `self` with cross-frame block batching on or off.
    pub fn batch_blocks(mut self, batch_blocks: bool) -> ServeConfig {
        self.batch_blocks = batch_blocks;
        self
    }

    /// Returns `self` with the given concurrent-connection limit (minimum 1).
    pub fn max_connections(mut self, max_connections: usize) -> ServeConfig {
        self.max_connections = max_connections.max(1);
        self
    }

    /// Returns `self` with the given default request deadline (0 = none).
    pub fn deadline_ms(mut self, deadline_ms: u64) -> ServeConfig {
        self.deadline_ms = deadline_ms;
        self
    }

    /// Returns `self` with the given streaming first-paint depth
    /// (minimum 1 sample).
    pub fn stream_first_paint(mut self, samples: usize) -> ServeConfig {
        self.stream_first_paint = samples.max(1);
        self
    }

    /// Returns `self` with the given streaming refinement-chunk size
    /// (minimum 1 sample).
    pub fn stream_chunk(mut self, samples: usize) -> ServeConfig {
        self.stream_chunk = samples.max(1);
        self
    }

    /// Returns `self` with the given default refinement-credit grant
    /// (minimum 1 chunk).
    pub fn stream_credits(mut self, credits: usize) -> ServeConfig {
        self.stream_credits = credits.max(1);
        self
    }

    /// Returns `self` with the given fault-injection plan (chaos tests);
    /// [`FaultPlan::OFF`] restores fault-free serving.
    pub fn faults(mut self, faults: FaultPlan) -> ServeConfig {
        self.faults = faults;
        self
    }

    /// Returns `self` with the given brown-out controller tunables.
    pub fn brownout(mut self, brownout: BrownoutConfig) -> ServeConfig {
        self.brownout = brownout;
        self
    }

    /// Returns `self` with the given per-connection socket timeout in
    /// milliseconds (0 disables slow-peer timeouts).
    pub fn idle_timeout_ms(mut self, idle_timeout_ms: u64) -> ServeConfig {
        self.idle_timeout_ms = idle_timeout_ms;
        self
    }

    /// Largest request payload the TCP front-end accepts, in bytes (the
    /// fixed request-parameter block plus `max_points` xyz triplets plus
    /// the largest optional trailer, so a maximal frame still streams).
    pub fn max_payload_bytes(&self) -> usize {
        crate::protocol::REQUEST_FIXED_BYTES
            + self.max_points.saturating_mul(12)
            + crate::protocol::REQUEST_TRAILER_MAX_BYTES
    }
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 64,
            workers: fractalcloud_parallel::workers(),
            max_batch: 8,
            max_points: 1 << 20,
            cache_capacity: 32,
            thread_budget: fractalcloud_parallel::workers(),
            batch_blocks: true,
            max_connections: 64,
            deadline_ms: 0,
            stream_first_paint: 512,
            stream_chunk: 4096,
            stream_credits: 4,
            faults: FaultPlan::from_env(),
            brownout: BrownoutConfig::default(),
            idle_timeout_ms: 30_000,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_minimums() {
        let c = ServeConfig::default().workers(0).max_batch(0).thread_budget(0);
        assert_eq!(c.workers, 1);
        assert_eq!(c.max_batch, 1);
        assert_eq!(c.thread_budget, 1);
    }

    #[test]
    fn zero_capacity_queue_is_representable() {
        let c = ServeConfig::default().queue_capacity(0);
        assert_eq!(c.queue_capacity, 0);
    }

    #[test]
    fn payload_bound_tracks_max_points() {
        let c = ServeConfig::default().max_points(10);
        assert_eq!(
            c.max_payload_bytes(),
            crate::protocol::REQUEST_FIXED_BYTES + 120 + crate::protocol::REQUEST_TRAILER_MAX_BYTES
        );
    }

    #[test]
    fn stream_builders_clamp_minimums() {
        let c = ServeConfig::default().stream_first_paint(0).stream_chunk(0).stream_credits(0);
        assert_eq!(c.stream_first_paint, 1);
        assert_eq!(c.stream_chunk, 1);
        assert_eq!(c.stream_credits, 1);
    }
}

//! # fractalcloud-serve: batched request serving for partition + BPPO
//!
//! The front door the ROADMAP's "millions of users" north star needs: a
//! request/response engine that turns the FractalCloud library into a
//! service. A *frame* (one LiDAR-scale point cloud plus a
//! [`PipelineConfig`]) goes in; the block-FPS samples and ball-query groups
//! — bit-identical to direct [`fractalcloud_core`] calls on every kernel
//! backend — come out.
//!
//! The moving parts, one module each:
//!
//! * [`ServeConfig`] — tunables with `FRACTALCLOUD_SERVE_*` env overrides;
//! * [`Engine`] — bounded admission queue with [`Priority`] classes
//!   (weighted dequeue, Bulk-sheds-first displacement at the bound) and
//!   counted load-shedding (never unbounded growth), an adaptive batcher
//!   fusing compatible frames, **cross-frame block batching** (a fused
//!   batch runs ONE budgeted `parallel_map` over the union of all frames'
//!   `(frame, block)` tasks — bit-identical results, saturated thread
//!   budget) layered on
//!   [`fractalcloud_parallel::parallel_map_budget`], and a partition LRU
//!   ([`cache`]) keyed by frame hash;
//! * [`Metrics`] — per-stage counters (global and per priority class),
//!   queue-depth gauges, and log-bucketed p50/p99 latency histograms;
//! * [`protocol`] — the length-prefixed little-endian wire format (the
//!   request kind byte carries the priority in its high nibble, Normal =
//!   0 for backward compatibility);
//! * [`TcpServer`]/[`ServeClient`] — a plain `std::net` TCP front-end
//!   (threads, no async runtime) with a concurrent-connection limit,
//!   round-robin admission across connections, and per-connection socket
//!   timeouts, plus its blocking client (self-healing via [`RetryPolicy`]:
//!   seeded backoff, reconnect-and-replay on GOAWAY or transport death);
//! * [`overload`](OverloadLevel) — graceful degradation: an adaptive
//!   brown-out controller ([`BrownoutConfig`]) watches queue waits and
//!   deadline sheds, and under pressure serves non-High frames at a
//!   reduced LOD budget (each degraded response is the exact
//!   `budget_served`-sample prefix of the full run — quality fades, wire
//!   contracts hold), escalating to shed-mode at the top level;
//!   [`Engine::drain`]/[`Engine::resume`] give zero-downtime maintenance
//!   (work answered GOAWAY, in-flight requests finish, probes stay live).
//!
//! Beyond frames, the engine serves end-to-end **network inference**
//! (`INFER` on the wire, [`Engine::submit_infer`] in-process): the frame
//! path's partition + stage-1 sampling/grouping feeds a
//! [`fractalcloud_pnn::NetworkExecutor`] with selectable eager vs Mesorasi
//! delayed [`Aggregation`] — bit-identical logits either way, in-process or
//! over TCP. Warmed serving is allocation-free end to end: submit with
//! [`Engine::process_shared`] / [`Engine::process_infer`] and return
//! response buffers with [`Engine::recycle`] / [`Engine::recycle_infer`].
//!
//! # Quickstart
//!
//! ```
//! use fractalcloud_serve::{Engine, ServeConfig, ServeClient, TcpServer};
//! use fractalcloud_core::PipelineConfig;
//! use fractalcloud_pointcloud::generate::uniform_cube;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::start(ServeConfig::default().workers(2)));
//! let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine))?;
//!
//! let mut client = ServeClient::connect(server.local_addr())?;
//! let reply = client.process(&uniform_cube(1024, 7), &PipelineConfig::default()).unwrap();
//! assert_eq!(reply.sampled_indices.len(), 256);
//!
//! server.shutdown();
//! engine.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
mod config;
mod engine;
pub mod faults;
mod metrics;
mod net;
mod overload;
pub mod protocol;

pub use config::ServeConfig;
pub use engine::{
    Engine, EngineHealth, FrameResponse, InferRequest, InferResponse, InferTicket, Priority,
    ServeError, ShedReason, StreamChunkResponse, StreamTicket, Ticket,
};
pub use faults::{FaultKind, FaultPlan, FaultPoint};
// Re-exported so serve clients can build an [`InferRequest`] without
// depending on the pnn crate directly.
pub use fractalcloud_pnn::{Aggregation, ModelConfig};
pub use metrics::{LatencyHistogram, Metrics, MetricsSnapshot};
pub use net::{ClientError, RetryPolicy, ServeClient, StreamEvent, TcpServer};
pub use overload::{BrownoutConfig, OverloadLevel};

//! Per-stage serving metrics: admission/shed counters, queue-depth gauges,
//! batch statistics, cache hit rates, and log-bucketed latency histograms.
//!
//! Everything is lock-free atomics so the hot path (admission, completion)
//! never contends with scrapes; [`Metrics::snapshot`] reads a consistent
//! *approximate* view (counters may advance between loads, which is the
//! usual contract for monitoring counters).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log₂ microsecond buckets in a [`LatencyHistogram`]
/// (bucket 39 ≈ 2³⁸ µs ≈ 76 h — effectively "anything slower").
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram over microseconds.
///
/// Bucket `i` counts samples with `floor(log₂(µs)) == i` (bucket 0 holds
/// sub-microsecond and 1 µs samples). Quantiles are answered with the upper
/// bound of the bucket the quantile falls in, so `quantile_us` over-reports
/// by at most 2× — plenty for p50/p99 shed/latency dashboards, with zero
/// allocation and constant memory.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total_us: AtomicU64,
    samples: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_us: AtomicU64::new(0),
            samples: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 with no samples).
    pub fn mean_us(&self) -> u64 {
        self.total_us.load(Ordering::Relaxed).checked_div(self.samples()).unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket containing quantile `q` in `[0, 1]`.
    ///
    /// An **empty** histogram returns 0 for every `q` — "no latency
    /// observed yet", deliberately distinct from every recordable sample
    /// (the smallest bucket's upper bound is 2), so dashboards can tell
    /// "no data" from "fast". Samples at or beyond bucket 39 saturate
    /// there and report its upper bound (2⁴⁰ µs).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.samples();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// All counters the engine and TCP front-end maintain.
#[derive(Debug)]
pub struct Metrics {
    /// Requests offered to [`Engine::submit`](crate::Engine::submit).
    pub submitted: AtomicU64,
    /// Requests admitted to the queue.
    pub admitted: AtomicU64,
    /// Requests shed: queue at capacity.
    pub shed_queue_full: AtomicU64,
    /// Requests shed: frame larger than `max_points`.
    pub shed_oversized: AtomicU64,
    /// Requests shed: engine shutting down.
    pub shed_shutdown: AtomicU64,
    /// Requests rejected before queueing: invalid parameters / empty frame.
    pub rejected_invalid: AtomicU64,
    /// Requests completed (response delivered).
    pub completed: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Frames executed across all batches (`/ batches` = mean batch size).
    pub batched_frames: AtomicU64,
    /// Partition-cache hits.
    pub cache_hits: AtomicU64,
    /// Partition-cache misses.
    pub cache_misses: AtomicU64,
    /// Current queue depth (gauge).
    pub queue_depth: AtomicU64,
    /// High-water queue depth since start.
    pub peak_queue_depth: AtomicU64,
    /// TCP connections that disconnected mid-request or errored.
    pub net_disconnects: AtomicU64,
    /// TCP requests rejected as malformed (bad magic/opcode/size).
    pub net_malformed: AtomicU64,
    /// TCP connections refused at the concurrent-connection limit.
    pub net_conn_refused: AtomicU64,
    /// Requests shed because their deadline expired before execution
    /// (in the queue, at batch assembly, or at a pipeline stage seam).
    pub shed_deadline: AtomicU64,
    /// Requests resolved with the non-retryable internal-error status
    /// because their executor panicked (or an injected `err` fault fired).
    pub failed_internal: AtomicU64,
    /// Worker panics survived (each isolated to the batch it was running).
    pub worker_panics: AtomicU64,
    /// Replacement workers spawned by panic supervision.
    pub workers_respawned: AtomicU64,
    /// Worker threads currently alive (gauge).
    pub workers_alive: AtomicU64,
    /// Faults injected by the seeded fault layer (all points and kinds);
    /// stays 0 when `FRACTALCLOUD_FAULTS` is unset.
    pub faults_injected: AtomicU64,
    /// Milliseconds from `epoch` to the most recent published response
    /// (0 until the first response) — the liveness clock behind
    /// [`Engine::health`](crate::Engine::health).
    pub last_progress_ms: AtomicU64,
    /// When this metrics registry was created (the engine's start).
    epoch: Instant,
    /// Queue-bound sheds per priority class (indexed by
    /// [`Priority::index`](crate::Priority::index): High, Normal, Bulk) —
    /// counts both direct queue-full sheds and jobs displaced at the bound
    /// by a higher class.
    pub shed_by_class: [AtomicU64; 3],
    /// End-to-end latency (admission → response ready).
    pub latency: LatencyHistogram,
    /// End-to-end latency per priority class (same indexing as
    /// `shed_by_class`).
    pub latency_by_class: [LatencyHistogram; 3],
    /// Queue-wait latency (admission → batch start).
    pub queue_wait: LatencyHistogram,
    /// Queue-wait latency per priority class (same indexing as
    /// `shed_by_class`) — covers every work kind, so INFER traffic shows in
    /// the same percentiles as frames.
    pub queue_wait_by_class: [LatencyHistogram; 3],
    /// Progressive-LOD streams opened (`OP_STREAM` requests accepted).
    pub streams_opened: AtomicU64,
    /// Refinement chunks computed and handed to the wire across all
    /// streams — incremented by the *engine* when a chunk job executes, so
    /// a cancelled stream provably stops advancing this counter.
    pub stream_chunks_sent: AtomicU64,
    /// Streams ended early by an explicit `STREAM_CANCEL` frame.
    pub streams_cancelled: AtomicU64,
    /// Streams closed for any reason (completion, cancel, disconnect,
    /// shed). `streams_opened - streams_closed` is the live-stream gauge;
    /// a persistent gap means a hung stream.
    pub streams_closed: AtomicU64,
    /// MACs executed point-granular by delayed aggregation, summed over all
    /// inference served (from each forward pass's `OpCounters`).
    pub op_macs_moved: AtomicU64,
    /// MACs avoided versus eager aggregation, summed over all inference.
    pub op_macs_saved: AtomicU64,
    /// Bytes gathered into dense MLP inputs by eager aggregation, summed
    /// over all inference.
    pub op_gather_bytes: AtomicU64,
    /// Responses served degraded under brown-out, indexed
    /// `[class][level - 1]` (class per
    /// [`Priority::index`](crate::Priority::index); brown-out levels 1–3).
    /// High priority is never degraded, so its row provably stays zero.
    pub requests_degraded: [[AtomicU64; 3]; 3],
    /// `GOAWAY` statuses written to draining connections.
    pub goaway_sent: AtomicU64,
    /// Connections that closed after receiving at least one `GOAWAY`.
    pub connections_drained: AtomicU64,
    /// Client-side retries reported into this registry
    /// ([`Metrics::record_retries`]) — in-process harnesses fold their
    /// [`RetryPolicy`](crate::RetryPolicy) activity in here so one scrape
    /// shows both sides of a storm.
    pub retries_total: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_oversized: AtomicU64::new(0),
            shed_shutdown: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_frames: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            peak_queue_depth: AtomicU64::new(0),
            net_disconnects: AtomicU64::new(0),
            net_malformed: AtomicU64::new(0),
            net_conn_refused: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            failed_internal: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            workers_alive: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            last_progress_ms: AtomicU64::new(0),
            epoch: Instant::now(),
            shed_by_class: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: LatencyHistogram::default(),
            latency_by_class: std::array::from_fn(|_| LatencyHistogram::default()),
            queue_wait: LatencyHistogram::default(),
            queue_wait_by_class: std::array::from_fn(|_| LatencyHistogram::default()),
            streams_opened: AtomicU64::new(0),
            stream_chunks_sent: AtomicU64::new(0),
            streams_cancelled: AtomicU64::new(0),
            streams_closed: AtomicU64::new(0),
            op_macs_moved: AtomicU64::new(0),
            op_macs_saved: AtomicU64::new(0),
            op_gather_bytes: AtomicU64::new(0),
            requests_degraded: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            goaway_sent: AtomicU64::new(0),
            connections_drained: AtomicU64::new(0),
            retries_total: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Records a new queue depth, maintaining the high-water mark.
    pub fn set_queue_depth(&self, depth: usize) {
        let d = depth as u64;
        self.queue_depth.store(d, Ordering::Relaxed);
        self.peak_queue_depth.fetch_max(d, Ordering::Relaxed);
    }

    /// Stamps the liveness clock: "a response was just published".
    pub fn note_progress(&self) {
        let now_ms = self.epoch.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        self.last_progress_ms.fetch_max(now_ms, Ordering::Relaxed);
    }

    /// Milliseconds since the last published response (since the registry's
    /// creation when nothing has completed yet).
    pub fn progress_age_ms(&self) -> u64 {
        let now_ms = self.epoch.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        now_ms.saturating_sub(self.last_progress_ms.load(Ordering::Relaxed))
    }

    /// Milliseconds since this registry was created (the engine's start).
    pub fn uptime_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    }

    /// Folds `n` client-side retries into `retries_total` — the hook an
    /// in-process harness uses to account its
    /// [`RetryPolicy`](crate::RetryPolicy) activity against the engine it
    /// was retrying.
    pub fn record_retries(&self, n: u64) {
        self.retries_total.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes an approximate point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: load(&self.submitted),
            admitted: load(&self.admitted),
            shed_queue_full: load(&self.shed_queue_full),
            shed_oversized: load(&self.shed_oversized),
            shed_shutdown: load(&self.shed_shutdown),
            rejected_invalid: load(&self.rejected_invalid),
            completed: load(&self.completed),
            batches: load(&self.batches),
            batched_frames: load(&self.batched_frames),
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            queue_depth: load(&self.queue_depth),
            peak_queue_depth: load(&self.peak_queue_depth),
            net_disconnects: load(&self.net_disconnects),
            net_malformed: load(&self.net_malformed),
            net_conn_refused: load(&self.net_conn_refused),
            shed_deadline: load(&self.shed_deadline),
            failed_internal: load(&self.failed_internal),
            worker_panics: load(&self.worker_panics),
            workers_respawned: load(&self.workers_respawned),
            workers_alive: load(&self.workers_alive),
            faults_injected: load(&self.faults_injected),
            shed_by_class: std::array::from_fn(|i| load(&self.shed_by_class[i])),
            latency_p99_by_class_us: std::array::from_fn(|i| {
                self.latency_by_class[i].quantile_us(0.99)
            }),
            completed_by_class: std::array::from_fn(|i| self.latency_by_class[i].samples()),
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p99_us: self.latency.quantile_us(0.99),
            latency_mean_us: self.latency.mean_us(),
            queue_wait_p99_us: self.queue_wait.quantile_us(0.99),
            queue_wait_p99_by_class_us: std::array::from_fn(|i| {
                self.queue_wait_by_class[i].quantile_us(0.99)
            }),
            streams_opened: load(&self.streams_opened),
            stream_chunks_sent: load(&self.stream_chunks_sent),
            streams_cancelled: load(&self.streams_cancelled),
            streams_closed: load(&self.streams_closed),
            op_macs_moved: load(&self.op_macs_moved),
            op_macs_saved: load(&self.op_macs_saved),
            op_gather_bytes: load(&self.op_gather_bytes),
            requests_degraded: std::array::from_fn(|c| {
                std::array::from_fn(|l| load(&self.requests_degraded[c][l]))
            }),
            goaway_sent: load(&self.goaway_sent),
            connections_drained: load(&self.connections_drained),
            retries_total: load(&self.retries_total),
        }
    }
}

/// A plain-data copy of [`Metrics`] for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Requests offered.
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Shed: queue at capacity.
    pub shed_queue_full: u64,
    /// Shed: oversized frame.
    pub shed_oversized: u64,
    /// Shed: shutting down.
    pub shed_shutdown: u64,
    /// Rejected: invalid parameters / empty frame.
    pub rejected_invalid: u64,
    /// Responses delivered.
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Frames across all batches.
    pub batched_frames: u64,
    /// Partition-cache hits.
    pub cache_hits: u64,
    /// Partition-cache misses.
    pub cache_misses: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// High-water queue depth.
    pub peak_queue_depth: u64,
    /// TCP disconnects/errors.
    pub net_disconnects: u64,
    /// Malformed TCP requests.
    pub net_malformed: u64,
    /// TCP connections refused at the connection limit.
    pub net_conn_refused: u64,
    /// Shed: deadline expired before execution.
    pub shed_deadline: u64,
    /// Resolved with the internal-error status (executor panicked).
    pub failed_internal: u64,
    /// Worker panics survived.
    pub worker_panics: u64,
    /// Replacement workers spawned by supervision.
    pub workers_respawned: u64,
    /// Worker threads alive at snapshot time.
    pub workers_alive: u64,
    /// Faults injected by the seeded fault layer.
    pub faults_injected: u64,
    /// Queue-bound sheds per priority class (High, Normal, Bulk).
    pub shed_by_class: [u64; 3],
    /// p99 end-to-end latency per priority class (µs, bucket upper bound).
    pub latency_p99_by_class_us: [u64; 3],
    /// Responses delivered per priority class.
    pub completed_by_class: [u64; 3],
    /// p50 end-to-end latency (µs, bucket upper bound).
    pub latency_p50_us: u64,
    /// p99 end-to-end latency (µs, bucket upper bound).
    pub latency_p99_us: u64,
    /// Mean end-to-end latency (µs, exact).
    pub latency_mean_us: u64,
    /// p99 queue wait (µs, bucket upper bound).
    pub queue_wait_p99_us: u64,
    /// p99 queue wait per priority class (µs, bucket upper bound).
    pub queue_wait_p99_by_class_us: [u64; 3],
    /// Progressive-LOD streams opened.
    pub streams_opened: u64,
    /// Refinement chunks computed across all streams (engine-side count).
    pub stream_chunks_sent: u64,
    /// Streams ended early by explicit cancel.
    pub streams_cancelled: u64,
    /// Streams closed for any reason (`opened - closed` = live gauge).
    pub streams_closed: u64,
    /// MACs executed point-granular by delayed aggregation (all inference).
    pub op_macs_moved: u64,
    /// MACs avoided versus eager aggregation (all inference).
    pub op_macs_saved: u64,
    /// Bytes gathered into dense MLP inputs by eager aggregation.
    pub op_gather_bytes: u64,
    /// Responses served degraded under brown-out, `[class][level - 1]`.
    pub requests_degraded: [[u64; 3]; 3],
    /// `GOAWAY` statuses written to draining connections.
    pub goaway_sent: u64,
    /// Connections closed after receiving at least one `GOAWAY`.
    pub connections_drained: u64,
    /// Client-side retries folded into this registry.
    pub retries_total: u64,
}

impl MetricsSnapshot {
    /// Total shed requests across every reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_oversized + self.shed_shutdown + self.shed_deadline
    }

    /// Total responses served degraded, across every class and level.
    pub fn degraded_total(&self) -> u64 {
        self.requests_degraded.iter().flatten().sum()
    }

    /// Mean frames per executed batch (1.0 when nothing ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            self.batched_frames as f64 / self.batches as f64
        }
    }
}

/// Priority-class label values, [`Priority::index`](crate::Priority::index)
/// order.
const CLASS_NAMES: [&str; 3] = ["high", "normal", "bulk"];

/// Renders a snapshot + health view (plus the fault layer's per-point
/// injection counts) as Prometheus-style text — the body the `METRICS` wire
/// opcode and [`Engine::metrics_text`](crate::Engine::metrics_text) serve.
/// Every line matches the grammar [`fractalcloud_obs::expo`] documents.
pub(crate) fn render_prometheus(
    s: &MetricsSnapshot,
    h: &crate::EngineHealth,
    fault_points: &[(&'static str, u64)],
) -> String {
    use fractalcloud_obs::expo::line;
    let mut out = String::with_capacity(2048);
    let u = |out: &mut String, name: &str, v: u64| line(out, name, &[], v as f64);

    u(&mut out, "fractalcloud_uptime_ms", h.uptime_ms);
    line(&mut out, "fractalcloud_live", &[], f64::from(u8::from(h.live)));
    for (outcome, v) in [
        ("submitted", s.submitted),
        ("admitted", s.admitted),
        ("completed", s.completed),
        ("rejected_invalid", s.rejected_invalid),
        ("failed_internal", s.failed_internal),
    ] {
        line(&mut out, "fractalcloud_requests_total", &[("outcome", outcome)], v as f64);
    }
    for (reason, v) in [
        ("queue_full", s.shed_queue_full),
        ("oversized", s.shed_oversized),
        ("shutdown", s.shed_shutdown),
        ("deadline", s.shed_deadline),
    ] {
        line(&mut out, "fractalcloud_shed_total", &[("reason", reason)], v as f64);
    }
    for (i, class) in CLASS_NAMES.iter().enumerate() {
        line(
            &mut out,
            "fractalcloud_shed_by_class_total",
            &[("class", class)],
            s.shed_by_class[i] as f64,
        );
        line(
            &mut out,
            "fractalcloud_completed_by_class_total",
            &[("class", class)],
            s.completed_by_class[i] as f64,
        );
        line(
            &mut out,
            "fractalcloud_latency_p99_us",
            &[("class", class)],
            s.latency_p99_by_class_us[i] as f64,
        );
        line(
            &mut out,
            "fractalcloud_queue_wait_p99_us",
            &[("class", class)],
            s.queue_wait_p99_by_class_us[i] as f64,
        );
        line(&mut out, "fractalcloud_queued", &[("class", class)], h.queued_by_class[i] as f64);
    }
    for (stat, v) in
        [("p50", s.latency_p50_us), ("p99", s.latency_p99_us), ("mean", s.latency_mean_us)]
    {
        line(&mut out, "fractalcloud_latency_us", &[("stat", stat)], v as f64);
    }
    u(&mut out, "fractalcloud_queue_wait_p99_us_all", s.queue_wait_p99_us);
    u(&mut out, "fractalcloud_batches_total", s.batches);
    u(&mut out, "fractalcloud_batched_frames_total", s.batched_frames);
    line(&mut out, "fractalcloud_mean_batch", &[], s.mean_batch());
    for (kind, v) in [("hit", s.cache_hits), ("miss", s.cache_misses)] {
        line(&mut out, "fractalcloud_partition_cache_total", &[("kind", kind)], v as f64);
    }
    u(&mut out, "fractalcloud_queue_depth", s.queue_depth);
    u(&mut out, "fractalcloud_queue_depth_peak", s.peak_queue_depth);
    for (event, v) in [
        ("disconnects", s.net_disconnects),
        ("malformed", s.net_malformed),
        ("conn_refused", s.net_conn_refused),
    ] {
        line(&mut out, "fractalcloud_net_total", &[("event", event)], v as f64);
    }
    for (state, v) in [("alive", h.workers_alive), ("configured", h.workers_configured)] {
        line(&mut out, "fractalcloud_workers", &[("state", state)], v as f64);
    }
    u(&mut out, "fractalcloud_worker_panics_total", s.worker_panics);
    u(&mut out, "fractalcloud_workers_respawned_total", s.workers_respawned);
    u(&mut out, "fractalcloud_last_progress_age_ms", h.last_progress_age_ms);
    u(&mut out, "fractalcloud_faults_injected_total", s.faults_injected);
    for (point, v) in fault_points {
        line(&mut out, "fractalcloud_faults_injected_at_total", &[("point", point)], *v as f64);
    }
    for (event, v) in [
        ("opened", s.streams_opened),
        ("chunks_sent", s.stream_chunks_sent),
        ("cancelled", s.streams_cancelled),
        ("closed", s.streams_closed),
    ] {
        line(&mut out, "fractalcloud_streams_total", &[("event", event)], v as f64);
    }
    u(&mut out, "fractalcloud_streams_open", h.streams_open);
    line(&mut out, "fractalcloud_overload_level", &[], f64::from(h.overload_level));
    line(&mut out, "fractalcloud_draining", &[], f64::from(u8::from(h.draining)));
    for (c, class) in CLASS_NAMES.iter().enumerate() {
        for l in 0..3 {
            let level = ["1", "2", "3"][l];
            line(
                &mut out,
                "fractalcloud_requests_degraded_total",
                &[("class", class), ("level", level)],
                s.requests_degraded[c][l] as f64,
            );
        }
    }
    u(&mut out, "fractalcloud_goaway_sent_total", s.goaway_sent);
    u(&mut out, "fractalcloud_connections_drained_total", s.connections_drained);
    u(&mut out, "fractalcloud_retries_total", s.retries_total);
    for (kind, v) in [("moved", s.op_macs_moved), ("saved", s.op_macs_saved)] {
        line(&mut out, "fractalcloud_op_macs_total", &[("kind", kind)], v as f64);
    }
    u(&mut out, "fractalcloud_op_gather_bytes_total", s.op_gather_bytes);
    line(&mut out, "fractalcloud_trace_enabled", &[], f64::from(u8::from(h.trace_enabled)));
    u(&mut out, "fractalcloud_trace_capacity_events", h.trace_capacity);
    u(&mut out, "fractalcloud_trace_dropped_total", h.trace_dropped);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for us in [1u64, 10, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.samples(), 5);
        // p50 sample is 100 µs: bucket 6 (64..128) upper bound is 128.
        assert_eq!(h.quantile_us(0.5), 128);
        // p99 = largest sample's bucket (8192..16384 → 16384).
        assert_eq!(h.quantile_us(0.99), 16_384);
        assert!(h.quantile_us(0.0) >= 2);
        assert_eq!(h.mean_us(), (1 + 10 + 100 + 1000 + 10_000) / 5);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        // The documented empty-case contract: 0 for every quantile, which
        // no recorded sample can produce (minimum bucket bound is 2).
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 0);
        }
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.samples(), 0);
    }

    #[test]
    fn absurd_durations_saturate_into_the_last_bucket() {
        let h = LatencyHistogram::default();
        // ≥ 2³⁹ µs (≈ 6.4 days) lands in bucket 39, the catch-all; so does
        // anything larger, including a duration whose µs exceed u64.
        h.record(Duration::from_micros(1 << 39));
        h.record(Duration::from_secs(u64::MAX / 1_000_000));
        h.record(Duration::MAX);
        assert_eq!(h.samples(), 3);
        // All three saturate to bucket 39's upper bound (2⁴⁰ µs), and the
        // quantile walk terminates inside the array rather than falling off
        // the end.
        assert_eq!(h.quantile_us(0.5), 1 << 40);
        assert_eq!(h.quantile_us(1.0), 1 << 40);
        // A fast sample alongside them still resolves to its own bucket.
        h.record(Duration::from_micros(3));
        assert_eq!(h.quantile_us(0.0), 4);
    }

    #[test]
    fn queue_depth_tracks_high_water() {
        let m = Metrics::default();
        m.set_queue_depth(3);
        m.set_queue_depth(9);
        m.set_queue_depth(2);
        let s = m.snapshot();
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.peak_queue_depth, 9);
    }

    #[test]
    fn snapshot_derives_batch_and_shed_totals() {
        let m = Metrics::default();
        m.batches.store(4, Ordering::Relaxed);
        m.batched_frames.store(10, Ordering::Relaxed);
        m.shed_queue_full.store(2, Ordering::Relaxed);
        m.shed_oversized.store(1, Ordering::Relaxed);
        m.shed_deadline.store(5, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.mean_batch(), 2.5);
        assert_eq!(s.shed_total(), 8);
    }

    #[test]
    fn every_exposition_line_parses_as_name_labels_value() {
        let snapshot = MetricsSnapshot {
            submitted: 12,
            batches: 4,
            batched_frames: 10,
            op_macs_saved: 123_456,
            streams_opened: 5,
            stream_chunks_sent: 17,
            streams_cancelled: 1,
            streams_closed: 4,
            requests_degraded: [[0; 3], [9, 0, 2], [0; 3]],
            goaway_sent: 3,
            connections_drained: 2,
            retries_total: 6,
            ..Default::default()
        };
        let health = crate::EngineHealth {
            live: true,
            draining: true,
            overload_level: 2,
            workers_alive: 2,
            workers_configured: 2,
            queued_by_class: [0, 1, 2],
            last_progress_age_ms: 7,
            worker_panics: 0,
            workers_respawned: 0,
            uptime_ms: 1234,
            trace_enabled: true,
            trace_capacity: 16384,
            trace_dropped: 0,
            streams_open: 1,
        };
        let text = render_prometheus(&snapshot, &health, &[("worker", 3)]);
        let mut lines = 0;
        for l in text.lines() {
            let parsed = fractalcloud_obs::expo::parse_line(l)
                .unwrap_or_else(|| panic!("exposition line failed to parse: {l:?}"));
            assert!(parsed.name.starts_with("fractalcloud_"), "foreign prefix: {l:?}");
            lines += 1;
        }
        assert!(lines >= 40, "expected a full exposition, got {lines} lines");
        assert!(text.contains("fractalcloud_requests_total{outcome=\"submitted\"} 12\n"));
        assert!(text.contains("fractalcloud_mean_batch 2.5\n"));
        assert!(text.contains("fractalcloud_op_macs_total{kind=\"saved\"} 123456\n"));
        assert!(text.contains("fractalcloud_streams_total{event=\"opened\"} 5\n"));
        assert!(text.contains("fractalcloud_streams_total{event=\"chunks_sent\"} 17\n"));
        assert!(text.contains("fractalcloud_streams_total{event=\"cancelled\"} 1\n"));
        assert!(text.contains("fractalcloud_streams_total{event=\"closed\"} 4\n"));
        assert!(text.contains("fractalcloud_streams_open 1\n"));
        assert!(text.contains("fractalcloud_faults_injected_at_total{point=\"worker\"} 3\n"));
        assert!(text.contains("fractalcloud_trace_capacity_events 16384\n"));
        assert!(text.contains("fractalcloud_overload_level 2\n"));
        assert!(text.contains("fractalcloud_draining 1\n"));
        assert!(
            text.contains("fractalcloud_requests_degraded_total{class=\"normal\",level=\"1\"} 9\n")
        );
        assert!(
            text.contains("fractalcloud_requests_degraded_total{class=\"normal\",level=\"3\"} 2\n")
        );
        assert!(text.contains("fractalcloud_goaway_sent_total 3\n"));
        assert!(text.contains("fractalcloud_connections_drained_total 2\n"));
        assert!(text.contains("fractalcloud_retries_total 6\n"));
        assert_eq!(snapshot.degraded_total(), 11);
    }

    #[test]
    fn progress_clock_is_monotonic_and_bounded() {
        let m = Metrics::default();
        m.note_progress();
        let a = m.last_progress_ms.load(Ordering::Relaxed);
        m.note_progress();
        let b = m.last_progress_ms.load(Ordering::Relaxed);
        assert!(b >= a, "the liveness stamp never moves backwards");
        assert!(m.progress_age_ms() < 60_000, "age is measured from the stamp, not from zero");
    }
}

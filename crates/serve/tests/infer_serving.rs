//! End-to-end inference serving: an `INFER` request over TCP must produce
//! logits bit-identical to [`Engine::submit_infer`] in-process, cold or
//! cache-hit, under either aggregation schedule; bad requests are rejected
//! without killing the connection.

use fractalcloud_core::PipelineConfig;
use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};
use fractalcloud_serve::protocol::{status, WireInferRequest, AGG_DELAYED, AGG_EAGER};
use fractalcloud_serve::{
    Aggregation, ClientError, Engine, InferRequest, ModelConfig, ServeClient, ServeConfig,
    TcpServer,
};
use std::sync::Arc;

fn zoo_model() -> ModelConfig {
    ModelConfig::table1().remove(0)
}

fn wire_request(aggregation: u8) -> WireInferRequest {
    WireInferRequest {
        threshold: PipelineConfig::default().threshold as u32,
        seed: 42,
        aggregation,
        notation: zoo_model().notation,
    }
}

fn serve() -> (TcpServer, Arc<Engine>) {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(2)));
    let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    (server, engine)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The wire path adds nothing and loses nothing: for both schedules, the
/// TCP reply's logits are bit-identical to the in-process response for the
/// same cloud/model/seed, and the counters and row indices match exactly.
#[test]
fn tcp_infer_is_bit_identical_to_in_process() {
    let (mut server, engine) = serve();
    let cloud = uniform_cube(2048, 17);

    for (byte, agg) in [(AGG_EAGER, Aggregation::Eager), (AGG_DELAYED, Aggregation::Delayed)] {
        let direct = engine
            .process_infer(
                Arc::new(cloud.clone()),
                InferRequest { aggregation: Some(agg), ..InferRequest::new(zoo_model()) },
            )
            .expect("in-process infer");

        let mut client = ServeClient::connect(server.local_addr()).expect("connect");
        let wire = client.infer(&cloud, &wire_request(byte)).expect("tcp infer");

        assert_eq!(wire.aggregation, byte);
        assert_eq!(wire.classes as usize, direct.output.classes);
        assert_eq!(bits(&wire.logits), bits(&direct.output.logits));
        let rows: Vec<u32> = direct.output.row_index.iter().map(|&i| i as u32).collect();
        assert_eq!(wire.row_index, rows);
        assert_eq!(wire.macs_moved, direct.output.counters.macs_moved);
        assert_eq!(wire.macs_saved, direct.output.counters.macs_saved);
        assert_eq!(wire.gather_bytes, direct.output.counters.gather_bytes);
    }
    server.shutdown();
    engine.shutdown();
}

/// A repeated frame serves from the partition LRU (`cache_hit` flips to
/// true) with logits bit-identical to the cold pass.
#[test]
fn tcp_infer_cold_then_cache_hit_identical_logits() {
    let (mut server, engine) = serve();
    let cloud = scene_cloud(&SceneConfig::default(), 2048, 23);
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let cold = client.infer(&cloud, &wire_request(AGG_DELAYED)).expect("cold infer");
    let warm = client.infer(&cloud, &wire_request(AGG_DELAYED)).expect("warm infer");
    assert!(!cold.cache_hit);
    assert!(warm.cache_hit);
    assert_eq!(bits(&cold.logits), bits(&warm.logits));
    assert_eq!(cold.row_index, warm.row_index);

    server.shutdown();
    engine.shutdown();
}

/// An unknown model notation is a caller bug ([`status::INVALID`]), not a
/// framing error: the same connection keeps serving afterwards.
#[test]
fn unknown_notation_rejected_connection_survives() {
    let (mut server, engine) = serve();
    let cloud = uniform_cube(512, 3);
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let mut bogus = wire_request(AGG_DELAYED);
    bogus.notation = "NoSuchNet (z)".into();
    match client.infer(&cloud, &bogus) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, status::INVALID),
        other => panic!("expected INVALID, got {other:?}"),
    }

    let ok = client.infer(&cloud, &wire_request(AGG_DELAYED)).expect("connection reusable");
    assert!(!ok.logits.is_empty());

    server.shutdown();
    engine.shutdown();
}

/// The `AGG_SERVER_DEFAULT` byte defers to the server's environment-chosen
/// schedule, and the reply names the schedule that actually ran.
#[test]
fn server_default_byte_resolves_to_a_concrete_schedule() {
    let (mut server, engine) = serve();
    let cloud = uniform_cube(512, 7);
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let resp = client.infer(&cloud, &wire_request(0)).expect("infer");
    let expected = match Aggregation::from_env() {
        Aggregation::Eager => AGG_EAGER,
        Aggregation::Delayed => AGG_DELAYED,
    };
    assert_eq!(resp.aggregation, expected);

    server.shutdown();
    engine.shutdown();
}

//! Progressive LOD streaming over TCP: coarse-to-fine chunks accumulate to
//! the byte-identical equivalent of direct prefix-budget responses, credits
//! gate refinement, cancel provably stops server-side work (not just wire
//! traffic), and a viewer vanishing mid-stream leaves the engine healthy.

use fractalcloud_core::PipelineConfig;
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud_serve::protocol::{self, WireStreamOpen};
use fractalcloud_serve::{Engine, Priority, ServeClient, ServeConfig, StreamEvent, TcpServer};
use std::sync::Arc;
use std::time::Duration;

fn start(config: ServeConfig) -> (Arc<Engine>, TcpServer) {
    let engine = Arc::new(Engine::start(config));
    let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    (engine, server)
}

#[test]
fn accumulated_chunks_are_byte_identical_to_direct_budget_responses_at_every_depth() {
    // The streaming acceptance contract: after folding chunks 1..=n into
    // the accumulator, its response encodes byte-for-byte the payload a
    // direct `budget = depth` request returns — at EVERY chunk boundary,
    // not just the final one.
    let (engine, mut server) = start(ServeConfig::default().workers(2));
    let mut streamer = ServeClient::connect(server.local_addr()).unwrap();
    let mut direct = ServeClient::connect(server.local_addr()).unwrap();

    let cloud = scene_cloud(&SceneConfig::default(), 3000, 11);
    let cfg = PipelineConfig::default();
    // Warm the partition cache so the streamed chunks and the direct
    // comparisons all report the same cache_hit flag.
    direct.process(&cloud, &cfg).unwrap();

    let open = WireStreamOpen { first_paint: 100, chunk: 230, credits: 2 };
    streamer.stream_open(&cloud, &cfg, Priority::Normal, 0, &open).unwrap();
    let mut acc = protocol::StreamAccumulator::new();
    loop {
        match streamer.stream_next().unwrap() {
            StreamEvent::Chunk(chunk) => {
                acc.push(&chunk).unwrap();
                let at_depth =
                    direct.process_budget(&cloud, &cfg, Priority::Normal, 0, acc.depth()).unwrap();
                assert_eq!(
                    protocol::encode_response_payload(&acc.response()),
                    protocol::encode_response_payload(&at_depth),
                    "accumulated stream diverged from the direct budget-{} response",
                    acc.depth()
                );
                if acc.depth() < acc.total() {
                    streamer.stream_credit().unwrap();
                }
            }
            StreamEvent::End(end) => {
                assert!(!end.cancelled);
                assert_eq!(end.delivered, acc.total(), "the stream must refine to full depth");
                break;
            }
        }
    }
    // ...and the fully refined stream equals the ordinary full response.
    let full = direct.process(&cloud, &cfg).unwrap();
    assert_eq!(acc.response(), full, "a fully refined stream must equal the monolithic response");

    server.shutdown();
    engine.shutdown();
}

#[test]
fn stream_frame_completes_with_server_default_knobs() {
    let (engine, mut server) = start(ServeConfig::default().workers(1));
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let cloud = scene_cloud(&SceneConfig::default(), 1500, 3);
    let cfg = PipelineConfig::default();

    // Zero wire fields select the server's configured defaults.
    let open = WireStreamOpen { first_paint: 0, chunk: 0, credits: 0 };
    let (resp, end) = client.stream_frame(&cloud, &cfg, Priority::High, 0, &open).unwrap();
    assert!(!end.cancelled);
    assert!(end.chunks >= 1);
    let full = client.process(&cloud, &cfg).unwrap();
    // The stream ran first (cold), the direct request second (warm): the
    // cache flag is the only field allowed to differ.
    let mut warm = resp.clone();
    warm.cache_hit = full.cache_hit;
    assert_eq!(warm, full);

    // Leftover control frames from the natural-completion race are
    // tolerated: the connection stays usable for ordinary requests.
    client.stream_credit().unwrap();
    client.cancel().unwrap();
    client.process(&cloud, &cfg).unwrap();

    let m = engine.metrics();
    assert_eq!(m.streams_opened, 1);
    assert_eq!(m.streams_closed, 1);
    assert_eq!(m.streams_cancelled, 0);
    assert_eq!(m.stream_chunks_sent, u64::from(end.chunks));
    server.shutdown();
    engine.shutdown();
}

#[test]
fn cancel_provably_stops_server_side_work() {
    // Tiny chunks so a full refinement would take many engine jobs; cancel
    // right after first paint and prove the engine-side chunk counter —
    // incremented only when a chunk job *executes* — stops advancing.
    let (engine, mut server) =
        start(ServeConfig::default().workers(2).stream_first_paint(16).stream_chunk(16));
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let cloud = scene_cloud(&SceneConfig::default(), 4096, 5);
    let cfg = PipelineConfig::default();

    let open = WireStreamOpen { first_paint: 0, chunk: 0, credits: 2 };
    client.stream_open(&cloud, &cfg, Priority::Normal, 0, &open).unwrap();
    let first = match client.stream_next().unwrap() {
        StreamEvent::Chunk(c) => c,
        StreamEvent::End(e) => panic!("stream ended before first paint: {e:?}"),
    };
    assert!(
        first.hi < first.total,
        "test needs a stream with refinements left (hi {} of {})",
        first.hi,
        first.total
    );
    client.cancel().unwrap();
    let end = loop {
        match client.stream_next().unwrap() {
            StreamEvent::Chunk(_) => {} // chunks already in flight when the cancel landed
            StreamEvent::End(end) => break end,
        }
    };
    assert!(end.cancelled, "the server must acknowledge the cancel");
    assert!(
        end.delivered < first.total,
        "cancel must stop refinement short of full depth ({} of {})",
        end.delivered,
        first.total
    );

    // The work provability claim: after STREAM_END, no chunk job executes.
    let settled = engine.metrics().stream_chunks_sent;
    std::thread::sleep(Duration::from_millis(150));
    let after = engine.metrics().stream_chunks_sent;
    assert_eq!(settled, after, "chunk jobs kept executing after the stream was cancelled");

    let m = engine.metrics();
    assert_eq!(m.streams_cancelled, 1);
    assert_eq!(m.streams_opened, m.streams_closed, "cancel must balance the open/closed gauge");
    assert_eq!(client.health().unwrap().streams_open, 0);
    server.shutdown();
    engine.shutdown();
}

#[test]
fn mid_stream_disconnect_leaves_the_engine_healthy() {
    // Chaos case: the viewer vanishes (socket dropped, no cancel) while
    // the server is blocked waiting for credits. The control read sees EOF,
    // the stream closes quietly, the gauge returns to zero, and the engine
    // keeps serving other clients.
    let (engine, mut server) =
        start(ServeConfig::default().workers(2).stream_first_paint(16).stream_chunk(16));
    let cloud = scene_cloud(&SceneConfig::default(), 4096, 9);
    let cfg = PipelineConfig::default();
    {
        let mut doomed = ServeClient::connect(server.local_addr()).unwrap();
        // credits: 1 → after one refinement the server blocks on control
        // frames, which is exactly where the EOF lands.
        let open = WireStreamOpen { first_paint: 0, chunk: 0, credits: 1 };
        doomed.stream_open(&cloud, &cfg, Priority::Normal, 0, &open).unwrap();
        match doomed.stream_next().unwrap() {
            StreamEvent::Chunk(c) => assert!(c.hi < c.total, "need refinements left"),
            StreamEvent::End(e) => panic!("stream ended before first paint: {e:?}"),
        }
        // Drop without cancel: simulates a crashed viewer.
    }

    // The stream must close (opened − closed → 0) without hanging.
    let mut probe = ServeClient::connect(server.local_addr()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let h = probe.health().unwrap();
        if h.streams_open == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stream never closed after the client vanished: {h:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // And the engine still serves.
    probe.process(&cloud, &cfg).unwrap();
    assert!(probe.health().unwrap().live);
    server.shutdown();
    engine.shutdown();
}

#[test]
fn malformed_stream_requests_keep_the_connection_usable() {
    use std::io::{Read, Write};
    let (engine, mut server) = start(ServeConfig::default().workers(1));
    let cloud = scene_cloud(&SceneConfig::default(), 400, 2);
    let cfg = PipelineConfig::default();

    // A stream request whose trailer is truncated (plain PROCESS_FRAME
    // payload under the STREAM opcode) is malformed — but framing was
    // intact, so the same connection survives and serves the next request.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let bad = protocol::encode_request_payload(&cloud, &cfg);
    raw.write_all(&protocol::encode_message(protocol::stream_request_kind(Priority::Normal), &bad))
        .unwrap();
    let mut header = [0u8; 9];
    raw.read_exact(&mut header).unwrap();
    assert_eq!(header[4], protocol::status::MALFORMED);
    let len = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    let mut msg = vec![0u8; len];
    raw.read_exact(&mut msg).unwrap();

    // Same socket, now a valid frame request: still answered.
    raw.write_all(&protocol::encode_message(protocol::OP_PROCESS_FRAME, &bad)).unwrap();
    raw.read_exact(&mut header).unwrap();
    assert_eq!(header[4], protocol::status::OK);

    assert!(engine.metrics().net_malformed >= 1);
    server.shutdown();
    engine.shutdown();
}

#[test]
fn credit_starved_stream_resolves_at_the_deadline() {
    // A viewer that opens a stream and never sends credits used to pin the
    // connection's handler in an unbounded credit wait. Now the wait is
    // bounded by the stream's deadline: the server resolves the stream with
    // a retryable DEADLINE_EXCEEDED, balances its stream books, and keeps
    // the connection usable.
    let (engine, mut server) =
        start(ServeConfig::default().workers(1).stream_first_paint(16).stream_chunk(16));
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let cloud = scene_cloud(&SceneConfig::default(), 2048, 17);
    let cfg = PipelineConfig::default();

    // One credit pays for the first paint; refinement then starves.
    let open = WireStreamOpen { first_paint: 0, chunk: 0, credits: 1 };
    client.stream_open(&cloud, &cfg, Priority::Normal, 300, &open).unwrap();
    match client.stream_next().unwrap() {
        StreamEvent::Chunk(c) => assert!(c.hi - c.lo <= 16),
        StreamEvent::End(e) => panic!("stream ended before first paint: {e:?}"),
    }

    // Never send another credit: the server must give up at the deadline,
    // not hang forever.
    let err = loop {
        match client.stream_next() {
            Ok(StreamEvent::Chunk(_)) => continue,
            Ok(StreamEvent::End(e)) => panic!("starved stream ended cleanly: {e:?}"),
            Err(e) => break e,
        }
    };
    match &err {
        fractalcloud_serve::ClientError::Server { code, .. } => {
            assert_eq!(*code, protocol::status::DEADLINE_EXCEEDED, "wrong status: {err:?}");
        }
        other => panic!("expected DEADLINE_EXCEEDED, got {other:?}"),
    }
    assert!(err.is_shed(), "a deadline resolution must stay retryable");

    // The stream books close and the connection is still usable.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while engine.health().streams_open > 0 {
        assert!(std::time::Instant::now() < deadline, "stream books never balanced");
        std::thread::sleep(Duration::from_millis(5));
    }
    let m = engine.metrics();
    assert_eq!(m.streams_opened, m.streams_closed, "streams_open/closed must balance");
    client.process(&cloud, &cfg).unwrap();

    server.shutdown();
    engine.shutdown();
}

//! Serving edge cases: zero-capacity queues, overload shedding, oversized
//! and malformed frames, client disconnects mid-request, and graceful
//! shutdown draining.

use fractalcloud_core::PipelineConfig;
use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};
use fractalcloud_serve::protocol::{self, status, OP_PROCESS_FRAME};
use fractalcloud_serve::{
    ClientError, Engine, Priority, ServeClient, ServeConfig, ServeError, ShedReason, TcpServer,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn frame(n: usize, seed: u64) -> fractalcloud_pointcloud::PointCloud {
    scene_cloud(&SceneConfig::default(), n, seed)
}

#[test]
fn zero_capacity_queue_sheds_everything() {
    let engine = Engine::start(ServeConfig::default().workers(1).queue_capacity(0));
    for seed in 0..4 {
        let r = engine.submit(uniform_cube(256, seed), PipelineConfig::default());
        assert_eq!(r.unwrap_err(), ServeError::Shed(ShedReason::QueueFull));
    }
    let m = engine.metrics();
    assert_eq!(m.shed_queue_full, 4);
    assert_eq!(m.admitted, 0);
    assert_eq!(m.completed, 0);
    engine.shutdown();
}

#[test]
fn oversized_frames_shed_in_process_and_over_tcp() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(1).max_points(512)));
    let big = uniform_cube(1000, 1);

    let r = engine.process(big.clone(), PipelineConfig::default());
    assert_eq!(
        r.unwrap_err(),
        ServeError::Shed(ShedReason::Oversized { points: 1000, max_points: 512 })
    );

    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    // The TCP layer rejects on byte size before the engine even sees it.
    let err = client.process(&big, &PipelineConfig::default()).unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, status::OVERSIZED),
        other => panic!("expected server oversize rejection, got {other:?}"),
    }
    assert!(err.is_shed());
    // Both the in-process and the TCP-level rejection are counted.
    assert_eq!(engine.metrics().shed_oversized, 2);
    server.shutdown();
    engine.shutdown();
}

#[test]
fn malformed_frames_reject_but_do_not_kill_the_server() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(1)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();

    // Bad magic: the server answers MALFORMED and closes that connection.
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(b"NOPE\x01\x00\x00\x00\x00").unwrap();
        raw.flush().unwrap();
        let mut buf = Vec::new();
        use std::io::Read;
        raw.read_to_end(&mut buf).unwrap();
        assert_eq!(buf[4], status::MALFORMED);
    }

    // Intact framing, garbage payload: connection survives for reuse.
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&protocol::encode_message(OP_PROCESS_FRAME, &[1, 2, 3])).unwrap();
        use std::io::Read;
        let mut header = [0u8; 9];
        raw.read_exact(&mut header).unwrap();
        assert_eq!(header[4], status::MALFORMED);
        let len = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
        let mut msg = vec![0u8; len];
        raw.read_exact(&mut msg).unwrap();

        // Same connection, now a valid request: it still works.
        let payload =
            protocol::encode_request_payload(&uniform_cube(512, 2), &PipelineConfig::default());
        raw.write_all(&protocol::encode_message(OP_PROCESS_FRAME, &payload)).unwrap();
        raw.read_exact(&mut header).unwrap();
        assert_eq!(header[4], status::OK);
    }

    assert!(engine.metrics().net_malformed >= 2);
    server.shutdown();
    engine.shutdown();
}

#[test]
fn client_disconnect_mid_request_leaves_server_healthy() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(1)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();

    {
        // Announce a 1 KiB payload, send 3 bytes, vanish.
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        let mut msg = Vec::new();
        msg.extend_from_slice(&protocol::MAGIC.to_le_bytes());
        msg.push(OP_PROCESS_FRAME);
        msg.extend_from_slice(&1024u32.to_le_bytes());
        msg.extend_from_slice(&[7, 7, 7]);
        raw.write_all(&msg).unwrap();
        raw.flush().unwrap();
    } // dropped here — RST/EOF mid-payload

    // The server must still answer a well-formed request afterwards.
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let reply = client.process(&frame(1024, 3), &PipelineConfig::default()).unwrap();
    assert_eq!(reply.sampled_indices.len(), 256);

    // The disconnect is (eventually) counted; poll briefly since the
    // handler thread races this assertion.
    let mut seen = 0;
    for _ in 0..200 {
        seen = engine.metrics().net_disconnects;
        if seen >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(seen >= 1, "mid-request disconnect was not counted");
    server.shutdown();
    engine.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_batches() {
    let engine = Engine::start(ServeConfig::default().workers(2).queue_capacity(64));
    let tickets: Vec<_> = (0..12)
        .map(|seed| engine.submit(frame(2048, seed), PipelineConfig::default()).unwrap())
        .collect();

    engine.shutdown(); // must block until every admitted job completed

    for t in tickets {
        let r = t.wait().expect("admitted before shutdown → must complete");
        assert_eq!(r.sampled_indices.len(), 512);
    }
    let m = engine.metrics();
    assert_eq!(m.completed, 12);
    assert_eq!(m.queue_depth, 0);

    // And new work is refused with the dedicated reason.
    let r = engine.submit(frame(512, 99), PipelineConfig::default());
    assert_eq!(r.unwrap_err(), ServeError::Shed(ShedReason::ShuttingDown));
}

#[test]
fn overload_sheds_with_counted_rejections_and_bounded_queue() {
    // One slow worker, a tiny queue, and a flood: the queue must never
    // exceed its bound and the excess must be shed, not buffered.
    let capacity = 4;
    let engine = Arc::new(Engine::start(
        ServeConfig::default().workers(1).queue_capacity(capacity).max_batch(2),
    ));
    let offered = 64;
    let mut shed = 0u64;
    let mut tickets = Vec::new();
    for seed in 0..offered {
        match engine.submit(frame(4096, seed), PipelineConfig::default()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Shed(ShedReason::QueueFull)) => shed += 1,
            Err(other) => panic!("unexpected error under overload: {other:?}"),
        }
    }
    for t in tickets {
        t.wait().unwrap();
    }
    let m = engine.metrics();
    assert!(shed > 0, "flooding a 1-worker queue of {capacity} must shed");
    assert_eq!(m.shed_queue_full, shed);
    assert_eq!(m.admitted + shed, offered);
    assert_eq!(m.completed, m.admitted);
    assert!(
        m.peak_queue_depth <= capacity as u64,
        "queue grew past its bound: {} > {capacity}",
        m.peak_queue_depth
    );
    engine.shutdown();
}

#[test]
fn compatible_frames_are_batched_incompatible_are_not_mixed() {
    // Stuff the queue while no worker runs... not possible directly, so
    // use a zero-worker trick: submit first, workers race. Instead rely on
    // statistics: many compatible frames through a 2-worker engine must
    // produce at least one fused batch (mean batch > 1 is likely but not
    // guaranteed, so assert the invariant direction only).
    let engine = Engine::start(ServeConfig::default().workers(2).queue_capacity(64).max_batch(8));
    let a = PipelineConfig::default();
    let b = PipelineConfig { neighbors: 8, ..PipelineConfig::default() };
    let tickets: Vec<_> = (0..16)
        .map(|seed| {
            let cfg = if seed % 2 == 0 { a } else { b };
            engine.submit(frame(2048, seed), cfg).unwrap()
        })
        .collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    // Mixed-config batches are impossible: every response's batch size must
    // divide cleanly into same-config groups; verify via result shape (the
    // b-config responses all have num == 8, a-config num == 16).
    for (seed, r) in responses.iter().enumerate() {
        let expect = if seed % 2 == 0 { 16 } else { 8 };
        assert_eq!(r.num, expect, "request {seed} got a foreign batch's parameters");
        assert!(r.batch_size >= 1 && r.batch_size <= 8);
    }
    let m = engine.metrics();
    assert_eq!(m.batched_frames, 16);
    assert!(m.batches <= 16);
    engine.shutdown();
}

/// Blocks until the engine's worker has picked up everything submitted so
/// far (queue empty and at least `batches` batches started).
fn wait_for_drain_start(engine: &Engine, batches: u64) {
    for _ in 0..2000 {
        let m = engine.metrics();
        if m.queue_depth == 0 && m.batches >= batches {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("worker never picked up the plug job");
}

#[test]
fn high_completes_first_under_overload_and_bulk_sheds_first_at_the_bound() {
    // One worker, no fusing, sequential lanes: dequeue order is exactly
    // the weighted schedule, and completion order is dequeue order.
    let engine = Arc::new(Engine::start(
        ServeConfig::default().workers(1).max_batch(1).thread_budget(1).queue_capacity(16),
    ));

    // Pregenerate every frame so the submission loop below is pure queue
    // pushes (the race window against the plug finishing stays tiny).
    let bulk_frames: Vec<_> = (0..3).map(|s| frame(2048, 10 + s)).collect();
    let high_frames: Vec<_> = (0..3).map(|s| frame(2048, 20 + s)).collect();

    // Occupy the worker with a fat plug frame so the real submissions all
    // queue behind it.
    let plug = engine.submit(frame(32_768, 1), PipelineConfig::default()).unwrap();
    wait_for_drain_start(&engine, 1);

    // Overload: Bulk arrives *before* High, yet High must complete first
    // (the weighted schedule prefers the High lane 4:1).
    let bulk_tickets: Vec<_> = bulk_frames
        .into_iter()
        .map(|f| engine.submit_with_priority(f, PipelineConfig::default(), Priority::Bulk).unwrap())
        .collect();
    let high_tickets: Vec<_> = high_frames
        .into_iter()
        .map(|f| engine.submit_with_priority(f, PipelineConfig::default(), Priority::High).unwrap())
        .collect();

    plug.wait().unwrap();

    // Completion order is observed race-free through server-side counters:
    // the single worker publishes serially and bumps `completed_by_class`
    // *before* waking the ticket, so by the time the first Bulk response
    // is redeemable, every completion that preceded it is already counted.
    let mut bulk_tickets = bulk_tickets.into_iter();
    bulk_tickets.next().unwrap().wait().unwrap();
    let m = engine.metrics();
    assert_eq!(
        m.completed_by_class[Priority::High.index()],
        3,
        "all High work must complete before the first Bulk response under overload"
    );

    for t in bulk_tickets.chain(high_tickets) {
        t.wait().unwrap();
    }
    let m = engine.metrics();
    assert_eq!(m.completed_by_class, [3, 1, 3]); // 3 High, the plug, 3 Bulk
    assert_eq!(m.shed_total(), 0);
    engine.shutdown();
}

#[test]
fn bulk_is_displaced_at_the_queue_bound_and_high_is_never_displaced() {
    let engine = Arc::new(Engine::start(
        ServeConfig::default().workers(1).max_batch(1).thread_budget(1).queue_capacity(2),
    ));
    let frames: Vec<_> = (30..35).map(|s| frame(512, s)).collect();
    let [f30, f31, f32, f33, f34] = <[_; 5]>::try_from(frames).unwrap();
    let plug = engine.submit(frame(32_768, 2), PipelineConfig::default()).unwrap();
    wait_for_drain_start(&engine, 1);

    // Fill the bound with Bulk work.
    let b1 = engine.submit_with_priority(f30, PipelineConfig::default(), Priority::Bulk).unwrap();
    let b2 = engine.submit_with_priority(f31, PipelineConfig::default(), Priority::Bulk).unwrap();

    // A High arrival at the bound displaces the *youngest* Bulk job...
    let h = engine.submit_with_priority(f32, PipelineConfig::default(), Priority::High).unwrap();
    assert_eq!(
        b2.wait().unwrap_err(),
        ServeError::Shed(ShedReason::QueueFull),
        "the youngest Bulk job must be displaced"
    );

    // ...a further Bulk arrival has nothing below it and sheds itself...
    let r = engine.submit_with_priority(f33, PipelineConfig::default(), Priority::Bulk);
    assert_eq!(r.unwrap_err(), ServeError::Shed(ShedReason::QueueFull));

    // ...and a second High arrival cannot displace the queued High (only
    // classes strictly below it), so it displaces the remaining Bulk job.
    let h2 = engine.submit_with_priority(f34, PipelineConfig::default(), Priority::High).unwrap();
    assert_eq!(b1.wait().unwrap_err(), ServeError::Shed(ShedReason::QueueFull));

    let m = engine.metrics();
    assert_eq!(m.shed_queue_full, 3);
    // All three queue-bound sheds hit the Bulk class: two displacements
    // plus the direct overflow.
    assert_eq!(m.shed_by_class, [0, 0, 3]);

    plug.wait().unwrap();
    h.wait().unwrap();
    h2.wait().unwrap();
    engine.shutdown();
}

#[test]
fn connection_limit_refuses_with_retryable_status() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(1).max_connections(1)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();

    // First connection occupies the single slot (a round-trip guarantees
    // its handler is registered).
    let mut first = ServeClient::connect(server.local_addr()).unwrap();
    first.process(&frame(512, 40), &PipelineConfig::default()).unwrap();

    // The second connection is answered TOO_MANY_CONNECTIONS and closed.
    let mut second = ServeClient::connect(server.local_addr()).unwrap();
    let err = second.process(&frame(512, 41), &PipelineConfig::default()).unwrap_err();
    match &err {
        ClientError::Server { code, .. } => {
            assert_eq!(*code, protocol::status::TOO_MANY_CONNECTIONS)
        }
        other => panic!("expected a connection-limit refusal, got {other:?}"),
    }
    assert!(err.is_shed(), "connection-limit refusals are retryable");
    assert!(engine.metrics().net_conn_refused >= 1);

    // Once the first connection closes, the slot frees up.
    drop(first);
    let mut ok = false;
    for _ in 0..500 {
        if let Ok(mut c) = ServeClient::connect(server.local_addr()) {
            if c.process(&frame(512, 42), &PipelineConfig::default()).is_ok() {
                ok = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(ok, "connection slot never freed after the first client left");
    server.shutdown();
    engine.shutdown();
}

#[test]
fn responses_over_tcp_match_in_process_results() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(2)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let cloud = frame(3000, 11);
    let cfg = PipelineConfig::default();
    let wire = client.process(&cloud, &cfg).unwrap();
    let local = engine.process(cloud, cfg).unwrap();

    let as_u32 = |v: &[usize]| v.iter().map(|&i| i as u32).collect::<Vec<u32>>();
    assert_eq!(wire.sampled_indices, as_u32(&local.sampled_indices));
    assert_eq!(wire.neighbor_indices, as_u32(&local.neighbor_indices));
    assert_eq!(wire.found, as_u32(&local.found));
    assert_eq!(wire.num as usize, local.num);
    assert_eq!(wire.blocks as usize, local.blocks);
    server.shutdown();
    engine.shutdown();
}

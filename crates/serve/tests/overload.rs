//! Graceful degradation under overload: brown-out serves reduced-budget
//! (bit-identical prefix) responses instead of shedding, High priority is
//! never degraded, zero-downtime drain answers GOAWAY while in-flight work
//! finishes, and the self-healing client reconnects through all of it.

use fractalcloud_core::{Pipeline, PipelineConfig};
use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};
use fractalcloud_serve::protocol::status;
use fractalcloud_serve::{
    BrownoutConfig, Engine, OverloadLevel, Priority, RetryPolicy, ServeClient, ServeConfig,
    ServeError, ShedReason, TcpServer,
};
use std::sync::Arc;
use std::time::Duration;

fn forced(level: u8) -> BrownoutConfig {
    BrownoutConfig { forced: Some(level), ..BrownoutConfig::default() }
}

/// The tentpole contract: a browned-out response is the exact
/// budget-`(full >> level)` prefix of the full run — same bytes the client
/// would get from an explicit budget request — and carries the degraded
/// marker with the served budget. High priority is exempt.
#[test]
fn brownout_serves_bit_identical_budget_prefixes() {
    let engine = Engine::start(ServeConfig::default().workers(1).brownout(forced(2)));
    let cloud = scene_cloud(&SceneConfig::default(), 1500, 21);
    let cfg = PipelineConfig::default();

    let pipe = Pipeline::new(cfg).unwrap();
    let full = pipe.run(&cloud, false).unwrap();
    let served = (full.sampled.indices.len() >> 2).max(1);
    let want = pipe.run_budget(&cloud, served, false).unwrap();

    let resp = engine.process(cloud.clone(), cfg).unwrap();
    assert!(resp.degraded, "a forced brown-out must mark the response degraded");
    assert_eq!(resp.budget_served, served);
    assert_eq!(resp.sampled_indices, want.sampled.indices, "degraded response is not the prefix");
    assert_eq!(resp.neighbor_indices, want.grouped.indices);

    // High priority rides through untouched, at full depth.
    let high = engine.process_with_priority(cloud.clone(), cfg, Priority::High).unwrap();
    assert!(!high.degraded, "High priority must never be degraded");
    assert_eq!(high.budget_served, 0);
    assert_eq!(high.sampled_indices, full.sampled.indices);

    let m = engine.metrics();
    // Degraded executions count under [class][level-1]: one Normal at
    // level 2, and the High run counts nowhere.
    assert_eq!(m.requests_degraded[Priority::Normal.index()][1], 1);
    assert_eq!(m.requests_degraded[Priority::High.index()], [0, 0, 0]);
    assert_eq!(m.degraded_total(), 1);
    assert_eq!(engine.overload_level(), OverloadLevel::BrownOut(2));
    engine.shutdown();
}

/// At the top of the ladder (`Shed`), non-High frame admissions shed
/// retryably before touching the queue; High still admits and runs at
/// full depth.
#[test]
fn shed_level_sheds_normal_but_never_high() {
    let engine = Engine::start(ServeConfig::default().workers(1).brownout(forced(4)));
    let cloud = uniform_cube(600, 3);
    let cfg = PipelineConfig::default();

    let err = engine.process(cloud.clone(), cfg).expect_err("Normal must shed at level 4");
    assert!(matches!(err, ServeError::Shed(ShedReason::QueueFull)), "shed reason: {err:?}");

    let high = engine.process_with_priority(cloud.clone(), cfg, Priority::High).unwrap();
    assert!(!high.degraded);
    let pipe = Pipeline::new(cfg).unwrap();
    assert_eq!(high.sampled_indices, pipe.run(&cloud, false).unwrap().sampled.indices);

    assert_eq!(engine.overload_level(), OverloadLevel::Shed);
    assert_eq!(engine.metrics().shed_queue_full, 1);
    engine.shutdown();
}

/// The degraded marker crosses the wire as the optional trailer, and the
/// health payload carries the overload level.
#[test]
fn brownout_marker_and_level_cross_the_wire() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(1).brownout(forced(1))));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let cloud = scene_cloud(&SceneConfig::default(), 1200, 8);
    let cfg = PipelineConfig::default();

    let resp = client.process(&cloud, &cfg).unwrap();
    assert!(resp.degraded);
    let served = resp.budget_served;
    assert!(served > 0);
    // The wire bytes equal an explicit budget request for the same depth
    // (which itself degrades no further: an explicit budget is already a
    // prefix request, halved again only by the budget clamp — so compare
    // against the direct pipeline instead).
    let want = Pipeline::new(cfg).unwrap().run_budget(&cloud, served as usize, false).unwrap();
    let sampled: Vec<usize> = resp.sampled_indices.iter().map(|&i| i as usize).collect();
    assert_eq!(sampled, want.sampled.indices);

    let high = client.process_with_priority(&cloud, &cfg, Priority::High).unwrap();
    assert!(!high.degraded, "High priority must cross the wire undegraded");
    assert_eq!(high.budget_served, 0);

    let h = client.health().unwrap();
    assert_eq!(h.overload_level, 1);
    assert!(!h.draining);
    let local = engine.health();
    assert_eq!(
        (h.live, h.overload_level, h.draining),
        (local.live, local.overload_level, local.draining)
    );

    let text = client.metrics_text().unwrap();
    assert!(text.contains("fractalcloud_overload_level 1"), "missing gauge in: {text}");
    assert!(
        text.contains("fractalcloud_requests_degraded_total{class=\"normal\",level=\"1\"} 1"),
        "missing degraded counter in: {text}"
    );

    server.shutdown();
    engine.shutdown();
}

/// Zero-downtime drain: work is answered GOAWAY (retryable), probes stay
/// live, in-flight work finishes, and `resume` re-arms the engine.
#[test]
fn drain_answers_goaway_and_resume_rearms() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(1)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let cloud = uniform_cube(500, 7);
    let cfg = PipelineConfig::default();

    client.process(&cloud, &cfg).unwrap();

    // In-flight work admitted before the drain still completes.
    let inflight = engine.submit(uniform_cube(20_000, 9), cfg).unwrap();
    engine.drain();
    assert!(engine.is_draining());
    inflight.wait().expect("work admitted before the drain must finish");

    // New in-process submits shed retryably; new wire work gets GOAWAY.
    let err = engine.submit(cloud.clone(), cfg).expect_err("draining engine must not admit");
    assert!(matches!(err, ServeError::Shed(ShedReason::ShuttingDown)));
    let err = client.process(&cloud, &cfg).expect_err("draining server must answer GOAWAY");
    match &err {
        fractalcloud_serve::ClientError::Server { code, .. } => {
            assert_eq!(*code, status::GOAWAY);
        }
        other => panic!("expected a server status, got {other:?}"),
    }
    assert!(err.is_shed(), "GOAWAY is retryable by contract");

    // Probes stay answered inline on the very same connection.
    let h = client.health().unwrap();
    assert!(h.draining, "health must report the drain");
    assert!(!h.live, "a draining engine is not routable");
    let m = engine.metrics();
    assert!(m.goaway_sent >= 1, "GOAWAY must be counted: {m:?}");

    // The connection told to go away counts as drained once it closes.
    drop(client);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while engine.metrics().connections_drained < 1 {
        assert!(std::time::Instant::now() < deadline, "drained connection never counted");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Resume re-arms: health is live again and work flows.
    engine.resume();
    assert!(!engine.is_draining());
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let h = client.health().unwrap();
    assert!(h.live && !h.draining);
    client.process(&cloud, &cfg).unwrap();
    engine.submit(cloud.clone(), cfg).unwrap().wait().unwrap();

    server.shutdown();
    engine.shutdown();
}

/// The self-healing client rides out a live drain-and-resume: GOAWAY is
/// retried on the backoff schedule (reconnecting each time) until the
/// engine re-arms, and the retry count lands in the exposition.
#[test]
fn client_retry_heals_through_a_live_drain() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(1)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let cloud = uniform_cube(500, 4);
    let cfg = PipelineConfig::default();

    engine.drain();
    let resumer = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            engine.resume();
        })
    };

    // Deterministic schedule, patient budget: the drain window (~150 ms)
    // sits well inside a few backoff steps.
    let mut policy = RetryPolicy::new(10, 0xD5A1).base_delay(Duration::from_millis(40));
    let resp = client
        .process_retry(&cloud, &cfg, Priority::Normal, 0, &mut policy)
        .expect("the retry loop must outlast the drain window");
    assert!(!resp.degraded);
    assert!(client.retries() >= 1, "healing through a drain takes at least one retry");
    resumer.join().unwrap();

    engine.record_retries(client.retries());
    let m = engine.metrics();
    assert_eq!(m.retries_total, client.retries());
    let text = engine.metrics_text();
    assert!(text.contains("fractalcloud_retries_total"), "missing counter in: {text}");

    server.shutdown();
    engine.shutdown();
}

/// Slow-peer defense: a connection idle past `idle_timeout_ms` is reaped
/// server-side, and the self-healing client heals the reap transparently
/// by reconnect-and-replay.
#[test]
fn idle_reaped_connection_heals_via_retry() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(1).idle_timeout_ms(100)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let cloud = uniform_cube(400, 5);
    let cfg = PipelineConfig::default();

    client.process(&cloud, &cfg).unwrap();
    // Sit idle past the server's timeout: the handler reaps the socket.
    std::thread::sleep(Duration::from_millis(400));

    let mut policy = RetryPolicy::new(5, 7).base_delay(Duration::from_millis(5));
    let resp = client
        .process_retry(&cloud, &cfg, Priority::Normal, 0, &mut policy)
        .expect("a reaped connection must heal by reconnect-and-replay");
    assert!(!resp.sampled_indices.is_empty());

    server.shutdown();
    engine.shutdown();
}

/// The adaptive controller escalates under genuine queue pressure and
/// walks back to Normal via idle decay once traffic stops — no operator
/// action required.
#[test]
fn adaptive_controller_escalates_and_recovers() {
    let tuned = BrownoutConfig {
        enabled: true,
        forced: None,
        // Any measurable queue wait counts as pressure; relaxing via
        // traffic is effectively disabled so only idle decay recovers.
        escalate_wait_us: 1,
        relax_wait_us: 0,
        escalate_after: 2,
        relax_after: 1_000_000,
        dwell_ms: 1,
    };
    let engine = Engine::start(
        ServeConfig::default().workers(1).max_batch(1).thread_budget(1).brownout(tuned),
    );
    let cfg = PipelineConfig::default();

    // Pile up work behind a single worker so jobs genuinely wait.
    let tickets: Vec<_> =
        (0..12).map(|s| engine.submit(uniform_cube(4096, s), cfg).unwrap()).collect();
    for t in tickets {
        let _ = t.wait();
    }
    let peak = engine.overload_level();
    assert!(peak > OverloadLevel::Normal, "queue pressure must escalate the level, got {peak}");

    // Traffic stops entirely: polling the level drives idle decay back to
    // Normal, one dwell period per step.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while engine.overload_level() != OverloadLevel::Normal {
        assert!(
            std::time::Instant::now() < deadline,
            "controller never recovered, stuck at {}",
            engine.overload_level()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(engine.overload_level(), OverloadLevel::Normal);
    engine.shutdown();
}

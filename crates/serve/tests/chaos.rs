//! Chaos-soak and fault-injection integration tests: under a seeded storm
//! of injected panics, errors and delays, every submitted request resolves
//! exactly once (no hung waiters, no double resolutions), the engine keeps
//! serving, and fault-free configurations are bit-identical to a clean
//! engine.

use fractalcloud_core::{
    block_ball_query, block_fps, BppoConfig, Fractal, Pipeline, PipelineConfig,
};
use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};
use fractalcloud_pointcloud::kernels::{self, Backend};
use fractalcloud_pointcloud::PointCloud;
use fractalcloud_serve::protocol::status;
use fractalcloud_serve::{
    BrownoutConfig, Engine, FaultKind, FaultPlan, FaultPoint, FrameResponse, Priority, ServeClient,
    ServeConfig, TcpServer,
};
use std::sync::Arc;
use std::time::Duration;

/// The direct library computation a served frame must match exactly.
fn direct(cloud: &PointCloud, cfg: &PipelineConfig) -> (Vec<usize>, Vec<usize>) {
    let built = Fractal::with_threshold(cfg.threshold).build(cloud).unwrap();
    let bppo = BppoConfig::default();
    let fps = block_fps(cloud, &built.partition, cfg.sample_rate, &bppo).unwrap();
    let bq =
        block_ball_query(cloud, &built.partition, &fps.per_block, cfg.radius, cfg.neighbors, &bppo)
            .unwrap();
    (fps.indices, bq.indices)
}

fn shape(r: &FrameResponse) -> (Vec<usize>, Vec<usize>) {
    (r.sampled_indices.clone(), r.neighbor_indices.clone())
}

/// The soak invariant: under a mixed seeded fault storm (worker panics,
/// block errors, block delays, dropped cache inserts) every submission
/// resolves exactly once, the engine survives ≥ 10 worker panics without a
/// restart, and it still answers a clean frame correctly afterwards.
#[test]
fn chaos_soak_every_request_resolves_exactly_once() {
    let plan = FaultPlan::OFF
        .with_fault(FaultKind::Panic, FaultPoint::Worker, 0.15)
        .with_fault(FaultKind::Err, FaultPoint::Block, 0.05)
        .with_fault(FaultKind::Delay, FaultPoint::Block, 0.05)
        .with_delay(FaultPoint::Block, Duration::from_micros(200))
        .with_fault(FaultKind::Err, FaultPoint::CacheInsert, 0.2)
        .with_seed(0xC7A05);
    let engine = Arc::new(Engine::start(
        ServeConfig::default().workers(2).queue_capacity(64).max_batch(4).faults(plan),
    ));

    // A small pool of distinct frames so the storm mixes cache hits and
    // misses (dropped inserts make even repeats miss sometimes).
    let frames: Vec<PointCloud> = (0..4)
        .map(|seed| scene_cloud(&SceneConfig::default(), 400 + 100 * seed as usize, seed))
        .collect();
    let cfg = PipelineConfig::default();

    let (mut ok, mut internal, mut shed, mut hung) = (0u64, 0u64, 0u64, 0u64);
    let mut submitted = 0u64;
    for wave in 0..400 {
        let tickets: Vec<_> = (0..16)
            .map(|i| engine.submit(frames[(wave + i) % frames.len()].clone(), cfg).unwrap())
            .collect();
        submitted += tickets.len() as u64;
        for t in tickets {
            // A ticket that outlives this generous timeout is a hung waiter
            // — exactly what the drop-guard layer exists to prevent.
            match t.wait_timeout(Duration::from_secs(30)) {
                None => hung += 1,
                Some(Ok(_)) => ok += 1,
                Some(Err(fractalcloud_serve::ServeError::Internal)) => internal += 1,
                Some(Err(fractalcloud_serve::ServeError::Shed(_))) => shed += 1,
                Some(Err(e)) => panic!("unexpected outcome under chaos: {e}"),
            }
        }
        if engine.metrics().worker_panics >= 10 {
            break;
        }
    }

    assert_eq!(hung, 0, "chaos must never hang a waiter");
    assert_eq!(ok + internal + shed, submitted, "every submission resolves exactly once");
    // Metric increments trail ticket resolution by a hair (drop guards
    // resolve during the unwind; supervision counts the panic after), so
    // poll briefly until the books close before asserting on them.
    let settle_deadline = std::time::Instant::now() + Duration::from_secs(10);
    let m = loop {
        let m = engine.metrics();
        let settled = m.submitted == m.completed + m.failed_internal
            && m.worker_panics == m.workers_respawned
            && m.completed == ok;
        if settled || std::time::Instant::now() > settle_deadline {
            break m;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(
        m.worker_panics >= 10,
        "the storm should have produced >= 10 worker panics, got {}",
        m.worker_panics
    );
    assert_eq!(
        m.workers_respawned, m.worker_panics,
        "every panicked worker is replaced by supervision"
    );
    assert!(m.faults_injected > 0, "the fault layer must report its injections");
    assert_eq!(shed, 0, "no deadline was configured, nothing should shed");
    // Server-side accounting closes: everything admitted either completed
    // or failed internally (no deadlines or displacement in this config).
    assert_eq!(m.submitted, m.completed + m.failed_internal, "server-side accounting leak");
    assert_eq!(m.completed, ok, "client and server disagree on completions");
    assert_eq!(m.failed_internal, internal, "client and server disagree on failures");

    // The engine is still healthy and still correct after the storm.
    let h = engine.health();
    assert!(h.live, "engine must stay live through the storm: {h:?}");
    assert_eq!(h.worker_panics, m.worker_panics);
    let clean = uniform_cube(600, 99);
    for _attempt in 0..50 {
        // Faults are still armed, so retry through injected failures; a
        // success must be bit-identical to the direct computation.
        if let Ok(r) = engine.process(clean.clone(), cfg) {
            assert_eq!(shape(&r), direct(&clean, &cfg), "post-storm response diverged");
            engine.shutdown();
            return;
        }
    }
    panic!("engine never served a clean frame after the storm");
}

/// `HEALTH` requests are answered inline over TCP — the probe works and
/// reflects worker liveness without touching the request queue.
#[test]
fn health_is_served_over_tcp() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(2)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let h = client.health().unwrap();
    assert!(h.live);
    assert_eq!(h.workers_alive, 2);
    assert_eq!(h.workers_configured, 2);
    assert_eq!(h.queued_by_class, [0, 0, 0]);
    assert_eq!(h.worker_panics, 0);
    assert_eq!(h.workers_respawned, 0);
    assert_eq!(h, engine.health(), "wire health equals the in-process snapshot");

    // Still answered while draining begins (the probe never queues).
    server.shutdown();
    engine.shutdown();
    assert!(!engine.health().live, "a stopped engine is not live");
}

/// An injected engine-side failure surfaces as `INTERNAL_ERROR` on the
/// wire, and the client contract marks it non-retryable (not shed).
#[test]
fn injected_internal_errors_are_non_retryable_on_the_wire() {
    let plan = FaultPlan::OFF.with_fault(FaultKind::Err, FaultPoint::Block, 1.0).with_seed(7);
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(1).faults(plan)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let err = client
        .process(&uniform_cube(300, 1), &PipelineConfig::default())
        .expect_err("every block task fails, the request cannot succeed");
    match &err {
        fractalcloud_serve::ClientError::Server { code, .. } => {
            assert_eq!(*code, status::INTERNAL_ERROR);
        }
        other => panic!("expected a server status, got {other:?}"),
    }
    assert!(!err.is_shed(), "INTERNAL_ERROR is non-retryable by contract");

    server.shutdown();
    engine.shutdown();
}

/// A request whose deadline expires while it waits in the queue is shed
/// with the retryable `DEADLINE_EXCEEDED` status on the wire.
#[test]
fn deadline_expired_in_queue_is_shed_retryable_on_the_wire() {
    let engine = Arc::new(Engine::start(
        ServeConfig::default().workers(1).max_batch(1).thread_budget(1).queue_capacity(8),
    ));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    // Plug the single worker with a fat frame so the deadlined request
    // genuinely waits in the queue past its budget.
    let plug = engine.submit(uniform_cube(32_768, 5), PipelineConfig::default()).unwrap();
    for _ in 0..2000 {
        let m = engine.metrics();
        if m.queue_depth == 0 && m.batches >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let err = client
        .process_with_options(
            &uniform_cube(200, 6),
            &PipelineConfig::default(),
            Priority::Normal,
            1,
        )
        .expect_err("a 1ms deadline behind a fat plug frame must expire in queue");
    match &err {
        fractalcloud_serve::ClientError::Server { code, .. } => {
            assert_eq!(*code, status::DEADLINE_EXCEEDED);
        }
        other => panic!("expected a server status, got {other:?}"),
    }
    assert!(err.is_shed(), "DEADLINE_EXCEEDED is retryable by contract");
    plug.wait().unwrap();
    assert_eq!(engine.metrics().shed_deadline, 1);

    // Retrying without a deadline (the contract's advice) succeeds.
    let retry = client.process(&uniform_cube(200, 6), &PipelineConfig::default()).unwrap();
    assert!(!retry.sampled_indices.is_empty());

    server.shutdown();
    engine.shutdown();
}

/// After surviving injected worker panics, successful responses remain
/// bit-identical to direct library calls — supervision replaces workers
/// without corrupting pooled scratch state.
#[test]
fn post_panic_responses_are_bit_identical_to_direct_calls() {
    let plan = FaultPlan::OFF.with_fault(FaultKind::Panic, FaultPoint::Worker, 0.4).with_seed(11);
    let engine = Engine::start(ServeConfig::default().workers(1).queue_capacity(16).faults(plan));
    let cloud = scene_cloud(&SceneConfig::default(), 1200, 3);
    let cfg = PipelineConfig::default();
    let want = direct(&cloud, &cfg);

    let mut successes_after_panic = 0;
    for _ in 0..200 {
        if let Ok(r) = engine.process(cloud.clone(), cfg) {
            if engine.metrics().worker_panics >= 1 {
                assert_eq!(shape(&r), want, "post-panic response diverged from direct calls");
                successes_after_panic += 1;
                if successes_after_panic >= 3 {
                    break;
                }
            }
        }
    }
    assert!(successes_after_panic >= 3, "storm never let a post-panic success through");
    assert!(engine.metrics().worker_panics >= 1);
    engine.shutdown();
}

/// Delay-only fault plans perturb timing, never results: a delay-faulted
/// engine answers bit-identically to a clean one (and to direct calls on
/// every backend).
#[test]
fn delay_only_faults_never_change_results() {
    let plan = FaultPlan::OFF
        .with_fault(FaultKind::Delay, FaultPoint::Worker, 0.5)
        .with_delay(FaultPoint::Worker, Duration::from_micros(300))
        .with_fault(FaultKind::Delay, FaultPoint::Block, 0.3)
        .with_delay(FaultPoint::Block, Duration::from_micros(100))
        .with_seed(23);
    // The clean engine pins `OFF` explicitly so this suite can also run
    // under a CI-wide `FRACTALCLOUD_FAULTS` delay sweep.
    let clean = Engine::start(ServeConfig::default().workers(1).faults(FaultPlan::OFF));
    let faulted = Engine::start(ServeConfig::default().workers(1).faults(plan));
    let cfg = PipelineConfig::default();

    for seed in 0..6 {
        let cloud = scene_cloud(&SceneConfig::default(), 900, seed);
        let want = direct(&cloud, &cfg);
        for backend in Backend::ALL {
            let via = kernels::with_backend(backend, || direct(&cloud, &cfg));
            assert_eq!(via, want, "backend {backend:?} diverged on direct calls");
        }
        let a = clean.process(cloud.clone(), cfg).unwrap();
        let b = faulted.process(cloud, cfg).unwrap();
        assert_eq!(shape(&a), want);
        assert_eq!(shape(&b), want, "a delay fault changed results");
    }
    assert!(faulted.metrics().faults_injected > 0, "the delay plan should have fired");
    assert_eq!(clean.metrics().faults_injected, 0);
    clean.shutdown();
    faulted.shutdown();
}

/// A seeded-but-all-zero plan builds no fault layer at all: injection is
/// genuinely off, metrics report zero, and responses are identical to the
/// default configuration.
#[test]
fn off_plan_is_zero_cost_and_identical_to_default() {
    assert!(FaultPlan::OFF.with_seed(99).is_off(), "a seed alone enables nothing");
    let explicit =
        Engine::start(ServeConfig::default().workers(1).faults(FaultPlan::OFF.with_seed(99)));
    let default = Engine::start(ServeConfig::default().workers(1));
    let cfg = PipelineConfig::default();
    let cloud = scene_cloud(&SceneConfig::default(), 1000, 8);
    let a = explicit.process(cloud.clone(), cfg).unwrap();
    let b = default.process(cloud.clone(), cfg).unwrap();
    assert_eq!(shape(&a), shape(&b));
    assert_eq!(shape(&a), direct(&cloud, &cfg));
    assert_eq!(explicit.metrics().faults_injected, 0);
    assert_eq!(explicit.metrics().worker_panics, 0);
    explicit.shutdown();
    default.shutdown();
}

/// Brown-out under a chaos storm: with the engine pinned one level into
/// brown-out AND a seeded fault plan (worker panics, block errors, dropped
/// cache inserts) raging, every submission still resolves exactly once,
/// every degraded success is the *bit-identical* budget-`k` prefix of the
/// full run (the same prefix on every kernel backend), and High priority
/// never degrades.
#[test]
fn brownout_chaos_storm_degrades_without_corruption() {
    let plan = FaultPlan::OFF
        .with_fault(FaultKind::Panic, FaultPoint::Worker, 0.1)
        .with_fault(FaultKind::Err, FaultPoint::Block, 0.05)
        .with_fault(FaultKind::Err, FaultPoint::CacheInsert, 0.2)
        .with_seed(0xB0_0F);
    let brownout = BrownoutConfig { forced: Some(1), ..BrownoutConfig::default() };
    let engine = Arc::new(Engine::start(
        ServeConfig::default()
            .workers(2)
            .queue_capacity(64)
            .max_batch(4)
            .faults(plan)
            .brownout(brownout),
    ));
    let cfg = PipelineConfig::default();
    let frames: Vec<PointCloud> = (0..3)
        .map(|seed| scene_cloud(&SceneConfig::default(), 500 + 150 * seed as usize, seed))
        .collect();

    // Per frame: the served budget at level 1 is `full >> 1`, and the
    // expected degraded answer is the run_budget prefix — verified
    // backend-invariant up front so a storm failure can't be blamed on
    // kernel divergence.
    let pipe = Pipeline::new(cfg).unwrap();
    struct Want {
        k: usize,
        prefix: (Vec<usize>, Vec<usize>),
        full: (Vec<usize>, Vec<usize>),
    }
    let expected: Vec<Want> = frames
        .iter()
        .map(|f| {
            let full_run = pipe.run(f, false).unwrap();
            let full = (full_run.sampled.indices, full_run.grouped.indices);
            let k = (full.0.len() >> 1).max(1);
            let budget_run = pipe.run_budget(f, k, false).unwrap();
            let prefix = (budget_run.sampled.indices, budget_run.grouped.indices);
            for backend in Backend::ALL {
                let via = kernels::with_backend(backend, || {
                    let o = pipe.run_budget(f, k, false).unwrap();
                    (o.sampled.indices, o.grouped.indices)
                });
                assert_eq!(via, prefix, "backend {backend:?} diverged on the budget prefix");
            }
            Want { k, prefix, full }
        })
        .collect();

    let (mut ok_normal, mut ok_high, mut internal, mut shed, mut hung) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut submitted = 0u64;
    for wave in 0..120 {
        let tickets: Vec<_> = (0..12)
            .map(|i| {
                let idx = (wave + i) % frames.len();
                let priority = if i % 3 == 0 { Priority::High } else { Priority::Normal };
                let t = engine.submit_with_priority(frames[idx].clone(), cfg, priority).unwrap();
                (idx, priority, t)
            })
            .collect();
        submitted += tickets.len() as u64;
        for (idx, priority, t) in tickets {
            match t.wait_timeout(Duration::from_secs(30)) {
                None => hung += 1,
                Some(Ok(r)) => {
                    let want = &expected[idx];
                    if priority == Priority::High {
                        assert!(!r.degraded, "High priority degraded under brown-out");
                        assert_eq!(r.budget_served, 0);
                        assert_eq!(shape(&r), want.full, "High response diverged mid-storm");
                        ok_high += 1;
                    } else {
                        assert!(r.degraded, "forced level 1 must mark Normal responses");
                        assert_eq!(r.budget_served, want.k);
                        assert_eq!(
                            shape(&r),
                            want.prefix,
                            "degraded response is not the budget-{} prefix",
                            want.k
                        );
                        ok_normal += 1;
                    }
                }
                Some(Err(fractalcloud_serve::ServeError::Internal)) => internal += 1,
                Some(Err(fractalcloud_serve::ServeError::Shed(_))) => shed += 1,
                Some(Err(e)) => panic!("unexpected outcome under chaos: {e}"),
            }
        }
        if engine.metrics().worker_panics >= 5 {
            break;
        }
    }

    assert_eq!(hung, 0, "brown-out chaos must never hang a waiter");
    assert_eq!(
        ok_normal + ok_high + internal + shed,
        submitted,
        "every submission resolves exactly once"
    );
    assert_eq!(shed, 0, "level 1 degrades instead of shedding, and no deadline is set");
    assert!(ok_normal > 0 && ok_high > 0, "the storm should complete work in both classes");

    let m = engine.metrics();
    // The degraded counter ticks at execution start, so it can lead the
    // success count when a worker panics after counting — `>=`, not `==`.
    assert!(
        m.requests_degraded[Priority::Normal.index()][0] >= ok_normal,
        "degraded executions underflow the books: {m:?}"
    );
    assert_eq!(
        m.requests_degraded[Priority::High.index()],
        [0, 0, 0],
        "High must never appear in the degraded books"
    );
    assert!(m.degraded_total() >= ok_normal);
    assert!(engine.health().live, "engine must stay live through the brown-out storm");
    engine.shutdown();
}

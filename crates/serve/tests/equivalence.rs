//! The serving layer's correctness contract: every response — in-process or
//! over TCP, cold or partition-cache-hit, lone or fused into a batch — is
//! bit-identical to calling the library directly, on every kernel backend.

use fractalcloud_core::{block_ball_query, block_fps, BppoConfig, Fractal, PipelineConfig};
use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};
use fractalcloud_pointcloud::kernels::{self, Backend};
use fractalcloud_pointcloud::PointCloud;
use fractalcloud_serve::{Engine, FrameResponse, Priority, ServeClient, ServeConfig, TcpServer};
use std::sync::Arc;

/// The direct library computation a served frame must match exactly.
fn direct(cloud: &PointCloud, cfg: &PipelineConfig) -> FrameResponseShape {
    let built = Fractal::with_threshold(cfg.threshold).build(cloud).unwrap();
    let bppo = BppoConfig::default();
    let fps = block_fps(cloud, &built.partition, cfg.sample_rate, &bppo).unwrap();
    let bq =
        block_ball_query(cloud, &built.partition, &fps.per_block, cfg.radius, cfg.neighbors, &bppo)
            .unwrap();
    FrameResponseShape {
        sampled_indices: fps.indices,
        neighbor_indices: bq.indices,
        found: bq.found,
        num: bq.num,
        blocks: built.partition.blocks.len(),
    }
}

/// The result fields that define equivalence.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FrameResponseShape {
    sampled_indices: Vec<usize>,
    neighbor_indices: Vec<usize>,
    found: Vec<usize>,
    num: usize,
    blocks: usize,
}

fn shape(r: &FrameResponse) -> FrameResponseShape {
    FrameResponseShape {
        sampled_indices: r.sampled_indices.clone(),
        neighbor_indices: r.neighbor_indices.clone(),
        found: r.found.clone(),
        num: r.num,
        blocks: r.blocks,
    }
}

#[test]
fn server_responses_are_bit_identical_to_direct_calls_on_every_backend() {
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(2).max_batch(4)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let cases: Vec<(PointCloud, PipelineConfig)> = vec![
        (scene_cloud(&SceneConfig::default(), 4096, 1), PipelineConfig::default()),
        (scene_cloud(&SceneConfig::default(), 2000, 2), PipelineConfig::new(64, 0.5, 0.2, 8)),
        (uniform_cube(777, 3), PipelineConfig::new(128, 0.1, 0.6, 32)),
        // Tiny frame: single block, k larger than the block.
        (uniform_cube(40, 4), PipelineConfig::new(64, 0.25, 0.3, 64)),
    ];

    for (cloud, cfg) in &cases {
        // Direct results agree across every backend (the kernel layer's
        // own guarantee — rechecked here because the server claim builds
        // on it).
        let expected = direct(cloud, cfg);
        for backend in Backend::ALL {
            let via = kernels::with_backend(backend, || direct(cloud, cfg));
            assert_eq!(via, expected, "backend {backend:?} diverged on direct calls");
        }

        // In-process serving: cold, then cache-hit.
        let cold = engine.process(cloud.clone(), *cfg).unwrap();
        assert_eq!(shape(&cold), expected, "served response diverged from direct calls");
        let warm = engine.process(cloud.clone(), *cfg).unwrap();
        assert!(warm.cache_hit, "identical frame bytes must hit the partition cache");
        assert_eq!(shape(&warm), expected, "cache-hit response diverged");

        // Over the wire.
        let wire = client.process(cloud, cfg).unwrap();
        assert_eq!(
            wire.sampled_indices,
            expected.sampled_indices.iter().map(|&i| i as u32).collect::<Vec<u32>>()
        );
        assert_eq!(
            wire.neighbor_indices,
            expected.neighbor_indices.iter().map(|&i| i as u32).collect::<Vec<u32>>()
        );
        assert_eq!(wire.found, expected.found.iter().map(|&i| i as u32).collect::<Vec<u32>>());
        assert_eq!(wire.num as usize, expected.num);
        assert_eq!(wire.blocks as usize, expected.blocks);
    }

    server.shutdown();
    engine.shutdown();
}

#[test]
fn batched_execution_matches_direct_calls_for_every_member() {
    // Flood enough compatible frames that batches actually fuse, then
    // verify each response individually against the direct computation.
    let engine =
        Arc::new(Engine::start(ServeConfig::default().workers(2).max_batch(8).queue_capacity(64)));
    let cfg = PipelineConfig::default();
    let clouds: Vec<PointCloud> =
        (0..24).map(|seed| scene_cloud(&SceneConfig::default(), 1500, seed)).collect();
    let tickets: Vec<_> = clouds.iter().map(|c| engine.submit(c.clone(), cfg).unwrap()).collect();
    for (cloud, ticket) in clouds.iter().zip(tickets) {
        let r = ticket.wait().unwrap();
        assert_eq!(shape(&r), direct(cloud, &cfg), "a batched frame diverged");
    }
    engine.shutdown();
}

#[test]
fn cross_frame_block_batching_is_bit_identical_to_per_frame_execution() {
    // The tentpole contract: a fused batch scheduled as ONE parallel map
    // over the union of all frames' blocks must answer byte-for-byte what
    // per-frame sequential execution answers — on every kernel backend
    // (this test runs under whichever backend dispatch selected; CI
    // repeats the suite with FRACTALCLOUD_KERNEL=scalar and soa), for
    // *ragged* batches whose frames have wildly different block counts.
    let cfg = PipelineConfig::default();
    let clouds: Vec<PointCloud> = vec![
        // First frame is the largest so the remaining submissions queue up
        // behind it and genuinely fuse.
        (scene_cloud(&SceneConfig::default(), 6000, 21)),
        (scene_cloud(&SceneConfig::default(), 1500, 22)),
        (uniform_cube(300, 23)),
        (uniform_cube(40, 24)), // single block, smaller than the threshold
        (scene_cloud(&SceneConfig::default(), 4096, 25)),
    ];
    let expected: Vec<FrameResponseShape> = clouds.iter().map(|c| direct(c, &cfg)).collect();
    // Direct results agree across every backend (re-checked so the serve
    // claim composes with the kernel layer's own guarantee).
    for backend in Backend::ALL {
        for (cloud, want) in clouds.iter().zip(&expected) {
            let via = kernels::with_backend(backend, || direct(cloud, &cfg));
            assert_eq!(&via, want, "backend {backend:?} diverged on direct calls");
        }
    }

    // thread_budget(4) forces the block-batched schedule even on 1-CPU
    // hosts (it only engages with a budget > 1 to saturate) and gives the
    // legacy arm genuinely parallel lanes — both must still match the
    // sequential per-frame expectation bit for bit.
    for batch_blocks in [true, false] {
        let engine = Arc::new(Engine::start(
            ServeConfig::default()
                .workers(1)
                .max_batch(8)
                .queue_capacity(16)
                .cache_capacity(0)
                .thread_budget(4)
                .batch_blocks(batch_blocks),
        ));
        // Mixed priorities across the batch: scheduling class must never
        // change results.
        let tickets: Vec<_> = clouds
            .iter()
            .enumerate()
            .map(|(i, c)| {
                engine
                    .submit_with_priority(c.clone(), cfg, Priority::ALL[i % 3])
                    .expect("queue sized for the whole batch")
            })
            .collect();
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        for ((r, want), cloud) in responses.iter().zip(&expected).zip(&clouds) {
            assert_eq!(
                &shape(r),
                want,
                "batch_blocks={batch_blocks} diverged on a {}-point frame",
                cloud.len()
            );
        }
        if batch_blocks {
            let fused = responses.iter().map(|r| r.batch_size).max().unwrap();
            assert!(fused >= 2, "expected at least one genuinely fused batch, got {fused}");
        }
        engine.shutdown();
    }
}

#[test]
fn warmed_worker_workspaces_never_leak_state_between_frames() {
    // The zero-allocation steady state reuses one workspace (and pooled
    // output staging) per worker lane across every frame it serves. Push a
    // stream of interleaved frames of very different shapes — big, tiny,
    // repeated (cache hits), differing configs — through ONE worker, so
    // the same scratch serves them all back to back, and check every
    // response against the direct library computation.
    let engine = Engine::start(ServeConfig::default().workers(1).queue_capacity(64));
    let shapes = [
        (4096usize, 1u64),
        (57, 2),
        (4096, 1), // cache-hit repeat of the first frame
        (700, 3),
        (57, 2), // cache-hit repeat of the tiny frame
        (2048, 4),
    ];
    let configs = [
        PipelineConfig::default(),
        PipelineConfig::new(64, 0.5, 0.9, 4),
        PipelineConfig::default(),
        PipelineConfig::new(32, 0.1, 0.2, 2),
        PipelineConfig::new(64, 0.5, 0.9, 4),
        PipelineConfig::default(),
    ];
    for round in 0..2 {
        for ((n, seed), cfg) in shapes.iter().zip(configs.iter()) {
            let cloud = scene_cloud(&SceneConfig::default(), *n, *seed);
            let served = engine.process(cloud.clone(), *cfg).unwrap();
            assert_eq!(
                shape(&served),
                direct(&cloud, cfg),
                "dirty worker workspace changed results (round {round}, n={n}, seed={seed})"
            );
        }
    }
    let m = engine.metrics();
    assert!(m.cache_hits > 0, "the repeats must exercise the cache-hit path");
    engine.shutdown();
}

#[test]
fn sequential_and_parallel_serving_configurations_agree() {
    // thread_budget 1 forces every request onto a sequential lane;
    // a large budget lets lone requests parallelize. Same results.
    let cloud = scene_cloud(&SceneConfig::default(), 5000, 7);
    let cfg = PipelineConfig::default();

    let seq_engine = Engine::start(ServeConfig::default().workers(1).thread_budget(1));
    let par_engine = Engine::start(ServeConfig::default().workers(2).thread_budget(8));
    let a = seq_engine.process(cloud.clone(), cfg).unwrap();
    let b = par_engine.process(cloud, cfg).unwrap();
    assert_eq!(shape(&a), shape(&b));
    seq_engine.shutdown();
    par_engine.shutdown();
}

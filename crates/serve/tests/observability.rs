//! Observability is free and faithful: enabling the flight recorder never
//! changes a single response bit on any kernel backend, the `METRICS` and
//! `TRACE_DUMP` opcodes speak well-formed exposition / Chrome trace JSON,
//! and `HEALTH` reports the recorder's live status.

use fractalcloud_core::PipelineConfig;
use fractalcloud_obs as obs;
use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};
use fractalcloud_pointcloud::kernels::{self, Backend};
use fractalcloud_pointcloud::PointCloud;
use fractalcloud_serve::{
    Aggregation, Engine, FrameResponse, InferRequest, ModelConfig, ServeClient, ServeConfig,
    TcpServer,
};
use proptest::{proptest, ProptestConfig};
use std::sync::{Arc, Mutex};

/// The recorder is process-global state; tests that flip it must not
/// interleave with tests that read it.
static RECORDER: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    RECORDER.lock().unwrap_or_else(|p| p.into_inner())
}

fn frame_bits(r: &FrameResponse) -> (Vec<usize>, Vec<usize>, Vec<usize>, usize, usize) {
    (r.sampled_indices.clone(), r.neighbor_indices.clone(), r.found.clone(), r.num, r.blocks)
}

fn logit_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn zoo_model() -> ModelConfig {
    ModelConfig::table1().remove(0)
}

/// One frame + one inference through a fresh engine, returning every bit
/// that defines the responses.
#[allow(clippy::type_complexity)]
fn serve_once(
    cloud: &PointCloud,
) -> ((Vec<usize>, Vec<usize>, Vec<usize>, usize, usize), Vec<u32>, Vec<usize>) {
    let engine = Engine::start(ServeConfig::default().workers(2).max_batch(4));
    let frame = engine.process(cloud.clone(), PipelineConfig::default()).expect("frame");
    let infer = engine
        .process_infer(
            Arc::new(cloud.clone()),
            InferRequest {
                aggregation: Some(Aggregation::Delayed),
                ..InferRequest::new(zoo_model())
            },
        )
        .expect("infer");
    engine.shutdown();
    (frame_bits(&frame), logit_bits(&infer.output.logits), infer.output.row_index.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Tracing is observation, not participation: with the recorder off and
    /// then on, frame indices and inference logits are bit-identical on
    /// every kernel backend.
    #[test]
    fn responses_bit_identical_tracing_on_vs_off(n in 300usize..900, seed in 0u64..1_000) {
        let _guard = lock();
        let cloud = uniform_cube(n, seed);
        for backend in Backend::ALL {
            obs::disable();
            let off = kernels::with_backend(backend, || serve_once(&cloud));
            obs::enable(4096);
            let on = kernels::with_backend(backend, || serve_once(&cloud));
            obs::disable();
            proptest::prop_assert_eq!(&off.0, &on.0);
            proptest::prop_assert_eq!(&off.1, &on.1);
            proptest::prop_assert_eq!(&off.2, &on.2);
        }
    }
}

/// `METRICS` over TCP renders a snapshot where every line parses as
/// `name{labels} value`, and reflects the traffic that preceded it.
#[test]
fn metrics_opcode_speaks_well_formed_exposition() {
    let _guard = lock();
    obs::disable();
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(2)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let cloud = scene_cloud(&SceneConfig::default(), 2048, 7);
    client.process(&cloud, &PipelineConfig::default()).expect("frame");

    let text = client.metrics_text().expect("METRICS reply");
    let mut names = Vec::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        let parsed = obs::expo::parse_line(line)
            .unwrap_or_else(|| panic!("unparseable exposition line: {line:?}"));
        names.push(parsed.name);
    }
    assert!(names.len() >= 40, "expected a full snapshot, got {} lines", names.len());
    for required in [
        "fractalcloud_uptime_ms",
        "fractalcloud_requests_total",
        "fractalcloud_latency_p99_us",
        "fractalcloud_queue_wait_p99_us",
        "fractalcloud_trace_enabled",
    ] {
        assert!(names.iter().any(|n| n == required), "missing metric {required}");
    }
    // The frame above must be visible in the snapshot the wire returned.
    let completed = text
        .lines()
        .find(|l| l.starts_with("fractalcloud_requests_total{outcome=\"completed\"}"))
        .expect("completed counter");
    let value: f64 = completed.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(value >= 1.0, "completed counter not incremented: {completed}");

    server.shutdown();
    engine.shutdown();
}

/// `TRACE_DUMP` returns Chrome trace JSON and drains: spans recorded for a
/// request appear once, and a second dump no longer carries them.
#[test]
fn trace_dump_opcode_drains_chrome_json() {
    let _guard = lock();
    obs::enable(4096);
    let _ = obs::drain(); // discard spans left over from other tests
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(2)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let cloud = uniform_cube(1024, 11);
    client.process(&cloud, &PipelineConfig::default()).expect("frame");

    let first = client.trace_dump().expect("TRACE_DUMP reply");
    assert!(first.starts_with("{\"traceEvents\":["), "not chrome trace JSON: {first:.40}");
    assert!(first.contains("\"queue_wait\""), "queue-wait span missing from {first}");
    assert!(first.contains("\"wire_encode\""), "wire-encode span missing");

    let second = client.trace_dump().expect("second TRACE_DUMP");
    assert!(
        !second.contains("\"queue_wait\""),
        "dump did not drain; second dump still has spans: {second}"
    );

    obs::disable();
    server.shutdown();
    engine.shutdown();
}

/// `HEALTH` carries the recorder's status and an uptime that moves.
#[test]
fn health_reports_trace_status_and_uptime() {
    let _guard = lock();
    obs::enable(2048);
    let engine = Arc::new(Engine::start(ServeConfig::default().workers(1)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    let cloud = uniform_cube(512, 5);
    client.process(&cloud, &PipelineConfig::default()).expect("frame");

    let health = client.health().expect("HEALTH reply");
    assert!(health.trace_enabled);
    assert_eq!(health.trace_capacity, 2048);
    assert!(health.live);

    std::thread::sleep(std::time::Duration::from_millis(2));
    let later = client.health().expect("second HEALTH reply");
    assert!(later.uptime_ms >= health.uptime_ms);
    assert!(later.uptime_ms > 0, "uptime should be nonzero after traffic + sleep");

    obs::disable();
    server.shutdown();
    engine.shutdown();
}

/// Satellite 1: INFER tickets land in the same queue-wait and per-class
/// latency histograms as frames — a bulk inference shows up under its
/// class, not just in the totals.
#[test]
fn infer_tickets_share_queue_wait_and_class_histograms() {
    let _guard = lock();
    obs::disable();
    let engine = Engine::start(ServeConfig::default().workers(1));
    let cloud = Arc::new(uniform_cube(1024, 13));

    let before = engine.metrics();
    let request = InferRequest {
        priority: fractalcloud_serve::Priority::Bulk,
        ..InferRequest::new(zoo_model())
    };
    engine.process_infer(Arc::clone(&cloud), request).expect("infer");
    let after = engine.metrics();

    let bulk = fractalcloud_serve::Priority::Bulk.index();
    assert_eq!(after.completed_by_class[bulk], before.completed_by_class[bulk] + 1);
    assert!(after.latency_p99_by_class_us[bulk] > 0, "bulk latency histogram untouched by INFER");
    assert!(
        after.queue_wait_p99_by_class_us[bulk] >= before.queue_wait_p99_by_class_us[bulk],
        "bulk queue-wait histogram untouched by INFER"
    );
    assert!(after.queue_wait_p99_us >= before.queue_wait_p99_us);

    engine.shutdown();
}

//! Scoped-thread data parallelism for the FractalCloud hot paths.
//!
//! The crates.io registry is unreachable in this build environment, so
//! instead of `rayon` this small crate provides the one primitive the
//! workspace needs, built on `std::thread::scope` (no `unsafe`, no global
//! pool): [`parallel_map`] — map a function over owned items, returning
//! results in item order regardless of scheduling (work distributed by an
//! atomic counter so imbalanced items still load-balance). It falls back
//! to sequential execution for trivially small inputs or when only one
//! worker is available, and is deterministic in its *results* by
//! construction: scheduling affects only wall-clock time.
//! [`parallel_map_budget`] is the same primitive with an explicit worker
//! budget, so layers that multiplex many independent requests (the serving
//! engine) can hand each one a bounded sub-pool. The `*_with` variants
//! ([`parallel_map_with`], [`parallel_map_budget_with`]) additionally hand
//! every execution lane a private scratch value (`make` is called once per
//! lane) — the hook the workspace layer uses to give each lane a reusable
//! arena without any cross-thread sharing.
//!
//! The worker count is `std::thread::available_parallelism`, overridable
//! with the `FRACTALCLOUD_THREADS` environment variable (set to `1` to
//! force sequential execution everywhere).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of worker threads parallel operations will use.
///
/// Honors `FRACTALCLOUD_THREADS` when set (minimum 1), otherwise
/// `available_parallelism`, otherwise 4. Resolved once per process: this
/// is called on every `parallel_map` (per node split during a Fractal
/// build), so the env lookup is cached.
pub fn workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        if let Ok(v) = std::env::var("FRACTALCLOUD_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    })
}

thread_local! {
    /// The worker allowance the enclosing [`parallel_map_budget`] region
    /// granted this thread (`None` outside any budgeted region).
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker budget in effect on the current thread: the enclosing
/// [`parallel_map_budget`] region's per-lane allowance, or [`workers`] when
/// no budgeted region is active.
///
/// This is what [`parallel_map`]'s `parallel = true` resolves to, so a
/// fan-out nested inside a budgeted lane transparently respects the lane's
/// allowance instead of grabbing the whole pool.
pub fn effective_budget() -> usize {
    BUDGET.with(|b| b.get()).unwrap_or_else(workers)
}

/// RAII restore for the calling thread's budget (the inline path runs `f`
/// on the caller, whose previous allowance must survive the call).
struct BudgetGuard(Option<usize>);

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        BUDGET.with(|b| b.set(self.0));
    }
}

fn set_budget(v: usize) -> BudgetGuard {
    BudgetGuard(BUDGET.with(|b| b.replace(Some(v))))
}

/// Maps `f` over `items`, in parallel when `parallel` is true, returning
/// results in item order.
///
/// `f` receives the item index and the owned item. Items are claimed one at
/// a time through an atomic counter, so heterogeneous item costs still
/// balance across workers. Results are identical to the sequential order
/// regardless of scheduling.
///
/// `parallel = true` uses [`effective_budget`] workers (the enclosing
/// budget region's allowance, or the global pool); `parallel = false` runs
/// inline without touching the budget context — it skips parallelism at
/// *this* level only, so nested fan-outs keep their allowance.
pub fn parallel_map<I, T, F>(items: Vec<I>, parallel: bool, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    parallel_map_with(items, parallel, || (), |i, item, ()| f(i, item))
}

/// [`parallel_map`] with per-lane scratch state: every execution lane calls
/// `make` exactly once and hands the resulting scratch, by `&mut`, to each
/// `f` invocation it claims — so scoped worker threads never share scratch
/// and the scratch is reused across all the items a lane processes.
///
/// The inline path (`parallel = false`, or a budget/item count of one)
/// also calls `make` exactly once, so callers that hand out pooled
/// workspaces see identical checkout behavior whether or not threads were
/// spawned. Results are identical to [`parallel_map`] for any `make`.
pub fn parallel_map_with<I, T, S, M, F>(items: Vec<I>, parallel: bool, make: M, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(usize, I, &mut S) -> T + Sync,
{
    if parallel {
        parallel_map_budget_with(items, effective_budget(), make, f)
    } else {
        let mut scratch = make();
        items.into_iter().enumerate().map(|(i, item)| f(i, item, &mut scratch)).collect()
    }
}

/// [`parallel_map`] with an explicit worker budget instead of the global
/// pool size — the primitive behind per-request thread budgets in the
/// serving layer, where concurrent requests each get a bounded sub-pool
/// rather than all contending for every core.
///
/// The budget caps the whole subtree, not just this level: each spawned
/// lane inherits a share of the budget as its own [`effective_budget`], so
/// nested [`parallel_map`] calls keep the total number of active workers
/// within the budget — *exactly*, not up to rounding. The remainder rule:
/// with `lanes = min(budget, items)`, every lane gets `budget / lanes`
/// workers and the first `budget % lanes` lanes get one extra, so the lane
/// allowances always sum to precisely `budget` (a budget of 7 over 4 lanes
/// grants 2+2+2+1, not 1+1+1+1). A `budget` of 0 or 1 runs sequentially
/// and pins nested fan-outs to 1; a single item keeps the entire budget.
/// Budgets above [`workers`] are honored as given (the caller owns
/// oversubscription decisions). Results are identical for every budget.
pub fn parallel_map_budget<I, T, F>(items: Vec<I>, budget: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    parallel_map_budget_with(items, budget, || (), |i, item, ()| f(i, item))
}

/// [`parallel_map_budget`] with per-lane scratch state (see
/// [`parallel_map_with`]): each lane — spawned or inline — calls `make`
/// once and reuses the scratch across every item it claims. This is how
/// higher layers hand out one workspace per lane: the budget split decides
/// how many lanes exist, and each lane's scratch is private to it for the
/// whole call.
pub fn parallel_map_budget_with<I, T, S, M, F>(
    items: Vec<I>,
    budget: usize,
    make: M,
    f: F,
) -> Vec<T>
where
    I: Send,
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(usize, I, &mut S) -> T + Sync,
{
    let n = items.len();
    let budget = budget.max(1);
    let threads = budget.min(n);
    if threads <= 1 || n <= 1 {
        // A lone item keeps the whole budget; a budget of 1 pins the
        // subtree sequential.
        let _inline = set_budget(if n <= 1 { budget } else { 1 });
        let mut scratch = make();
        return items.into_iter().enumerate().map(|(i, item)| f(i, item, &mut scratch)).collect();
    }
    // Remainder rule: every lane gets `budget / threads`, and the first
    // `budget % threads` lanes get one extra worker, so the per-lane
    // allowances sum to exactly `budget` (a budget of 7 over 4 lanes is
    // 2+2+2+1, never 1+1+1+1 with three workers lost to truncation).
    let sub_budget = budget / threads;
    let extra_lanes = budget % threads;

    // Each slot is locked exactly once by the worker that claims its index,
    // so the mutexes are uncontended; they exist to move `I` out safely.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();

    std::thread::scope(|scope| {
        let (slots, next, make, f) = (&slots, &next, &make, &f);
        let mut handles = Vec::with_capacity(threads);
        for lane in 0..threads {
            let lane_budget = sub_budget + usize::from(lane < extra_lanes);
            handles.push(scope.spawn(move || {
                let _lane = set_budget(lane_budget);
                let mut scratch = make();
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item =
                        slots[i].lock().expect("slot lock").take().expect("item claimed once");
                    local.push((i, f(i, item, &mut scratch)));
                }
                local
            }));
        }
        // Join every lane before reacting to a panic, then re-raise the
        // first panic payload on the calling thread. `resume_unwind` (rather
        // than `expect`) keeps a lane panic an ordinary unwind that callers
        // may `catch_unwind` — the serving engine's panic isolation depends
        // on this — instead of a double-panic abort inside the scope.
        let mut panic_payload = None;
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, v) in local {
                        out[i] = Some(v);
                    }
                }
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    });
    out.into_iter().map(|o| o.expect("every item computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_panics_propagate_as_a_catchable_unwind() {
        // A panic on a spawned lane must surface as an ordinary unwind on
        // the calling thread (resume_unwind), not a double-panic abort —
        // the serving engine catches these to isolate request failures.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map_budget((0..64usize).collect::<Vec<_>>(), 4, |_, v| {
                if v == 17 {
                    panic!("injected lane panic");
                }
                v
            })
        }));
        assert!(result.is_err(), "the lane panic must reach the caller as an Err payload");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let seq = parallel_map(items.clone(), false, |i, v| i * 31 + v);
        let par = parallel_map(items, true, |i, v| i * 31 + v);
        assert_eq!(seq, par);
        assert_eq!(seq[7], 7 * 31 + 7);
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = parallel_map(Vec::<u32>::new(), true, |_, v| v);
        assert!(empty.is_empty());
        let one = parallel_map(vec![9usize], true, |i, v| v + i);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn parallel_map_moves_non_clone_items() {
        let items: Vec<Vec<usize>> = (0..64).map(|i| vec![i; i % 5]).collect();
        let lens = parallel_map(items, true, |_, v| v.len());
        assert_eq!(lens[4], 4);
    }

    #[test]
    fn parallel_map_with_borrowed_environment() {
        let base: Vec<usize> = (0..1000).collect();
        let ranges: Vec<std::ops::Range<usize>> = vec![0..250, 250..700, 700..1000];
        let sums = parallel_map(ranges, true, |_, r| base[r].iter().sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), 1000 * 999 / 2);
    }

    #[test]
    fn workers_is_positive() {
        assert!(workers() >= 1);
    }

    #[test]
    fn budgeted_map_matches_sequential_for_every_budget() {
        let items: Vec<usize> = (0..123).collect();
        let seq = parallel_map_budget(items.clone(), 1, |i, v| i * 7 + v);
        for budget in [0usize, 2, 3, 8, 64] {
            let out = parallel_map_budget(items.clone(), budget, |i, v| i * 7 + v);
            assert_eq!(out, seq, "budget {budget}");
        }
    }

    #[test]
    fn budgeted_map_caps_threads_at_item_count() {
        // 2 items with a budget of 16 must still complete (threads min n).
        let out = parallel_map_budget(vec![10usize, 20], 16, |_, v| v * 2);
        assert_eq!(out, vec![20, 40]);
    }

    #[test]
    fn nested_fan_outs_inherit_divided_budgets() {
        // 4 lanes sharing a budget of 4: one worker each.
        let seen = parallel_map_budget((0..4).collect::<Vec<_>>(), 4, |_, _| effective_budget());
        assert_eq!(seen, vec![1; 4]);
        // 2 lanes sharing 6: three workers each.
        let seen = parallel_map_budget((0..2).collect::<Vec<_>>(), 6, |_, _| effective_budget());
        assert_eq!(seen, vec![3; 2]);
        // A lone item keeps the whole budget.
        let seen = parallel_map_budget(vec![()], 6, |_, ()| effective_budget());
        assert_eq!(seen, vec![6]);
        // A budget of 1 pins the subtree sequential.
        let seen = parallel_map_budget((0..3).collect::<Vec<_>>(), 1, |_, _| effective_budget());
        assert_eq!(seen, vec![1; 3]);
    }

    #[test]
    fn remainder_budget_lanes_sum_to_budget_exactly() {
        use std::sync::Barrier;
        // A barrier inside `f` forces every lane to claim exactly one item,
        // so the observed allowances are the exact per-lane grants.
        let barrier = Barrier::new(4);
        let seen = parallel_map_budget((0..4).collect::<Vec<usize>>(), 7, |_, _| {
            barrier.wait();
            effective_budget()
        });
        let mut lanes = seen;
        lanes.sort_unstable();
        // Budget 7 over 4 lanes: 2+2+2+1, never 1+1+1+1 (3 workers lost).
        assert_eq!(lanes, vec![1, 2, 2, 2]);
        assert_eq!(lanes.iter().sum::<usize>(), 7, "lane allowances must sum to the budget");

        let barrier = Barrier::new(4);
        let mut lanes = parallel_map_budget((0..4).collect::<Vec<usize>>(), 11, |_, _| {
            barrier.wait();
            effective_budget()
        });
        lanes.sort_unstable();
        assert_eq!(lanes, vec![2, 3, 3, 3]);
        assert!(lanes.iter().sum::<usize>() <= 11);
    }

    #[test]
    fn scratch_is_per_lane_and_reused_across_items() {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        // Each lane's scratch accumulates the items it processed; lanes
        // never observe one another's scratch, and together they cover
        // every item exactly once.
        let seen = Mutex::new(Vec::<Vec<usize>>::new());
        let items: Vec<usize> = (0..97).collect();
        let out = parallel_map_budget_with(
            items,
            4,
            Vec::<usize>::new,
            |_, v, scratch: &mut Vec<usize>| {
                scratch.push(v);
                (v, scratch.len())
            },
        );
        // Record per-lane progressions: within one lane, the scratch length
        // strictly increases with each claimed item.
        let mut by_count: Vec<usize> = out.iter().map(|&(_, c)| c).collect();
        by_count.sort_unstable();
        let all: BTreeSet<usize> = out.iter().map(|&(v, _)| v).collect();
        assert_eq!(all.len(), 97, "every item processed exactly once");
        assert_eq!(by_count[0], 1, "every lane starts from a fresh scratch");
        drop(seen);
    }

    #[test]
    fn scratch_make_called_once_on_inline_path() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let makes = AtomicUsize::new(0);
        let out = parallel_map_with(
            (0..10).collect::<Vec<usize>>(),
            false,
            || {
                makes.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |_, v, s| {
                *s += 1;
                v + *s
            },
        );
        assert_eq!(makes.load(Ordering::Relaxed), 1, "inline path shares one scratch");
        assert_eq!(out[9], 9 + 10, "scratch persisted across all inline items");
    }

    #[test]
    fn budget_context_restores_after_inline_regions() {
        let outer = effective_budget();
        let _ = parallel_map_budget(vec![1u32], 5, |_, v| v);
        assert_eq!(effective_budget(), outer, "inline region must restore the caller's budget");
    }

    #[test]
    fn sequential_bool_map_is_transparent_to_the_budget() {
        // parallel = false skips parallelism at this level only: a nested
        // parallel map inside still sees the enclosing allowance.
        let seen = parallel_map_budget(vec![()], 4, |_, ()| {
            parallel_map(vec![()], false, |_, ()| effective_budget())
        });
        assert_eq!(seen, vec![vec![4]]);
    }
}

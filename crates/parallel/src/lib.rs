//! Scoped-thread data parallelism for the FractalCloud hot paths.
//!
//! The crates.io registry is unreachable in this build environment, so
//! instead of `rayon` this small crate provides the one primitive the
//! workspace needs, built on `std::thread::scope` (no `unsafe`, no global
//! pool): [`parallel_map`] — map a function over owned items, returning
//! results in item order regardless of scheduling (work distributed by an
//! atomic counter so imbalanced items still load-balance). It falls back
//! to sequential execution for trivially small inputs or when only one
//! worker is available, and is deterministic in its *results* by
//! construction: scheduling affects only wall-clock time.
//!
//! The worker count is `std::thread::available_parallelism`, overridable
//! with the `FRACTALCLOUD_THREADS` environment variable (set to `1` to
//! force sequential execution everywhere).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of worker threads parallel operations will use.
///
/// Honors `FRACTALCLOUD_THREADS` when set (minimum 1), otherwise
/// `available_parallelism`, otherwise 4. Resolved once per process: this
/// is called on every `parallel_map` (per node split during a Fractal
/// build), so the env lookup is cached.
pub fn workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        if let Ok(v) = std::env::var("FRACTALCLOUD_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    })
}

/// Maps `f` over `items`, in parallel when `parallel` is true, returning
/// results in item order.
///
/// `f` receives the item index and the owned item. Items are claimed one at
/// a time through an atomic counter, so heterogeneous item costs still
/// balance across workers. Results are identical to the sequential order
/// regardless of scheduling.
pub fn parallel_map<I, T, F>(items: Vec<I>, parallel: bool, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    let threads = if parallel { workers().min(n) } else { 1 };
    if threads <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    // Each slot is locked exactly once by the worker that claims its index,
    // so the mutexes are uncontended; they exist to move `I` out safely.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item =
                        slots[i].lock().expect("slot lock").take().expect("item claimed once");
                    local.push((i, f(i, item)));
                }
                local
            }));
        }
        for h in handles {
            for (i, v) in h.join().expect("worker panicked") {
                out[i] = Some(v);
            }
        }
    });
    out.into_iter().map(|o| o.expect("every item computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let seq = parallel_map(items.clone(), false, |i, v| i * 31 + v);
        let par = parallel_map(items, true, |i, v| i * 31 + v);
        assert_eq!(seq, par);
        assert_eq!(seq[7], 7 * 31 + 7);
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = parallel_map(Vec::<u32>::new(), true, |_, v| v);
        assert!(empty.is_empty());
        let one = parallel_map(vec![9usize], true, |i, v| v + i);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn parallel_map_moves_non_clone_items() {
        let items: Vec<Vec<usize>> = (0..64).map(|i| vec![i; i % 5]).collect();
        let lens = parallel_map(items, true, |_, v| v.len());
        assert_eq!(lens[4], 4);
    }

    #[test]
    fn parallel_map_with_borrowed_environment() {
        let base: Vec<usize> = (0..1000).collect();
        let ranges: Vec<std::ops::Range<usize>> = vec![0..250, 250..700, 700..1000];
        let sums = parallel_map(ranges, true, |_, r| base[r].iter().sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), 1000 * 999 / 2);
    }

    #[test]
    fn workers_is_positive() {
        assert!(workers() >= 1);
    }
}

//! Synthetic point-cloud generators.
//!
//! The paper evaluates on ModelNet40 (objects), ShapeNet (part-labelled
//! objects) and S3DIS (indoor scenes). Those datasets are not redistributable
//! here, so this module generates clouds with the *same geometric statistics*
//! the paper's analysis depends on:
//!
//! * points sampled on **object surfaces** with consistent sampling frequency
//!   (the core assumption behind shape-aware partitioning, §III-B);
//! * **non-uniform density** across space (what breaks space-uniform
//!   partitioning, Fig. 3(b));
//! * **coplanar structure** in scenes — floors/walls where one axis does not
//!   split (§VI-D motivates cycling all three axes);
//! * **outliers** at 0.5–2.5 % of points (§VI-D measures exactly this range
//!   for S3DIS).
//!
//! All generators are deterministic given a seed.

use crate::cloud::PointCloud;
use crate::point::Point3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which synthetic dataset family to mimic (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// ModelNet40-like single objects, ~1K–4K points, classification.
    ModelNet,
    /// ShapeNet-like part-labelled objects, ~2K points, part segmentation.
    ShapeNet,
    /// S3DIS-like indoor rooms, 4K–289K points, semantic segmentation.
    S3dis,
}

impl DatasetKind {
    /// Canonical name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::ModelNet => "ModelNet40",
            DatasetKind::ShapeNet => "ShapeNet",
            DatasetKind::S3dis => "S3DIS",
        }
    }

    /// Generates a cloud of `n` points for this dataset family.
    pub fn generate(&self, n: usize, seed: u64) -> PointCloud {
        match self {
            DatasetKind::ModelNet => object_cloud(ObjectKind::from_seed(seed), n, seed),
            DatasetKind::ShapeNet => part_object(n, seed).cloud,
            DatasetKind::S3dis => scene_cloud(&SceneConfig::default(), n, seed),
        }
    }
}

/// Primitive object shapes used for ModelNet-like clouds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Unit-ish sphere surface.
    Sphere,
    /// Axis-aligned box surface.
    Box,
    /// Vertical cylinder surface (lateral + caps).
    Cylinder,
    /// A composite "airplane": fuselage cylinder + wing slabs + tail fin.
    Airplane,
    /// A composite "chair": seat + back slabs + four legs.
    Chair,
}

impl ObjectKind {
    /// All object kinds.
    pub const ALL: [ObjectKind; 5] = [
        ObjectKind::Sphere,
        ObjectKind::Box,
        ObjectKind::Cylinder,
        ObjectKind::Airplane,
        ObjectKind::Chair,
    ];

    /// Picks a deterministic object kind from a seed.
    pub fn from_seed(seed: u64) -> ObjectKind {
        Self::ALL[(seed % Self::ALL.len() as u64) as usize]
    }
}

fn sphere_point(rng: &mut StdRng, center: Point3, r: f32) -> Point3 {
    // Marsaglia method: uniform on the sphere surface.
    loop {
        let u: f32 = rng.gen_range(-1.0..1.0);
        let v: f32 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s < 1.0 && s > 1e-9 {
            let f = 2.0 * (1.0 - s).sqrt();
            return center + Point3::new(u * f, v * f, 1.0 - 2.0 * s) * r;
        }
    }
}

/// A rectangular surface patch (slab face) for composite objects.
#[derive(Debug, Clone, Copy)]
struct Patch {
    origin: Point3,
    u: Point3,
    v: Point3,
}

impl Patch {
    fn area(&self) -> f32 {
        // |u × v|
        let c = Point3::new(
            self.u.y * self.v.z - self.u.z * self.v.y,
            self.u.z * self.v.x - self.u.x * self.v.z,
            self.u.x * self.v.y - self.u.y * self.v.x,
        );
        c.norm()
    }

    fn sample(&self, rng: &mut StdRng) -> Point3 {
        let a: f32 = rng.gen_range(0.0..1.0);
        let b: f32 = rng.gen_range(0.0..1.0);
        self.origin + self.u * a + self.v * b
    }
}

fn box_patches(min: Point3, max: Point3) -> Vec<Patch> {
    let d = max - min;
    let ex = Point3::new(d.x, 0.0, 0.0);
    let ey = Point3::new(0.0, d.y, 0.0);
    let ez = Point3::new(0.0, 0.0, d.z);
    vec![
        Patch { origin: min, u: ex, v: ey },      // bottom (z = min)
        Patch { origin: min + ez, u: ex, v: ey }, // top
        Patch { origin: min, u: ex, v: ez },      // front (y = min)
        Patch { origin: min + ey, u: ex, v: ez }, // back
        Patch { origin: min, u: ey, v: ez },      // left (x = min)
        Patch { origin: min + ex, u: ey, v: ez }, // right
    ]
}

fn sample_patches(rng: &mut StdRng, patches: &[Patch], n: usize, out: &mut Vec<Point3>) {
    // Area-weighted patch selection keeps sampling frequency consistent
    // across the surface — the paper's "consistent sampling frequency".
    let total: f32 = patches.iter().map(Patch::area).sum();
    if total <= 0.0 || patches.is_empty() {
        return;
    }
    for _ in 0..n {
        let mut t: f32 = rng.gen_range(0.0..total);
        let mut chosen = patches[patches.len() - 1];
        for p in patches {
            let a = p.area();
            if t < a {
                chosen = *p;
                break;
            }
            t -= a;
        }
        out.push(chosen.sample(rng));
    }
}

fn cylinder_points(
    rng: &mut StdRng,
    base: Point3,
    r: f32,
    h: f32,
    n: usize,
    out: &mut Vec<Point3>,
) {
    let lateral = std::f32::consts::TAU * r * h;
    let caps = 2.0 * std::f32::consts::PI * r * r;
    for _ in 0..n {
        let pick: f32 = rng.gen_range(0.0..(lateral + caps));
        let theta: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        if pick < lateral {
            let z: f32 = rng.gen_range(0.0..h);
            out.push(base + Point3::new(r * theta.cos(), r * theta.sin(), z));
        } else {
            let rr = r * rng.gen_range(0.0f32..1.0).sqrt();
            let z = if rng.gen_bool(0.5) { 0.0 } else { h };
            out.push(base + Point3::new(rr * theta.cos(), rr * theta.sin(), z));
        }
    }
}

/// Generates an object-like cloud of `n` points on the surface of `kind`.
///
/// Clouds are roughly centred at the origin with unit scale, matching
/// ModelNet40 preprocessing.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::generate::{object_cloud, ObjectKind};
///
/// let cloud = object_cloud(ObjectKind::Airplane, 1024, 7);
/// assert_eq!(cloud.len(), 1024);
/// ```
pub fn object_cloud(kind: ObjectKind, n: usize, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0b1e);
    let mut pts = Vec::with_capacity(n);
    match kind {
        ObjectKind::Sphere => {
            for _ in 0..n {
                pts.push(sphere_point(&mut rng, Point3::ORIGIN, 0.5));
            }
        }
        ObjectKind::Box => {
            let patches = box_patches(Point3::splat(-0.5), Point3::splat(0.5));
            sample_patches(&mut rng, &patches, n, &mut pts);
        }
        ObjectKind::Cylinder => {
            cylinder_points(&mut rng, Point3::new(0.0, 0.0, -0.5), 0.3, 1.0, n, &mut pts);
        }
        ObjectKind::Airplane => {
            // Fuselage 55%, wings 30%, tail 15% — elongated, highly
            // non-cubic, a good stress test for axis cycling.
            let nf = n * 55 / 100;
            let nw = n * 30 / 100;
            let nt = n - nf - nw;
            cylinder_points(&mut rng, Point3::new(-0.5, 0.0, 0.0), 0.06, 1.0, nf, &mut pts);
            // cylinder_points builds along +z from base; rotate fuselage onto x.
            for p in pts.iter_mut() {
                *p = Point3::new(p.z - 0.5, p.y, p.x + 0.5);
            }
            let wings = box_patches(Point3::new(-0.15, -0.5, -0.02), Point3::new(0.1, 0.5, 0.02));
            sample_patches(&mut rng, &wings, nw, &mut pts);
            let tail = box_patches(Point3::new(0.38, -0.01, 0.0), Point3::new(0.5, 0.01, 0.22));
            sample_patches(&mut rng, &tail, nt, &mut pts);
        }
        ObjectKind::Chair => {
            let mut patches =
                box_patches(Point3::new(-0.25, -0.25, 0.0), Point3::new(0.25, 0.25, 0.05));
            patches
                .extend(box_patches(Point3::new(-0.25, 0.2, 0.05), Point3::new(0.25, 0.25, 0.55)));
            for (lx, ly) in [(-0.22, -0.22), (0.17, -0.22), (-0.22, 0.17), (0.17, 0.17)] {
                patches.extend(box_patches(
                    Point3::new(lx, ly, -0.45),
                    Point3::new(lx + 0.05, ly + 0.05, 0.0),
                ));
            }
            sample_patches(&mut rng, &patches, n, &mut pts);
        }
    }
    pts.truncate(n);
    while pts.len() < n {
        pts.push(sphere_point(&mut rng, Point3::ORIGIN, 0.5));
    }
    PointCloud::from_points(pts)
}

/// A part-labelled object cloud (ShapeNet-like).
#[derive(Debug, Clone, PartialEq)]
pub struct PartObject {
    /// The points.
    pub cloud: PointCloud,
    /// One part label per point.
    pub labels: Vec<u8>,
    /// Number of distinct parts.
    pub num_parts: usize,
}

/// Generates a part-labelled airplane-like object for part segmentation.
///
/// Parts: 0 = fuselage, 1 = wings, 2 = tail.
pub fn part_object(n: usize, seed: u64) -> PartObject {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9a27);
    let nf = n * 55 / 100;
    let nw = n * 30 / 100;
    let nt = n - nf - nw;
    let mut pts = Vec::with_capacity(n);
    cylinder_points(&mut rng, Point3::new(-0.5, 0.0, 0.0), 0.06, 1.0, nf, &mut pts);
    for p in pts.iter_mut() {
        *p = Point3::new(p.z - 0.5, p.y, p.x + 0.5);
    }
    let wings = box_patches(Point3::new(-0.15, -0.5, -0.02), Point3::new(0.1, 0.5, 0.02));
    sample_patches(&mut rng, &wings, nw, &mut pts);
    let tail = box_patches(Point3::new(0.38, -0.01, 0.0), Point3::new(0.5, 0.01, 0.22));
    sample_patches(&mut rng, &tail, nt, &mut pts);
    let mut labels = vec![0u8; nf];
    labels.extend(std::iter::repeat_n(1u8, nw));
    labels.extend(std::iter::repeat_n(2u8, pts.len() - nf - nw));
    PartObject { cloud: PointCloud::from_points(pts), labels, num_parts: 3 }
}

/// Configuration for S3DIS-like indoor scene generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Room extent in metres `(x, y, z)`.
    pub room: Point3,
    /// Fraction of points on floor/ceiling/walls (coplanar structure).
    pub structure_fraction: f32,
    /// Fraction of points in dense furniture clusters.
    pub cluster_fraction: f32,
    /// Fraction of points that are uniform outliers (paper: 0.5–2.5 %).
    pub outlier_fraction: f32,
    /// Number of furniture clusters.
    pub clusters: usize,
    /// Density skew: >1 concentrates cluster points near the dominant
    /// cluster, reproducing the uneven densities of real scans.
    pub density_skew: f32,
}

impl Default for SceneConfig {
    fn default() -> SceneConfig {
        SceneConfig {
            room: Point3::new(8.0, 6.0, 3.0),
            structure_fraction: 0.45,
            cluster_fraction: 0.53,
            outlier_fraction: 0.02,
            clusters: 6,
            density_skew: 2.0,
        }
    }
}

/// Generates an S3DIS-like indoor scene of `n` points.
///
/// The scene mixes coplanar structure (floor, ceiling, four walls), dense
/// furniture clusters with skewed per-cluster densities, and a small uniform
/// outlier fraction — the three statistics §VI-D of the paper identifies as
/// the hard cases for partitioning.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
///
/// let cloud = scene_cloud(&SceneConfig::default(), 4096, 42);
/// assert_eq!(cloud.len(), 4096);
/// ```
pub fn scene_cloud(config: &SceneConfig, n: usize, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce9e);
    let r = config.room;
    let n_outlier = ((n as f32) * config.outlier_fraction).round() as usize;
    let denom = config.structure_fraction + config.cluster_fraction;
    let n_struct = (((n - n_outlier) as f32) * config.structure_fraction / denom) as usize;
    let n_cluster = n - n_outlier - n_struct;

    let mut pts = Vec::with_capacity(n);

    // Structure: floor, ceiling, 4 walls — area-weighted coplanar patches.
    let patches = box_patches(Point3::ORIGIN, r);
    sample_patches(&mut rng, &patches, n_struct, &mut pts);

    // Furniture clusters: gaussian-ish blobs with skewed sizes.
    let mut weights: Vec<f32> = (0..config.clusters.max(1))
        .map(|i| 1.0 / ((i + 1) as f32).powf(config.density_skew))
        .collect();
    let wsum: f32 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= wsum;
    }
    let centers: Vec<Point3> = (0..config.clusters.max(1))
        .map(|_| {
            Point3::new(
                rng.gen_range(0.5..r.x - 0.5),
                rng.gen_range(0.5..r.y - 0.5),
                rng.gen_range(0.2..(r.z * 0.6)),
            )
        })
        .collect();
    for (ci, (&w, &c)) in weights.iter().zip(centers.iter()).enumerate() {
        let remaining = (n - n_outlier).saturating_sub(pts.len());
        let m = if ci + 1 == centers.len() {
            remaining
        } else {
            (((n_cluster as f32) * w).round() as usize).min(remaining)
        };
        let sigma = rng.gen_range(0.15..0.45);
        for _ in 0..m {
            // Box-Muller pairs, clamped into the room.
            let g = |rng: &mut StdRng| -> f32 {
                let u1: f32 = rng.gen_range(1e-6..1.0);
                let u2: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
                (-2.0 * u1.ln()).sqrt() * u2.cos()
            };
            let p = Point3::new(
                (c.x + g(&mut rng) * sigma).clamp(0.0, r.x),
                (c.y + g(&mut rng) * sigma).clamp(0.0, r.y),
                (c.z + g(&mut rng) * sigma * 0.6).clamp(0.0, r.z),
            );
            pts.push(p);
            if pts.len() >= n - n_outlier {
                break;
            }
        }
        if pts.len() >= n - n_outlier {
            break;
        }
    }
    while pts.len() < n - n_outlier {
        let c = centers[0];
        pts.push(Point3::new(
            (c.x + rng.gen_range(-0.3..0.3)).clamp(0.0, r.x),
            (c.y + rng.gen_range(-0.3..0.3)).clamp(0.0, r.y),
            (c.z + rng.gen_range(-0.2..0.2)).clamp(0.0, r.z),
        ));
    }

    // Outliers: uniform in the room volume.
    for _ in 0..n_outlier {
        pts.push(Point3::new(
            rng.gen_range(0.0..r.x),
            rng.gen_range(0.0..r.y),
            rng.gen_range(0.0..r.z),
        ));
    }

    pts.truncate(n);
    // Shuffle so memory order is uncorrelated with space — the "unordered in
    // memory" premise of Fig. 6.
    for i in (1..pts.len()).rev() {
        let j = rng.gen_range(0..=i);
        pts.swap(i, j);
    }
    PointCloud::from_points(pts)
}

/// Generates `n` points uniformly inside the unit cube (a *worst* case for
/// shape-aware methods: no shape to exploit; used as a control in tests).
pub fn uniform_cube(n: usize, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xcafe);
    PointCloud::from_points(
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                )
            })
            .collect(),
    )
}

/// Attaches `channels` pseudo-random features to a cloud (deterministic in
/// `seed`); used to exercise gather/interpolation paths with real data.
pub fn with_random_features(mut cloud: PointCloud, channels: usize, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfea7);
    let feats: Vec<f32> = (0..cloud.len() * channels).map(|_| rng.gen_range(-1.0..1.0)).collect();
    cloud.set_features(feats, channels).expect("matching shape by construction");
    cloud
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = object_cloud(ObjectKind::Sphere, 256, 3);
        let b = object_cloud(ObjectKind::Sphere, 256, 3);
        assert_eq!(a, b);
        let c = object_cloud(ObjectKind::Sphere, 256, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn object_cloud_has_exact_count_and_finite_points() {
        for kind in ObjectKind::ALL {
            let c = object_cloud(kind, 500, 11);
            assert_eq!(c.len(), 500, "{kind:?}");
            assert!(c.iter().all(|p| p.is_finite()), "{kind:?}");
        }
    }

    #[test]
    fn sphere_points_lie_on_surface() {
        let c = object_cloud(ObjectKind::Sphere, 200, 1);
        for p in &c {
            assert!((p.norm() - 0.5).abs() < 1e-3, "{p} not on r=0.5 sphere");
        }
    }

    #[test]
    fn scene_cloud_fills_room_and_respects_count() {
        let cfg = SceneConfig::default();
        let c = scene_cloud(&cfg, 2000, 9);
        assert_eq!(c.len(), 2000);
        let b = c.bounds().unwrap();
        assert!(b.max().x <= cfg.room.x + 1e-4);
        assert!(b.min().x >= -1e-4);
    }

    #[test]
    fn scene_cloud_is_denser_than_uniform_somewhere() {
        // The scene must have non-uniform density: count points in the
        // densest 1/64 sub-box and compare with the uniform expectation.
        let cfg = SceneConfig::default();
        let c = scene_cloud(&cfg, 8192, 5);
        let b = c.bounds().unwrap();
        let mut grid = vec![0usize; 64];
        for p in &c {
            let gx =
                (((p.x - b.min().x) / (b.extent(crate::point::Axis::X) + 1e-6)) * 4.0) as usize;
            let gy =
                (((p.y - b.min().y) / (b.extent(crate::point::Axis::Y) + 1e-6)) * 4.0) as usize;
            let gz =
                (((p.z - b.min().z) / (b.extent(crate::point::Axis::Z) + 1e-6)) * 4.0) as usize;
            grid[gx.min(3) * 16 + gy.min(3) * 4 + gz.min(3)] += 1;
        }
        let max = *grid.iter().max().unwrap();
        let uniform = c.len() / 64;
        assert!(
            max > uniform * 3,
            "scene should be strongly non-uniform: max cell {max}, uniform {uniform}"
        );
    }

    #[test]
    fn part_object_labels_every_point() {
        let po = part_object(1000, 2);
        assert_eq!(po.labels.len(), po.cloud.len());
        assert_eq!(po.num_parts, 3);
        for l in &po.labels {
            assert!((*l as usize) < po.num_parts);
        }
        // all three parts present
        for part in 0..3u8 {
            assert!(po.labels.contains(&part), "part {part} missing");
        }
    }

    #[test]
    fn dataset_kind_dispatches() {
        for kind in [DatasetKind::ModelNet, DatasetKind::ShapeNet, DatasetKind::S3dis] {
            let c = kind.generate(512, 1);
            assert_eq!(c.len(), 512, "{}", kind.name());
        }
    }

    #[test]
    fn uniform_cube_is_inside_unit_cube() {
        let c = uniform_cube(300, 0);
        for p in &c {
            assert!((0.0..=1.0).contains(&p.x));
            assert!((0.0..=1.0).contains(&p.y));
            assert!((0.0..=1.0).contains(&p.z));
        }
    }

    #[test]
    fn with_random_features_shapes_correctly() {
        let c = with_random_features(uniform_cube(10, 0), 4, 1);
        assert_eq!(c.channels(), 4);
        assert_eq!(c.features().len(), 40);
    }
}

//! Quality metrics comparing approximate (block-wise) point operations with
//! the exact global references.
//!
//! The paper retrains networks to report accuracy; without the datasets we
//! instead measure the *numerical differences between local and global
//! search* that the paper identifies as the source of accuracy loss
//! (§VI-B: "Block-wise grouping introduces slight accuracy degradation,
//! primarily due to numerical differences between local and original global
//! searches"). Three proxies:
//!
//! * **Neighbor recall** — fraction of exact neighbors also found by the
//!   approximate search (grouping/interpolation fidelity).
//! * **Sampling coverage ratio** — FPS quality as the ratio of covering
//!   radii: a sample set's covering radius is the max over all points of the
//!   distance to the nearest sample; ratio ≥ 1, closer to 1 is better.
//! * **Interpolation error** — RMS error of interpolated features for a
//!   smooth synthetic field, approximate vs exact.

use crate::cloud::PointCloud;
use crate::point::Point3;
use serde::{Deserialize, Serialize};

/// Fraction of reference neighbors recovered by an approximate search.
///
/// Both lists are `centers × num` row-major index tensors; rows are treated
/// as sets (order and padding duplicates are ignored).
///
/// # Panics
///
/// Panics if the tensors disagree on `centers × num` shape.
pub fn neighbor_recall(reference: &[usize], approx: &[usize], num: usize) -> f64 {
    assert_eq!(reference.len(), approx.len(), "neighbor tensors must match in shape");
    if reference.is_empty() {
        return 1.0;
    }
    assert_eq!(reference.len() % num, 0, "tensor length must be a multiple of num");
    let centers = reference.len() / num;
    let mut hit = 0usize;
    let mut total = 0usize;
    for c in 0..centers {
        let r: std::collections::BTreeSet<usize> =
            reference[c * num..(c + 1) * num].iter().copied().collect();
        let a: std::collections::BTreeSet<usize> =
            approx[c * num..(c + 1) * num].iter().copied().collect();
        total += r.len();
        hit += r.intersection(&a).count();
    }
    hit as f64 / total.max(1) as f64
}

/// Covering radius of a sample: `max_i min_s dist(p_i, sample_s)`.
///
/// Lower is better; the global-FPS covering radius is near-optimal, so the
/// ratio `covering(block) / covering(global)` measures block-FPS quality.
pub fn covering_radius(cloud: &PointCloud, sample_indices: &[usize]) -> f64 {
    if sample_indices.is_empty() || cloud.is_empty() {
        return f64::INFINITY;
    }
    let samples: Vec<Point3> = sample_indices.iter().map(|&i| cloud.point(i)).collect();
    let mut worst = 0.0f64;
    for p in cloud.iter() {
        let d = samples.iter().map(|&s| p.distance_sq(s) as f64).fold(f64::INFINITY, f64::min);
        worst = worst.max(d);
    }
    worst.sqrt()
}

/// Mean distance from each cloud point to its nearest sample (a smoother
/// companion to [`covering_radius`], less sensitive to single outliers).
pub fn mean_sample_distance(cloud: &PointCloud, sample_indices: &[usize]) -> f64 {
    if sample_indices.is_empty() || cloud.is_empty() {
        return f64::INFINITY;
    }
    let samples: Vec<Point3> = sample_indices.iter().map(|&i| cloud.point(i)).collect();
    let mut acc = 0.0f64;
    for p in cloud.iter() {
        let d = samples.iter().map(|&s| p.distance_sq(s) as f64).fold(f64::INFINITY, f64::min);
        acc += d.sqrt();
    }
    acc / cloud.len() as f64
}

/// Root-mean-square difference between two equally-shaped feature buffers.
///
/// # Panics
///
/// Panics if the buffers differ in length.
pub fn feature_rmse(reference: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "feature buffers must match in shape");
    if reference.is_empty() {
        return 0.0;
    }
    let sum: f64 = reference
        .iter()
        .zip(approx)
        .map(|(&r, &a)| {
            let d = (r - a) as f64;
            d * d
        })
        .sum();
    (sum / reference.len() as f64).sqrt()
}

/// The accuracy-proxy record reported by the figure harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyProxy {
    /// Grouping neighbor recall in `[0, 1]`.
    pub grouping_recall: f64,
    /// Interpolation neighbor recall in `[0, 1]`.
    pub interpolation_recall: f64,
    /// Block-FPS covering radius / global-FPS covering radius (≥ ~1).
    pub sampling_coverage_ratio: f64,
}

impl AccuracyProxy {
    /// Perfect scores (global = reference operations).
    pub fn perfect() -> AccuracyProxy {
        AccuracyProxy {
            grouping_recall: 1.0,
            interpolation_recall: 1.0,
            sampling_coverage_ratio: 1.0,
        }
    }

    /// Maps proxies to an estimated *post-retraining* accuracy delta in
    /// percentage points, calibrated to the paper's anchors:
    ///
    /// * perfect recall/coverage → 0.0 pp loss (PointAcc, lossless);
    /// * FractalCloud at `th = 256` (recall ≈ 0.85–0.95 pre-retraining,
    ///   coverage ≈ 1.0) → ≲ 1 pp (paper: < 0.7 pp — §VI-B notes recall
    ///   shortfalls are largely recovered by retraining, so recall is
    ///   weighted lightly);
    /// * PNNPU-style uniform partitioning with equal per-block budgets
    ///   (coverage ratio ≈ 1.5–1.8 — degraded sampling *cannot* be
    ///   retrained away) → ≈ 9 pp (paper: 8.8 pp).
    ///
    /// The mapping is a documented *proxy*, not a retrained measurement; see
    /// DESIGN.md §3.
    pub fn estimated_accuracy_loss_pp(&self) -> f64 {
        let recall_term =
            (1.0 - self.grouping_recall) * 4.0 + (1.0 - self.interpolation_recall) * 2.0;
        let coverage_term = (self.sampling_coverage_ratio - 1.0).max(0.0) * 12.0;
        (recall_term + coverage_term).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform_cube;
    use crate::ops::farthest_point_sample;

    #[test]
    fn recall_of_identical_sets_is_one() {
        let r = vec![1, 2, 3, 4, 5, 6];
        assert_eq!(neighbor_recall(&r, &r, 3), 1.0);
    }

    #[test]
    fn recall_of_disjoint_sets_is_zero() {
        let r = vec![1, 2, 3];
        let a = vec![4, 5, 6];
        assert_eq!(neighbor_recall(&r, &a, 3), 0.0);
    }

    #[test]
    fn recall_counts_set_overlap_ignoring_order() {
        let r = vec![1, 2, 3, 4];
        let a = vec![3, 1, 9, 9];
        // row sets {1,2,3,4} vs {1,3,9}: hit 2 of 4.
        assert_eq!(neighbor_recall(&r, &a, 4), 0.5);
    }

    #[test]
    fn covering_radius_shrinks_with_more_samples() {
        let cloud = uniform_cube(400, 3);
        let few = farthest_point_sample(&cloud, 4, 0).unwrap().indices;
        let many = farthest_point_sample(&cloud, 64, 0).unwrap().indices;
        assert!(covering_radius(&cloud, &many) < covering_radius(&cloud, &few));
    }

    #[test]
    fn mean_sample_distance_zero_when_all_sampled() {
        let cloud = uniform_cube(50, 1);
        let all: Vec<usize> = (0..50).collect();
        assert_eq!(mean_sample_distance(&cloud, &all), 0.0);
    }

    #[test]
    fn rmse_basics() {
        assert_eq!(feature_rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((feature_rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn perfect_proxy_has_zero_loss() {
        assert_eq!(AccuracyProxy::perfect().estimated_accuracy_loss_pp(), 0.0);
    }

    #[test]
    fn proxy_calibration_matches_paper_anchors() {
        // FractalCloud-like operating point → ≈1pp loss.
        let fc = AccuracyProxy {
            grouping_recall: 0.88,
            interpolation_recall: 0.92,
            sampling_coverage_ratio: 1.02,
        };
        let loss = fc.estimated_accuracy_loss_pp();
        assert!(loss < 1.5, "FractalCloud proxy loss {loss} should be ≲1pp");

        // PNNPU-like operating point (badly degraded sampling) → ~9pp.
        let uni = AccuracyProxy {
            grouping_recall: 0.7,
            interpolation_recall: 0.8,
            sampling_coverage_ratio: 1.6,
        };
        let loss = uni.estimated_accuracy_loss_pp();
        assert!(loss > 7.0 && loss < 12.0, "uniform proxy loss {loss} should be ≈9pp");
    }

    #[test]
    #[should_panic(expected = "match in shape")]
    fn recall_shape_mismatch_panics() {
        let _ = neighbor_recall(&[1, 2], &[1], 1);
    }
}

//! Retained scalar reference implementations of the point operations.
//!
//! These are the seed's original per-point formulations: they materialize a
//! [`Point3`] per candidate and bump [`OpCounters`] fields inside every
//! inner loop. They are deliberately *not* fast — they exist as the
//! equivalence baseline for the chunked SoA kernel path in
//! [`kernels`](crate::kernels): property tests assert that the optimized
//! operations return identical indices, distances, and counters.
//!
//! Each function has the same signature and result type as its optimized
//! counterpart in [`ops`](crate::ops).

// The seed's formulations are preserved verbatim — equivalence against them
// is the whole point — so style lints on the loop shapes are silenced, and
// `!(radius > 0.0)` is the deliberate NaN-rejecting validation.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::cloud::PointCloud;
use crate::error::{Error, Result};
use crate::ops::{BallQueryResult, FpsResult, InterpolationResult, KnnResult, OpCounters};
use crate::point::Point3;

/// Scalar global farthest point sampling; see
/// [`ops::farthest_point_sample`](crate::ops::farthest_point_sample).
///
/// # Errors
///
/// Same contract as the optimized operation.
pub fn farthest_point_sample(cloud: &PointCloud, m: usize, start: usize) -> Result<FpsResult> {
    let n = cloud.len();
    if n == 0 {
        return Err(Error::EmptyCloud);
    }
    if m > n {
        return Err(Error::InvalidParameter {
            name: "m",
            message: format!("cannot sample {m} points from a cloud of {n}"),
        });
    }
    if start >= n {
        return Err(Error::IndexOutOfBounds { index: start, len: n });
    }

    let mut counters = OpCounters::new();
    let mut indices = Vec::with_capacity(m);
    if m == 0 {
        return Ok(FpsResult { indices, counters });
    }

    // dist[i] = squared distance from point i to the nearest sampled point.
    let mut dist = vec![f32::INFINITY; n];
    let mut current = start;
    indices.push(current);
    counters.writes += 1;

    for _ in 1..m {
        let latest = cloud.point(current);
        let mut best = 0usize;
        let mut best_d = f32::NEG_INFINITY;
        for i in 0..n {
            // Global traversal: every point is read every iteration — the
            // O(n·m) memory traffic the paper attributes to original FPS.
            counters.coord_reads += 1;
            let d = cloud.point(i).distance_sq(latest);
            counters.distance_evals += 1;
            if d < dist[i] {
                dist[i] = d;
            }
            counters.comparisons += 1;
            if dist[i] > best_d {
                best_d = dist[i];
                best = i;
            }
            counters.comparisons += 1;
        }
        current = best;
        indices.push(current);
        counters.writes += 1;
    }

    Ok(FpsResult { indices, counters })
}

/// Scalar brute-force KNN; see
/// [`ops::k_nearest_neighbors`](crate::ops::k_nearest_neighbors).
///
/// # Errors
///
/// Same contract as the optimized operation.
pub fn k_nearest_neighbors(
    candidates: &PointCloud,
    centers: &[Point3],
    k: usize,
) -> Result<KnnResult> {
    if candidates.is_empty() {
        return Err(Error::EmptyCloud);
    }
    if k == 0 || k > candidates.len() {
        return Err(Error::InvalidParameter {
            name: "k",
            message: format!("k={k} must be in 1..={}", candidates.len()),
        });
    }

    let mut counters = OpCounters::new();
    let mut indices = Vec::with_capacity(centers.len() * k);
    let mut distances = Vec::with_capacity(centers.len() * k);

    for &c in centers {
        // Sorted insertion buffer of (distance, index), ascending — the
        // hardware top-k unit with merge-sort selection.
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
        for i in 0..candidates.len() {
            counters.coord_reads += 1;
            let d = candidates.point(i).distance_sq(c);
            counters.distance_evals += 1;
            counters.comparisons += 1;
            if best.len() == k && d >= best[k - 1].0 {
                continue;
            }
            let pos = best.partition_point(|&(bd, _)| bd <= d);
            counters.comparisons += (best.len() as f64).log2().max(1.0) as u64;
            best.insert(pos, (d, i));
            if best.len() > k {
                best.pop();
            }
        }
        for &(d, i) in &best {
            indices.push(i);
            distances.push(d);
            counters.writes += 1;
        }
    }

    Ok(KnnResult { indices, distances_sq: distances, k, counters })
}

/// Scalar global ball query; see [`ops::ball_query`](crate::ops::ball_query).
///
/// # Errors
///
/// Same contract as the optimized operation.
pub fn ball_query(
    candidates: &PointCloud,
    centers: &[Point3],
    radius: f32,
    num: usize,
) -> Result<BallQueryResult> {
    if !(radius > 0.0) {
        return Err(Error::InvalidParameter {
            name: "radius",
            message: format!("must be positive, got {radius}"),
        });
    }
    if num == 0 {
        return Err(Error::InvalidParameter { name: "num", message: "must be at least 1".into() });
    }

    let r_sq = radius * radius;
    let mut counters = OpCounters::new();
    let mut indices = Vec::with_capacity(centers.len() * num);
    let mut found = Vec::with_capacity(centers.len());

    for &c in centers {
        // Top-`num` nearest within the radius (sorted insertion buffer, the
        // hardware top-k structure), plus the overall-nearest fallback.
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(num + 1);
        let mut nearest = (f32::INFINITY, usize::MAX);
        for i in 0..candidates.len() {
            counters.coord_reads += 1;
            let d = candidates.point(i).distance_sq(c);
            counters.distance_evals += 1;
            counters.comparisons += 1;
            if d < nearest.0 {
                nearest = (d, i);
            }
            if d <= r_sq && (best.len() < num || d < best[best.len() - 1].0) {
                let pos = best.partition_point(|&(bd, _)| bd <= d);
                best.insert(pos, (d, i));
                if best.len() > num {
                    best.pop();
                }
            }
        }
        found.push(best.len());
        let mut row: Vec<usize> = best.iter().map(|&(_, i)| i).collect();
        if row.is_empty() {
            // No candidate in radius: fall back to the globally nearest
            // candidate so downstream gathers stay well-formed.
            row.push(nearest.1);
        }
        let first = row[0];
        while row.len() < num {
            row.push(first);
        }
        counters.writes += num as u64;
        indices.extend_from_slice(&row);
    }

    Ok(BallQueryResult { indices, found, num, counters })
}

/// Scalar IDW interpolation (embedding the scalar KNN); see
/// [`ops::interpolate_features`](crate::ops::interpolate_features).
///
/// # Errors
///
/// Same contract as the optimized operation.
pub fn interpolate_features(
    sources: &PointCloud,
    targets: &[Point3],
    k: usize,
) -> Result<InterpolationResult> {
    if sources.channels() == 0 {
        return Err(Error::InvalidParameter {
            name: "sources",
            message: "source cloud must carry features to interpolate".into(),
        });
    }
    let knn = k_nearest_neighbors(sources, targets, k)?;
    let channels = sources.channels();
    let mut counters = knn.counters;
    let mut features = vec![0.0f32; targets.len() * channels];

    const EPS: f32 = 1e-10;
    for t in 0..targets.len() {
        let idx_row = knn.row(t);
        let d_row = knn.distance_row(t);
        // Exact hit: copy features directly.
        if d_row[0] <= EPS {
            counters.feature_reads += 1;
            features[t * channels..(t + 1) * channels].copy_from_slice(sources.feature(idx_row[0]));
            counters.writes += 1;
            continue;
        }
        let weights: Vec<f32> = d_row.iter().map(|&d| 1.0 / (d + EPS)).collect();
        let wsum: f32 = weights.iter().sum();
        let out = &mut features[t * channels..(t + 1) * channels];
        for (&i, &w) in idx_row.iter().zip(&weights) {
            counters.feature_reads += 1;
            let f = sources.feature(i);
            let wn = w / wsum;
            for (o, &fv) in out.iter_mut().zip(f) {
                *o += wn * fv;
            }
        }
        counters.writes += 1;
    }

    Ok(InterpolationResult { features, channels, counters })
}

//! Global k-nearest-neighbor search.

use crate::cloud::PointCloud;
use crate::error::{Error, Result};
use crate::kernels;
use crate::ops::OpCounters;
use crate::point::Point3;

/// Output of [`k_nearest_neighbors`].
#[derive(Debug, Clone, PartialEq)]
pub struct KnnResult {
    /// `centers × k` neighbor indices, row-major, sorted by ascending
    /// distance within each row.
    pub indices: Vec<usize>,
    /// Squared distances corresponding to `indices`.
    pub distances_sq: Vec<f32>,
    /// Number of neighbors per center.
    pub k: usize,
    /// Work performed.
    pub counters: OpCounters,
}

impl KnnResult {
    /// The neighbor index row for center `c`.
    pub fn row(&self, c: usize) -> &[usize] {
        &self.indices[c * self.k..(c + 1) * self.k]
    }

    /// The squared-distance row for center `c`.
    pub fn distance_row(&self, c: usize) -> &[f32] {
        &self.distances_sq[c * self.k..(c + 1) * self.k]
    }

    /// Number of centers.
    pub fn centers(&self) -> usize {
        self.indices.len().checked_div(self.k).unwrap_or(0)
    }
}

/// Exact brute-force KNN (Fig. 2(c)): for every center, the `k` closest
/// candidates without radius constraint, searching the entire candidate set.
///
/// Implemented with the top-k running-insertion structure the RSPU's merge
/// sorter realizes in hardware: a size-`k` sorted buffer per center, fed by
/// the batched selection kernel [`kernels::knn_select_batch`] — tiles of
/// [`kernels::QUERY_TILE`] centers share every pass over the candidate
/// chunks on the active [`kernels::Backend`], and the branchy top-k
/// selection consumes each chunk's distances while they are hot in L1.
/// Scan-phase counters are accumulated analytically and match the scalar
/// reference
/// ([`reference::k_nearest_neighbors`](crate::ops::reference::k_nearest_neighbors))
/// exactly, insertion costs included.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if `k` is zero or exceeds the
/// candidate count, [`Error::EmptyCloud`] if there are no candidates.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::{ops::k_nearest_neighbors, PointCloud, Point3};
///
/// let candidates = PointCloud::from_points(vec![
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(1.0, 0.0, 0.0),
///     Point3::new(0.4, 0.0, 0.0),
/// ]);
/// let knn = k_nearest_neighbors(&candidates, &[Point3::new(0.1, 0.0, 0.0)], 2)?;
/// assert_eq!(knn.row(0), &[0, 2]);
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
pub fn k_nearest_neighbors(
    candidates: &PointCloud,
    centers: &[Point3],
    k: usize,
) -> Result<KnnResult> {
    if candidates.is_empty() {
        return Err(Error::EmptyCloud);
    }
    if k == 0 || k > candidates.len() {
        return Err(Error::InvalidParameter {
            name: "k",
            message: format!("k={k} must be in 1..={}", candidates.len()),
        });
    }

    let n = candidates.len();
    let (xs, ys, zs) = (candidates.xs(), candidates.ys(), candidates.zs());
    let mut counters = OpCounters::new();
    let mut indices = Vec::with_capacity(centers.len() * k);
    let mut distances = Vec::with_capacity(centers.len() * k);

    // Batched selection: tiles of QUERY_TILE centers share every candidate
    // chunk load; per-center results and insertion sequences are identical
    // to one-center-at-a-time scans.
    let queries: Vec<[f32; 3]> = centers.iter().map(|c| [c.x, c.y, c.z]).collect();
    let mut insert_comparisons = 0u64;
    let mut writes = 0u64;
    kernels::knn_select_batch(
        xs,
        ys,
        zs,
        &queries,
        k,
        |_, best| {
            for &(d, i) in best {
                indices.push(i);
                distances.push(d);
                writes += 1;
            }
        },
        // Same insertion-cost model as the scalar reference: log₂ of the
        // buffer occupancy (min 1) per accepted candidate.
        |len_before| insert_comparisons += (len_before as f64).log2().max(1.0) as u64,
    );
    counters.writes += writes;

    // Analytic scan counters: every center reads and evaluates all `n`
    // candidates and performs one threshold comparison each, plus the
    // data-dependent insertion costs tallied above.
    counters.coord_reads += (centers.len() * n) as u64;
    counters.distance_evals += (centers.len() * n) as u64;
    counters.comparisons += (centers.len() * n) as u64 + insert_comparisons;

    Ok(KnnResult { indices, distances_sq: distances, k, counters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform_cube;

    #[test]
    fn knn_matches_naive_sort() {
        let cloud = uniform_cube(200, 13);
        let centers: Vec<Point3> = (0..10).map(|i| cloud.point(i * 3 + 1)).collect();
        let k = 5;
        let knn = k_nearest_neighbors(&cloud, &centers, k).unwrap();
        for (ci, &c) in centers.iter().enumerate() {
            let mut all: Vec<(f32, usize)> =
                (0..cloud.len()).map(|i| (cloud.point(i).distance_sq(c), i)).collect();
            all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            let expected: Vec<f32> = all[..k].iter().map(|&(d, _)| d).collect();
            let got = knn.distance_row(ci);
            for (e, g) in expected.iter().zip(got) {
                assert!((e - g).abs() < 1e-6, "distance mismatch: {e} vs {g}");
            }
        }
    }

    #[test]
    fn knn_rows_sorted_ascending() {
        let cloud = uniform_cube(100, 3);
        let centers: Vec<Point3> = vec![cloud.point(0), cloud.point(50)];
        let knn = k_nearest_neighbors(&cloud, &centers, 8).unwrap();
        for c in 0..2 {
            let row = knn.distance_row(c);
            for w in row.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn knn_self_is_first_when_center_in_set() {
        let cloud = uniform_cube(50, 8);
        let knn = k_nearest_neighbors(&cloud, &[cloud.point(17)], 3).unwrap();
        assert_eq!(knn.row(0)[0], 17);
        assert_eq!(knn.distance_row(0)[0], 0.0);
    }

    #[test]
    fn knn_validates_k() {
        let cloud = uniform_cube(10, 0);
        assert!(k_nearest_neighbors(&cloud, &[Point3::ORIGIN], 0).is_err());
        assert!(k_nearest_neighbors(&cloud, &[Point3::ORIGIN], 11).is_err());
        assert!(k_nearest_neighbors(&PointCloud::new(), &[Point3::ORIGIN], 1).is_err());
    }

    #[test]
    fn knn_work_is_centers_times_candidates() {
        let cloud = uniform_cube(64, 5);
        let centers: Vec<Point3> = (0..4).map(|i| cloud.point(i)).collect();
        let knn = k_nearest_neighbors(&cloud, &centers, 3).unwrap();
        assert_eq!(knn.counters.distance_evals, 256);
    }

    #[test]
    fn knn_no_duplicate_neighbors_per_row() {
        let cloud = uniform_cube(80, 21);
        let centers: Vec<Point3> = (0..5).map(|i| cloud.point(i * 11)).collect();
        let knn = k_nearest_neighbors(&cloud, &centers, 6).unwrap();
        for c in 0..centers.len() {
            let mut row = knn.row(c).to_vec();
            row.sort_unstable();
            row.dedup();
            assert_eq!(row.len(), 6);
        }
    }
}

//! Feature interpolation (the propagation-stage operation).

use crate::cloud::PointCloud;
use crate::error::{Error, Result};
use crate::ops::{k_nearest_neighbors, OpCounters};
use crate::point::Point3;

/// Output of [`interpolate_features`].
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolationResult {
    /// Row-major `targets × channels` interpolated features.
    pub features: Vec<f32>,
    /// Channels per target.
    pub channels: usize,
    /// Work performed (includes the embedded KNN).
    pub counters: OpCounters,
}

impl InterpolationResult {
    /// The interpolated feature row for target `t`.
    pub fn row(&self, t: usize) -> &[f32] {
        &self.features[t * self.channels..(t + 1) * self.channels]
    }
}

/// Inverse-distance-weighted K-NN interpolation (Fig. 2(c)), the standard
/// PointNet++ `three_interpolate`: each target point receives the
/// distance-weighted average of the features of its `k` nearest source
/// points, with weights `wᵢ = (1/dᵢ²) / Σⱼ 1/dⱼ²`.
///
/// A target coincident with a source (d = 0) copies that source's features
/// exactly.
///
/// The embedded neighbor search runs on the batched KNN kernel (dispatched
/// to the active [`kernels::Backend`](crate::kernels::Backend)); the
/// weighting stage reuses one weight buffer across targets instead of
/// allocating per target. Results and counters are identical to the scalar
/// reference
/// ([`reference::interpolate_features`](crate::ops::reference::interpolate_features)).
///
/// # Errors
///
/// Propagates KNN parameter errors; see
/// [`k_nearest_neighbors`].
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::{ops::interpolate_features, PointCloud, Point3};
///
/// let sources = PointCloud::from_points_features(
///     vec![Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 0.0, 0.0)],
///     vec![0.0, 10.0],
///     1,
/// )?;
/// let out = interpolate_features(&sources, &[Point3::new(1.0, 0.0, 0.0)], 2)?;
/// assert!((out.row(0)[0] - 5.0).abs() < 1e-5); // halfway point
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
pub fn interpolate_features(
    sources: &PointCloud,
    targets: &[Point3],
    k: usize,
) -> Result<InterpolationResult> {
    if sources.channels() == 0 {
        return Err(Error::InvalidParameter {
            name: "sources",
            message: "source cloud must carry features to interpolate".into(),
        });
    }
    let knn = k_nearest_neighbors(sources, targets, k)?;
    let channels = sources.channels();
    let mut counters = knn.counters;
    let mut features = vec![0.0f32; targets.len() * channels];

    const EPS: f32 = 1e-10;
    let mut weights: Vec<f32> = Vec::with_capacity(k);
    for t in 0..targets.len() {
        let idx_row = knn.row(t);
        let d_row = knn.distance_row(t);
        // Exact hit: copy features directly.
        if d_row[0] <= EPS {
            counters.feature_reads += 1;
            features[t * channels..(t + 1) * channels].copy_from_slice(sources.feature(idx_row[0]));
            counters.writes += 1;
            continue;
        }
        weights.clear();
        weights.extend(d_row.iter().map(|&d| 1.0 / (d + EPS)));
        let wsum: f32 = weights.iter().sum();
        let out = &mut features[t * channels..(t + 1) * channels];
        for (&i, &w) in idx_row.iter().zip(&weights) {
            counters.feature_reads += 1;
            let f = sources.feature(i);
            let wn = w / wsum;
            for (o, &fv) in out.iter_mut().zip(f) {
                *o += wn * fv;
            }
        }
        counters.writes += 1;
    }

    Ok(InterpolationResult { features, channels, counters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{uniform_cube, with_random_features};

    fn sources() -> PointCloud {
        PointCloud::from_points_features(
            vec![
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(1.0, 0.0, 0.0),
                Point3::new(0.0, 1.0, 0.0),
            ],
            vec![1.0, 2.0, 3.0],
            1,
        )
        .unwrap()
    }

    #[test]
    fn coincident_target_copies_source() {
        let out = interpolate_features(&sources(), &[Point3::new(1.0, 0.0, 0.0)], 3).unwrap();
        assert_eq!(out.row(0), &[2.0]);
    }

    #[test]
    fn weights_are_convex_combination() {
        let cloud = with_random_features(uniform_cube(64, 3), 4, 9);
        let targets: Vec<Point3> = (0..10).map(|i| cloud.point(i) + Point3::splat(0.01)).collect();
        let out = interpolate_features(&cloud, &targets, 3).unwrap();
        // Every output channel must be within [min, max] of the source
        // features (convexity of IDW weights).
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for f in cloud.features() {
            lo = lo.min(*f);
            hi = hi.max(*f);
        }
        for v in &out.features {
            assert!(*v >= lo - 1e-5 && *v <= hi + 1e-5);
        }
    }

    #[test]
    fn interpolation_is_exact_for_linear_fields() {
        // Feature = 2x + 3y - z is NOT exactly reproduced by IDW in general,
        // but the symmetric midpoint of two sources is.
        let src = PointCloud::from_points_features(
            vec![Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 2.0, 2.0)],
            vec![0.0, 8.0],
            1,
        )
        .unwrap();
        let out = interpolate_features(&src, &[Point3::splat(1.0)], 2).unwrap();
        assert!((out.row(0)[0] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn requires_featured_sources() {
        let bare = uniform_cube(10, 0);
        assert!(interpolate_features(&bare, &[Point3::ORIGIN], 3).is_err());
    }

    #[test]
    fn counters_include_knn_work() {
        let cloud = with_random_features(uniform_cube(50, 1), 2, 2);
        let out = interpolate_features(&cloud, &[Point3::splat(0.5)], 3).unwrap();
        assert!(out.counters.distance_evals >= 50);
        assert!(out.counters.feature_reads >= 3);
    }

    #[test]
    fn output_shape_matches_targets() {
        let cloud = with_random_features(uniform_cube(30, 5), 6, 1);
        let targets: Vec<Point3> = (0..7).map(|i| cloud.point(i)).collect();
        let out = interpolate_features(&cloud, &targets, 3).unwrap();
        assert_eq!(out.features.len(), 7 * 6);
        assert_eq!(out.channels, 6);
    }
}

//! Global Farthest Point Sampling (FPS).

use crate::cloud::PointCloud;
use crate::error::{Error, Result};
use crate::kernels;
use crate::ops::OpCounters;

/// Output of [`farthest_point_sample`].
#[derive(Debug, Clone, PartialEq)]
pub struct FpsResult {
    /// Indices of the sampled points, in selection order.
    pub indices: Vec<usize>,
    /// Work performed.
    pub counters: OpCounters,
}

/// Global farthest point sampling (Fig. 2(a)).
///
/// Starting from `start` (the paper uses a randomly selected initial point;
/// passing an explicit index keeps runs reproducible), each iteration selects
/// the point with the maximum distance to the already-sampled set, using the
/// standard `O(n·m)` running-minimum formulation: a per-point cache of the
/// distance to the nearest sampled point is updated against the newest sample
/// only.
///
/// The inner loop runs on the fused kernel [`kernels::fps_relax_argmax`],
/// dispatched to the active [`kernels::Backend`] (scalar, chunked SoA, or
/// AVX2): distance evaluation streams the
/// `xs`/`ys`/`zs` slices directly, and counters are accumulated analytically
/// per scan (every iteration reads all `n` candidates, evaluates `n`
/// distances, and performs `2n` comparisons — identical totals to the
/// retained scalar reference in
/// [`reference::farthest_point_sample`](crate::ops::reference::farthest_point_sample),
/// which also returns bit-identical indices).
///
/// # Errors
///
/// Returns [`Error::EmptyCloud`] for an empty cloud and
/// [`Error::InvalidParameter`] when `m` exceeds the cloud size or `start` is
/// out of bounds.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::{ops::farthest_point_sample, PointCloud, Point3};
///
/// let cloud = PointCloud::from_points(vec![
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(0.1, 0.0, 0.0),
///     Point3::new(1.0, 0.0, 0.0),
/// ]);
/// let fps = farthest_point_sample(&cloud, 2, 0)?;
/// assert_eq!(fps.indices, vec![0, 2]); // farthest from index 0 is index 2
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
pub fn farthest_point_sample(cloud: &PointCloud, m: usize, start: usize) -> Result<FpsResult> {
    let n = cloud.len();
    if n == 0 {
        return Err(Error::EmptyCloud);
    }
    if m > n {
        return Err(Error::InvalidParameter {
            name: "m",
            message: format!("cannot sample {m} points from a cloud of {n}"),
        });
    }
    if start >= n {
        return Err(Error::IndexOutOfBounds { index: start, len: n });
    }

    let mut counters = OpCounters::new();
    let mut indices = Vec::with_capacity(m);
    if m == 0 {
        return Ok(FpsResult { indices, counters });
    }

    // dist[i] = squared distance from point i to the nearest sampled point.
    let mut dist = vec![f32::INFINITY; n];
    let (xs, ys, zs) = (cloud.xs(), cloud.ys(), cloud.zs());
    let mut current = start;
    indices.push(current);
    counters.writes += 1;

    for _ in 1..m {
        let q = [xs[current], ys[current], zs[current]];
        current = kernels::fps_relax_argmax(xs, ys, zs, q, &mut dist);
        indices.push(current);
        counters.writes += 1;
    }

    // Analytic counters for the scan phase: every one of the `m - 1`
    // iterations is a full global traversal — the O(n·m) memory traffic the
    // paper attributes to original FPS — with one distance evaluation and
    // two comparisons (relax + argmax) per candidate, exactly the
    // per-element totals of the scalar reference.
    let scans = (m - 1) as u64;
    counters.coord_reads += scans * n as u64;
    counters.distance_evals += scans * n as u64;
    counters.comparisons += 2 * scans * n as u64;

    Ok(FpsResult { indices, counters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform_cube;
    use crate::point::Point3;

    fn line_cloud() -> PointCloud {
        PointCloud::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(3.0, 0.0, 0.0),
            Point3::new(10.0, 0.0, 0.0),
        ])
    }

    #[test]
    fn fps_picks_extremes_first() {
        let fps = farthest_point_sample(&line_cloud(), 3, 0).unwrap();
        assert_eq!(fps.indices[0], 0);
        assert_eq!(fps.indices[1], 4, "farthest from 0 is 10.0");
        // Next farthest from {0, 10}: point 3.0 (min-dist 3.0) beats 2.0, 1.0.
        assert_eq!(fps.indices[2], 3);
    }

    #[test]
    fn fps_indices_are_unique() {
        let cloud = uniform_cube(200, 7);
        let fps = farthest_point_sample(&cloud, 64, 0).unwrap();
        let mut sorted = fps.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }

    #[test]
    fn fps_full_sample_returns_everything() {
        let cloud = uniform_cube(32, 1);
        let fps = farthest_point_sample(&cloud, 32, 5).unwrap();
        let mut sorted = fps.indices.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_eq!(fps.indices[0], 5);
    }

    #[test]
    fn fps_counts_quadratic_work() {
        let cloud = uniform_cube(100, 2);
        let fps = farthest_point_sample(&cloud, 10, 0).unwrap();
        // 9 iterations × 100 points each.
        assert_eq!(fps.counters.distance_evals, 900);
        assert_eq!(fps.counters.coord_reads, 900);
    }

    #[test]
    fn fps_errors() {
        let cloud = uniform_cube(4, 0);
        assert!(farthest_point_sample(&PointCloud::new(), 1, 0).is_err());
        assert!(farthest_point_sample(&cloud, 5, 0).is_err());
        assert!(farthest_point_sample(&cloud, 2, 4).is_err());
    }

    #[test]
    fn fps_zero_samples_is_empty() {
        let fps = farthest_point_sample(&line_cloud(), 0, 0).unwrap();
        assert!(fps.indices.is_empty());
        assert_eq!(fps.counters.distance_evals, 0);
    }

    #[test]
    fn fps_is_deterministic_for_fixed_start() {
        let cloud = uniform_cube(128, 3);
        let a = farthest_point_sample(&cloud, 16, 2).unwrap();
        let b = farthest_point_sample(&cloud, 16, 2).unwrap();
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn fps_maximizes_min_distance_greedily() {
        // At every step the chosen point must have min-distance-to-set >=
        // that of every other unsampled point (greedy optimality invariant).
        let cloud = uniform_cube(64, 9);
        let fps = farthest_point_sample(&cloud, 8, 0).unwrap();
        for k in 1..fps.indices.len() {
            let set = &fps.indices[..k];
            let chosen = fps.indices[k];
            let min_d = |i: usize| {
                set.iter()
                    .map(|&s| cloud.point(i).distance_sq(cloud.point(s)))
                    .fold(f32::INFINITY, f32::min)
            };
            let chosen_d = min_d(chosen);
            for i in 0..cloud.len() {
                if !set.contains(&i) {
                    assert!(
                        min_d(i) <= chosen_d + 1e-6,
                        "step {k}: point {i} was farther than chosen {chosen}"
                    );
                }
            }
        }
    }
}

//! Reference (global-search) point operations.
//!
//! These are the *original* point operations of §II-B: iterative global FPS,
//! global ball query, global KNN, gather, and 3-NN interpolation. They are
//! exact, `O(n²)`-style implementations used as (a) the functional baseline
//! the block-parallel versions are validated against, and (b) the source of
//! operation counts consumed by the PointAcc/Mesorasi/GPU cost models.
//!
//! Every operation fills an [`OpCounters`] record with the number of distance
//! evaluations, comparisons, and element-granularity memory touches it
//! performed, so architecture models can be driven by *measured* work rather
//! than closed-form guesses.
//!
//! The hot loops run on the chunked SoA kernels of
//! [`kernels`](crate::kernels); counters are accumulated per scan
//! (analytically) instead of per element, with totals identical to the
//! retained scalar baselines in [`reference`]. Property tests assert
//! index/distance/counter equality between the two paths.

mod ball_query;
mod fps;
mod gather;
mod interpolate;
mod knn;
pub mod reference;

pub use ball_query::{ball_query, BallQueryResult};
pub use fps::{farthest_point_sample, FpsResult};
pub use gather::{gather_features, group_points, GroupedFeatures};
pub use interpolate::{interpolate_features, InterpolationResult};
pub use knn::{k_nearest_neighbors, KnnResult};

use serde::{Deserialize, Serialize};

/// Work counters shared by all point operations.
///
/// Counters are element-granularity: one "memory touch" is one point record
/// (coordinates) or one feature row read or written. The simulator converts
/// touches into bytes with the configured precision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    /// Euclidean distance evaluations (the RSPU distance-unit workload).
    pub distance_evals: u64,
    /// Scalar comparisons (argmax/argmin/top-k/threshold checks).
    pub comparisons: u64,
    /// Point-coordinate records read.
    pub coord_reads: u64,
    /// Feature rows read.
    pub feature_reads: u64,
    /// Records written (sampled indices, neighbor lists, gathered rows…).
    pub writes: u64,
    /// Candidates skipped by the window-check mechanism (block ops only).
    pub skipped: u64,
    /// Multiply-accumulates executed on *unaggregated* per-point rows — the
    /// MACs a delayed-aggregation (Mesorasi) schedule moves in front of the
    /// aggregation stage. Zero for an eager schedule.
    pub macs_moved: u64,
    /// Multiply-accumulates a delayed-aggregation schedule avoided relative
    /// to the eager gather-then-MLP formulation of the same layer (eager MACs
    /// minus MACs actually executed). Zero for an eager schedule.
    pub macs_saved: u64,
    /// Bytes of materialized grouped-matrix traffic: the duplicated
    /// neighborhood feature rows an eager schedule gathers before its MLP.
    /// Zero for a delayed schedule, which aggregates over index lists.
    pub gather_bytes: u64,
}

impl OpCounters {
    /// Creates zeroed counters.
    pub fn new() -> OpCounters {
        OpCounters::default()
    }

    /// Sums two counter sets (used when aggregating per-block work).
    pub fn merge(&mut self, other: &OpCounters) {
        self.distance_evals += other.distance_evals;
        self.comparisons += other.comparisons;
        self.coord_reads += other.coord_reads;
        self.feature_reads += other.feature_reads;
        self.writes += other.writes;
        self.skipped += other.skipped;
        self.macs_moved += other.macs_moved;
        self.macs_saved += other.macs_saved;
        self.gather_bytes += other.gather_bytes;
    }

    /// Total memory touches (reads + writes), in records.
    pub fn memory_touches(&self) -> u64 {
        self.coord_reads + self.feature_reads + self.writes
    }

    /// Closed-form work model for block FPS: selecting `m` samples out of an
    /// `n`-point block. This is the single source of truth shared by the real
    /// kernel driver (`fps_block_task_into`) and the prefix/LOD views, so a
    /// sliced `PipelineOutput::prefix(k)` reports bit-identical counters to a
    /// pipeline actually run at the smaller budget.
    ///
    /// Scan `s` (for `s` in `1..m`) visits `n - s` candidates under the
    /// window check (already-sampled points are skipped) or all `n` without
    /// it; every visit costs one coordinate read, one distance evaluation,
    /// and two comparisons (distance merge + argmax). Each selection —
    /// including the seed — is one write.
    pub fn block_fps_model(n: usize, m: usize, window_check: bool) -> OpCounters {
        let mut counters = OpCounters::new();
        if m == 0 || n == 0 {
            return counters;
        }
        let m = m.min(n);
        let (n64, m64) = (n as u64, m as u64);
        let visited =
            if window_check { (m64 - 1) * n64 - m64 * (m64 - 1) / 2 } else { (m64 - 1) * n64 };
        counters.coord_reads = visited;
        counters.distance_evals = visited;
        counters.comparisons = 2 * visited;
        counters.writes = m64;
        if window_check {
            counters.skipped = m64 * (m64 - 1) / 2;
        }
        counters
    }

    /// Closed-form work model for block ball query: `centers` query rows over
    /// a shared `candidates`-point search space, each row padded to `num`
    /// slots. Shared with the real kernel driver (`ball_query_block_core`)
    /// and the prefix/LOD views — see [`OpCounters::block_fps_model`].
    ///
    /// The candidate coordinates are read once per block (even when the block
    /// contributes zero centers); each center evaluates every candidate
    /// (one distance, one comparison) and writes `num` neighbor slots.
    pub fn ball_query_model(candidates: usize, centers: usize, num: usize) -> OpCounters {
        let mut counters = OpCounters::new();
        counters.coord_reads = candidates as u64;
        counters.distance_evals = (centers * candidates) as u64;
        counters.comparisons = (centers * candidates) as u64;
        counters.writes = (centers * num) as u64;
        counters
    }
}

impl std::ops::Add for OpCounters {
    type Output = OpCounters;

    fn add(self, other: OpCounters) -> OpCounters {
        let mut out = self;
        out.merge(&other);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_adds_fields() {
        let a =
            OpCounters { distance_evals: 1, comparisons: 2, coord_reads: 3, ..Default::default() };
        let b = OpCounters { distance_evals: 10, writes: 5, ..Default::default() };
        let c = a + b;
        assert_eq!(c.distance_evals, 11);
        assert_eq!(c.comparisons, 2);
        assert_eq!(c.writes, 5);
        assert_eq!(c.memory_touches(), 3 + 5);
    }

    #[test]
    fn counters_merge_adds_mac_and_gather_fields() {
        let a = OpCounters { macs_moved: 7, macs_saved: 100, ..Default::default() };
        let b = OpCounters { macs_moved: 3, gather_bytes: 64, ..Default::default() };
        let c = a + b;
        assert_eq!(c.macs_moved, 10);
        assert_eq!(c.macs_saved, 100);
        assert_eq!(c.gather_bytes, 64);
        assert_eq!(c.memory_touches(), 0, "MAC/gather counters are not memory touches");
    }
}

//! Global ball query (radius-bounded neighbor search).

use crate::cloud::PointCloud;
use crate::error::{Error, Result};
use crate::kernels;
use crate::ops::OpCounters;
use crate::point::Point3;

/// Output of [`ball_query`].
#[derive(Debug, Clone, PartialEq)]
pub struct BallQueryResult {
    /// `centers × num` neighbor indices, row-major, nearest first. Rows with
    /// fewer than `num` in-radius candidates are padded by repeating the
    /// nearest neighbor; rows with none fall back to the globally nearest
    /// candidate (`usize::MAX` if the candidate set is empty).
    pub indices: Vec<usize>,
    /// Neighbors found per center before padding.
    pub found: Vec<usize>,
    /// Number of neighbor slots per center.
    pub num: usize,
    /// Work performed.
    pub counters: OpCounters,
}

impl BallQueryResult {
    /// The neighbor row for center `c`.
    pub fn row(&self, c: usize) -> &[usize] {
        &self.indices[c * self.num..(c + 1) * self.num]
    }

    /// Number of centers.
    pub fn centers(&self) -> usize {
        self.indices.len().checked_div(self.num).unwrap_or(0)
    }
}

/// Global ball query (Fig. 2(b)): for every center, select up to `num`
/// candidates within `radius`.
///
/// This implementation returns the `num` *nearest* in-radius candidates
/// (canonical, scan-order-independent semantics). PointNet++'s CUDA kernel
/// returns the first `num` encountered in memory order instead; the two are
/// statistically equivalent for feature extraction, but the canonical form
/// makes block-wise and global searches directly comparable, which the
/// accuracy-proxy metrics rely on. The cost model is unchanged: hardware
/// scans every candidate either way.
///
/// The scan runs on the batched fused kernel
/// [`kernels::ball_select_batch`]: tiles of [`kernels::QUERY_TILE`] centers
/// share every pass over the candidate chunks on the active
/// [`kernels::Backend`], each chunk's distance + radius-compare pass
/// produces a hit bitmask plus the chunk minimum (for the nearest-neighbor
/// fallback), and only hit lanes reach the branchy top-`num` insertion.
/// Counters are accumulated analytically per scan and match the scalar
/// reference ([`reference::ball_query`](crate::ops::reference::ball_query))
/// exactly.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for non-positive `radius` or zero
/// `num`.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::{ops::ball_query, PointCloud, Point3};
///
/// let candidates = PointCloud::from_points(vec![
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(0.2, 0.0, 0.0),
///     Point3::new(5.0, 0.0, 0.0),
/// ]);
/// let centers = vec![Point3::new(0.0, 0.0, 0.0)];
/// let bq = ball_query(&candidates, &centers, 0.5, 2)?;
/// assert_eq!(bq.row(0), &[0, 1]); // 5.0 is outside the ball
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
pub fn ball_query(
    candidates: &PointCloud,
    centers: &[Point3],
    radius: f32,
    num: usize,
) -> Result<BallQueryResult> {
    // `!(radius > 0.0)` deliberately rejects NaN radii alongside
    // non-positive ones.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(radius > 0.0) {
        return Err(Error::InvalidParameter {
            name: "radius",
            message: format!("must be positive, got {radius}"),
        });
    }
    if num == 0 {
        return Err(Error::InvalidParameter { name: "num", message: "must be at least 1".into() });
    }

    let r_sq = radius * radius;
    let n = candidates.len();
    let (xs, ys, zs) = (candidates.xs(), candidates.ys(), candidates.zs());
    let mut counters = OpCounters::new();
    let mut indices = Vec::with_capacity(centers.len() * num);
    let mut found = Vec::with_capacity(centers.len());

    // Batched fused scan: tiles of QUERY_TILE centers share every candidate
    // chunk load; the per-chunk hit mask keeps the radius branch out of the
    // distance loop, and the chunk minima feed the nearest fallback.
    let queries: Vec<[f32; 3]> = centers.iter().map(|c| [c.x, c.y, c.z]).collect();
    let mut writes = 0u64;
    kernels::ball_select_batch(xs, ys, zs, &queries, r_sq, num, |_, best, nearest| {
        found.push(best.len());
        let mut row: Vec<usize> = best.iter().map(|&(_, i)| i).collect();
        if row.is_empty() {
            // No candidate in radius: fall back to the globally nearest
            // candidate so downstream gathers stay well-formed.
            row.push(nearest.1);
        }
        let first = row[0];
        while row.len() < num {
            row.push(first);
        }
        writes += num as u64;
        indices.extend_from_slice(&row);
    });
    counters.writes += writes;

    // Analytic scan counters: one coordinate read, one distance evaluation
    // and one radius comparison per candidate per center.
    counters.coord_reads += (centers.len() * n) as u64;
    counters.distance_evals += (centers.len() * n) as u64;
    counters.comparisons += (centers.len() * n) as u64;

    Ok(BallQueryResult { indices, found, num, counters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform_cube;

    fn candidates() -> PointCloud {
        PointCloud::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(0.1, 0.0, 0.0),
            Point3::new(0.2, 0.0, 0.0),
            Point3::new(0.9, 0.0, 0.0),
            Point3::new(5.0, 5.0, 5.0),
        ])
    }

    #[test]
    fn ball_query_takes_nearest_num_within_radius() {
        let bq = ball_query(&candidates(), &[Point3::ORIGIN], 1.0, 3).unwrap();
        assert_eq!(bq.row(0), &[0, 1, 2]);
        assert_eq!(bq.found[0], 3);
        // With 4 in-radius candidates and num=2, the two nearest win.
        let bq = ball_query(&candidates(), &[Point3::new(0.9, 0.0, 0.0)], 1.0, 2).unwrap();
        assert_eq!(bq.row(0), &[3, 2]);
    }

    #[test]
    fn ball_query_pads_with_first_neighbor() {
        let bq = ball_query(&candidates(), &[Point3::ORIGIN], 0.15, 4).unwrap();
        assert_eq!(bq.row(0), &[0, 1, 0, 0]);
        assert_eq!(bq.found[0], 2);
    }

    #[test]
    fn ball_query_empty_ball_falls_back_to_nearest() {
        let far = Point3::new(100.0, 0.0, 0.0);
        let bq = ball_query(&candidates(), &[far], 0.5, 2).unwrap();
        // Nearest candidate to (100,0,0): (5,5,5) at d² = 95²+25+25 = 9075
        // beats (0.9,0,0) at d² = 99.1² ≈ 9821.
        assert_eq!(bq.row(0), &[4, 4]);
        assert_eq!(bq.found[0], 0);
    }

    #[test]
    fn ball_query_respects_radius_strictly() {
        let cloud = uniform_cube(500, 4);
        let centers: Vec<Point3> = (0..20).map(|i| cloud.point(i * 7)).collect();
        let radius = 0.2;
        let bq = ball_query(&cloud, &centers, radius, 16).unwrap();
        for (c, &center) in centers.iter().enumerate() {
            for (slot, &i) in bq.row(c).iter().enumerate() {
                if slot < bq.found[c] {
                    assert!(
                        cloud.point(i).distance(center) <= radius + 1e-6,
                        "neighbor outside ball"
                    );
                }
            }
        }
    }

    #[test]
    fn ball_query_validates_parameters() {
        assert!(ball_query(&candidates(), &[Point3::ORIGIN], 0.0, 4).is_err());
        assert!(ball_query(&candidates(), &[Point3::ORIGIN], -1.0, 4).is_err());
        assert!(ball_query(&candidates(), &[Point3::ORIGIN], 1.0, 0).is_err());
    }

    #[test]
    fn ball_query_counts_scale_with_centers() {
        let cloud = uniform_cube(100, 1);
        let centers: Vec<Point3> = (0..10).map(|i| cloud.point(i)).collect();
        // Large radius + large num => full scans, n*centers distance evals.
        let bq = ball_query(&cloud, &centers, 10.0, 200).unwrap();
        assert_eq!(bq.counters.distance_evals, 1000);
    }

    #[test]
    fn row_accessor_shape() {
        let bq = ball_query(&candidates(), &[Point3::ORIGIN, Point3::splat(5.0)], 1.0, 2).unwrap();
        assert_eq!(bq.centers(), 2);
        assert_eq!(bq.row(1).len(), 2);
    }
}

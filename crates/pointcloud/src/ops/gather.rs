//! Gathering: resolving neighbor indices into feature rows and grouped
//! coordinate tensors.

use crate::cloud::PointCloud;
use crate::error::{Error, Result};
use crate::ops::OpCounters;
use crate::point::Point3;

/// Output of [`gather_features`] / [`group_points`]: a dense
/// `centers × num × channels` tensor plus work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedFeatures {
    /// Row-major `(centers * num) × channels` data.
    pub data: Vec<f32>,
    /// Number of centers.
    pub centers: usize,
    /// Neighbor slots per center.
    pub num: usize,
    /// Channels per entry.
    pub channels: usize,
    /// Work performed.
    pub counters: OpCounters,
}

impl GroupedFeatures {
    /// The feature row for neighbor slot `s` of center `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` or `s` are out of range.
    pub fn entry(&self, c: usize, s: usize) -> &[f32] {
        assert!(c < self.centers && s < self.num, "entry ({c},{s}) out of range");
        let row = c * self.num + s;
        &self.data[row * self.channels..(row + 1) * self.channels]
    }
}

/// Gathers feature rows for every neighbor index (the gathering operation of
/// §II-B). `indices` is row-major `centers × num`; the gathered tensor has
/// the cloud's channel count.
///
/// In the original (pre-Fractal) layout the indices are scattered across the
/// whole feature space, which is exactly why conventional gathering needs
/// global memory: each of the `centers × num` reads may touch any bank.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] when `indices.len()` is not a multiple of
/// `num`, and [`Error::IndexOutOfBounds`] for invalid indices.
pub fn gather_features(
    cloud: &PointCloud,
    indices: &[usize],
    num: usize,
) -> Result<GroupedFeatures> {
    if num == 0 || !indices.len().is_multiple_of(num) {
        return Err(Error::ShapeMismatch { expected: num.max(1), actual: indices.len() });
    }
    let centers = indices.len() / num;
    let channels = cloud.channels();
    let mut counters = OpCounters::new();
    let mut data = Vec::with_capacity(indices.len() * channels);
    for &i in indices {
        if i >= cloud.len() {
            return Err(Error::IndexOutOfBounds { index: i, len: cloud.len() });
        }
        counters.feature_reads += 1;
        data.extend_from_slice(cloud.feature(i));
        counters.writes += 1;
    }
    Ok(GroupedFeatures { data, centers, num, channels, counters })
}

/// Groups *coordinates* relative to each center (the `p_set` tensor feeding
/// the first MLP of a set-abstraction stage): entry `(c, s)` is
/// `candidate[indices[c,s]] − centers[c]`, 3 channels.
///
/// # Errors
///
/// Same conditions as [`gather_features`], plus a shape check that
/// `indices.len() == centers.len() * num`.
pub fn group_points(
    cloud: &PointCloud,
    centers: &[Point3],
    indices: &[usize],
    num: usize,
) -> Result<GroupedFeatures> {
    if num == 0 || indices.len() != centers.len() * num {
        return Err(Error::ShapeMismatch {
            expected: centers.len() * num.max(1),
            actual: indices.len(),
        });
    }
    let mut counters = OpCounters::new();
    let mut data = Vec::with_capacity(indices.len() * 3);
    for (c, &center) in centers.iter().enumerate() {
        for s in 0..num {
            let i = indices[c * num + s];
            if i >= cloud.len() {
                return Err(Error::IndexOutOfBounds { index: i, len: cloud.len() });
            }
            counters.coord_reads += 1;
            let rel = cloud.point(i) - center;
            data.extend_from_slice(&rel.to_array());
            counters.writes += 1;
        }
    }
    Ok(GroupedFeatures { data, centers: centers.len(), num, channels: 3, counters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform_cube;
    use crate::generate::with_random_features;

    fn featured() -> PointCloud {
        PointCloud::from_points_features(
            vec![Point3::ORIGIN, Point3::splat(1.0), Point3::splat(2.0)],
            vec![10.0, 20.0, 11.0, 21.0, 12.0, 22.0],
            2,
        )
        .unwrap()
    }

    #[test]
    fn gather_resolves_indices_in_order() {
        let g = gather_features(&featured(), &[2, 0, 1, 1], 2).unwrap();
        assert_eq!(g.centers, 2);
        assert_eq!(g.entry(0, 0), &[12.0, 22.0]);
        assert_eq!(g.entry(0, 1), &[10.0, 20.0]);
        assert_eq!(g.entry(1, 0), &[11.0, 21.0]);
        assert_eq!(g.entry(1, 1), &[11.0, 21.0]);
    }

    #[test]
    fn gather_counts_one_read_per_slot() {
        let g = gather_features(&featured(), &[0, 1, 2, 0], 2).unwrap();
        assert_eq!(g.counters.feature_reads, 4);
        assert_eq!(g.counters.writes, 4);
    }

    #[test]
    fn gather_rejects_bad_shapes_and_indices() {
        assert!(gather_features(&featured(), &[0, 1, 2], 2).is_err());
        assert!(gather_features(&featured(), &[0, 9], 2).is_err());
        assert!(gather_features(&featured(), &[], 0).is_err());
    }

    #[test]
    fn group_points_is_relative_to_center() {
        let cloud = PointCloud::from_points(vec![Point3::splat(1.0), Point3::splat(3.0)]);
        let centers = [Point3::splat(1.0)];
        let g = group_points(&cloud, &centers, &[0, 1], 2).unwrap();
        assert_eq!(g.entry(0, 0), &[0.0, 0.0, 0.0]);
        assert_eq!(g.entry(0, 1), &[2.0, 2.0, 2.0]);
        assert_eq!(g.channels, 3);
    }

    #[test]
    fn group_points_validates_shape() {
        let cloud = uniform_cube(4, 0);
        let centers = [Point3::ORIGIN];
        assert!(group_points(&cloud, &centers, &[0, 1, 2], 2).is_err());
    }

    #[test]
    fn grouped_tensor_dimensions() {
        let cloud = with_random_features(uniform_cube(32, 1), 8, 2);
        let idx: Vec<usize> = (0..16).map(|i| i % 32).collect();
        let g = gather_features(&cloud, &idx, 4).unwrap();
        assert_eq!(g.centers, 4);
        assert_eq!(g.num, 4);
        assert_eq!(g.channels, 8);
        assert_eq!(g.data.len(), 16 * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn entry_panics_out_of_range() {
        let g = gather_features(&featured(), &[0, 1], 2).unwrap();
        let _ = g.entry(1, 0);
    }
}

//! A counting global allocator for allocation-budget measurements.
//!
//! The workspace's zero-allocation claims (see the core crate's
//! `workspace` module) are *measured*, not asserted: benchmark binaries
//! install [`CountingAllocator`] as their `#[global_allocator]` and read
//! [`allocation_count`] deltas around the hot path. The counter is a single
//! relaxed atomic increment per `alloc`/`realloc`, cheap enough that the
//! bench numbers stay representative; release builds that don't install
//! the allocator pay nothing.
//!
//! ```ignore
//! use fractalcloud_pointcloud::count_alloc::{allocation_count, CountingAllocator};
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//!
//! let before = allocation_count();
//! hot_path();
//! println!("allocs: {}", allocation_count() - before);
//! ```
//!
//! Only heap *acquisitions* are counted (`alloc`, `alloc_zeroed`, and
//! `realloc`, which may acquire a new region); `dealloc` is tracked
//! separately via [`deallocation_count`] so leak-shaped deltas are visible
//! too. Counters are process-global: measure on a quiesced process (or a
//! single-threaded section) for exact per-operation numbers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Heap acquisitions (`alloc` + `alloc_zeroed` + `realloc`) observed by an
/// installed [`CountingAllocator`] since process start. Always zero when no
/// binary installed the allocator.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Heap releases (`dealloc`) observed by an installed
/// [`CountingAllocator`] since process start.
pub fn deallocation_count() -> u64 {
    DEALLOCATIONS.load(Ordering::Relaxed)
}

/// [`System`] with relaxed-atomic acquisition/release counters — install as
/// `#[global_allocator]` in a bench binary to measure allocations per
/// operation (see the [module docs](self)).
pub struct CountingAllocator;

// SAFETY: defers every operation to `System` with unchanged layouts; the
// counter updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_without_installation() {
        // The library never installs the allocator itself; only bench
        // binaries do, so in unit tests the counters stay untouched.
        assert_eq!(allocation_count(), 0);
        assert_eq!(deallocation_count(), 0);
    }
}

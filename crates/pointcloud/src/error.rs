//! Error types for the point-cloud substrate.

use std::fmt;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by point-cloud operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A buffer had a different number of elements than the shape implies.
    ShapeMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// An index referenced a point beyond the end of the cloud.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The cloud length.
        len: usize,
    },
    /// A permutation vector was not a permutation of `0..len`.
    InvalidPermutation,
    /// An operation that requires a non-empty cloud received an empty one.
    EmptyCloud,
    /// A parameter was outside its meaningful range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// The operation was cancelled cooperatively before it completed —
    /// e.g. a serving deadline expired while the pipeline was mid-flight.
    /// Any partially written output staging must be treated as garbage.
    Cancelled,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected} elements, got {actual}")
            }
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for cloud of {len} points")
            }
            Error::InvalidPermutation => write!(f, "vector is not a permutation of 0..len"),
            Error::EmptyCloud => write!(f, "operation requires a non-empty point cloud"),
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::Cancelled => write!(f, "operation cancelled before completion"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::ShapeMismatch { expected: 4, actual: 2 };
        assert_eq!(e.to_string(), "shape mismatch: expected 4 elements, got 2");
        let e = Error::IndexOutOfBounds { index: 7, len: 3 };
        assert!(e.to_string().contains("index 7"));
        let e = Error::InvalidParameter { name: "radius", message: "must be positive".into() };
        assert!(e.to_string().contains("radius"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}

//! Octree partitioning with dynamic subdivision (HgPCN / ParallelNN style).

use crate::aabb::Aabb;
use crate::cloud::PointCloud;
use crate::error::{Error, Result};
use crate::partition::{Block, Partition, PartitionCost, Partitioner};
use crate::point::Point3;

/// Octree partitioning: recursive 8-way spatial subdivision at the cell
/// *center* (not the point median), refining only overfull cells.
///
/// The paper classifies octrees as "a uniform-based extension with dynamic
/// subdivision" (§VI-C): better than a flat grid on skewed data, but splits
/// are still space-driven, so residual imbalance and empty children remain.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::partition::{OctreePartitioner, Partitioner};
/// use fractalcloud_pointcloud::generate::uniform_cube;
///
/// let cloud = uniform_cube(2048, 3);
/// let part = OctreePartitioner::new(256).partition(&cloud)?;
/// assert!(part.blocks.iter().all(|b| b.len() <= 256));
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OctreePartitioner {
    /// Maximum points per leaf.
    pub block_size: usize,
    /// Hard depth cap to bound recursion on pathological inputs
    /// (duplicated points).
    pub max_depth: usize,
}

impl OctreePartitioner {
    /// Creates an octree partitioner with leaf capacity `block_size` and a
    /// depth cap of 16.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> OctreePartitioner {
        assert!(block_size > 0, "block_size must be positive");
        OctreePartitioner { block_size, max_depth: 16 }
    }
}

struct OctBuild<'a> {
    cloud: &'a PointCloud,
    block_size: usize,
    depth_cap: usize,
    cost: PartitionCost,
    blocks: Vec<Block>,
    max_depth: usize,
}

impl OctBuild<'_> {
    fn build(&mut self, indices: Vec<usize>, cell: Aabb, depth: usize) -> Vec<usize> {
        self.max_depth = self.max_depth.max(depth);
        if indices.len() <= self.block_size || depth >= self.depth_cap {
            let aabb = Aabb::from_points(indices.iter().map(|&i| self.cloud.point(i)))
                .expect("non-empty leaf");
            self.blocks.push(Block { indices, aabb, depth, parent_group: Vec::new() });
            return vec![self.blocks.len() - 1];
        }

        // One traversal pass distributes points into 8 children by
        // comparing against the cell center on all three axes.
        self.cost.traversal_passes += 1;
        self.cost.traversal_elements += indices.len() as u64;
        self.cost.compare_ops += (indices.len() * 3) as u64;

        let c = cell.center();
        let mut children: [Vec<usize>; 8] = Default::default();
        for i in indices {
            let p = self.cloud.point(i);
            let octant =
                ((p.x > c.x) as usize) << 2 | ((p.y > c.y) as usize) << 1 | ((p.z > c.z) as usize);
            children[octant].push(i);
        }

        let mut leaf_ids = Vec::new();
        for (octant, child) in children.into_iter().enumerate() {
            if child.is_empty() {
                continue;
            }
            let child_cell = octant_cell(&cell, c, octant);
            leaf_ids.extend(self.build(child, child_cell, depth + 1));
        }
        // Sibling leaves directly under this node share a search group when
        // all children are leaves (mirrors the binary-tree parent rule).
        if leaf_ids.iter().all(|&id| self.blocks[id].depth == depth + 1) {
            for &id in &leaf_ids {
                self.blocks[id].parent_group = leaf_ids.clone();
            }
        }
        leaf_ids
    }
}

fn octant_cell(cell: &Aabb, c: Point3, octant: usize) -> Aabb {
    let (min, max) = (cell.min(), cell.max());
    let pick = |bit: bool, lo: f32, mid: f32, hi: f32| if bit { (mid, hi) } else { (lo, mid) };
    let (x0, x1) = pick(octant & 4 != 0, min.x, c.x, max.x);
    let (y0, y1) = pick(octant & 2 != 0, min.y, c.y, max.y);
    let (z0, z1) = pick(octant & 1 != 0, min.z, c.z, max.z);
    Aabb::new(Point3::new(x0, y0, z0), Point3::new(x1, y1, z1))
}

impl Partitioner for OctreePartitioner {
    fn name(&self) -> &'static str {
        "octree"
    }

    fn partition(&self, cloud: &PointCloud) -> Result<Partition> {
        if cloud.is_empty() {
            return Err(Error::EmptyCloud);
        }
        let bounds = cloud.bounds().expect("non-empty cloud");
        let mut b = OctBuild {
            cloud,
            block_size: self.block_size,
            depth_cap: self.max_depth,
            cost: PartitionCost::default(),
            blocks: Vec::new(),
            max_depth: 0,
        };
        b.build((0..cloud.len()).collect(), bounds, 0);
        for i in 0..b.blocks.len() {
            if b.blocks[i].parent_group.is_empty() {
                b.blocks[i].parent_group = vec![i];
            }
        }
        Ok(Partition {
            blocks: b.blocks,
            cost: b.cost,
            max_depth: b.max_depth,
            method: self.name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{scene_cloud, uniform_cube, SceneConfig};

    #[test]
    fn octree_partition_is_exact() {
        let cloud = scene_cloud(&SceneConfig::default(), 4000, 3);
        let p = OctreePartitioner::new(200).partition(&cloud).unwrap();
        assert!(p.is_exact_partition_of(4000));
    }

    #[test]
    fn octree_leaves_respect_block_size() {
        let cloud = scene_cloud(&SceneConfig::default(), 6000, 1);
        let p = OctreePartitioner::new(256).partition(&cloud).unwrap();
        for b in &p.blocks {
            assert!(b.len() <= 256);
        }
    }

    #[test]
    fn octree_refines_dense_regions_deeper() {
        let cloud = scene_cloud(&SceneConfig::default(), 8000, 5);
        let p = OctreePartitioner::new(128).partition(&cloud).unwrap();
        // Dense clusters must force deeper leaves than sparse structure.
        let depths: Vec<usize> = p.blocks.iter().map(|b| b.depth).collect();
        let min_d = *depths.iter().min().unwrap();
        let max_d = *depths.iter().max().unwrap();
        assert!(max_d > min_d, "octree should have varied depths on skewed data");
    }

    #[test]
    fn octree_depth_cap_terminates_duplicates() {
        // All points identical: subdivision can never succeed; cap stops it.
        let cloud = PointCloud::from_points(vec![Point3::splat(0.5); 100]);
        let p = OctreePartitioner { block_size: 8, max_depth: 6 }.partition(&cloud).unwrap();
        assert!(p.max_depth <= 6);
        assert!(p.is_exact_partition_of(100));
    }

    #[test]
    fn octree_cost_has_traversals_not_sorts() {
        let cloud = uniform_cube(4096, 2);
        let p = OctreePartitioner::new(64).partition(&cloud).unwrap();
        assert!(p.cost.traversal_passes > 0);
        assert_eq!(p.cost.sort_invocations, 0);
    }

    #[test]
    fn octant_cells_tile_parent() {
        let cell = Aabb::new(Point3::ORIGIN, Point3::splat(2.0));
        let c = cell.center();
        let mut vol = 0.0;
        for o in 0..8 {
            vol += octant_cell(&cell, c, o).volume();
        }
        assert!((vol - cell.volume()).abs() < 1e-5);
    }

    #[test]
    fn empty_cloud_errors() {
        assert!(OctreePartitioner::new(8).partition(&PointCloud::new()).is_err());
    }
}

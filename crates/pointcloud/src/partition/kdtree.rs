//! Density-uniform KD-tree partitioning (Crescent-style).

use crate::aabb::Aabb;
use crate::cloud::PointCloud;
use crate::error::{Error, Result};
use crate::partition::{Block, Partition, PartitionCost, Partitioner};
use crate::point::Axis;

/// How the KD-tree picks its split axis at each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitAxisRule {
    /// Widest extent of the node's bounding box (classic KD-tree).
    Widest,
    /// Cycle x → y → z by depth (matches the fractal engine's KD-tree mode).
    Cycle,
}

/// Density-aware KD-tree partitioning (Fig. 3(c), Crescent \[29\]): recursive
/// *median* splits produce strictly balanced blocks, at the cost of a full
/// sort per node — the "exclusive sorter" workload of Fig. 5.
///
/// Every split sorts the node's coordinate slice; sorts are counted in
/// [`PartitionCost`] so hardware models can charge the merge-sort unit.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::partition::{KdTreePartitioner, Partitioner};
/// use fractalcloud_pointcloud::generate::uniform_cube;
///
/// let cloud = uniform_cube(1024, 1);
/// let part = KdTreePartitioner::new(64).partition(&cloud)?;
/// // Median splits of 1024 points with leaves ≤ 64: 16 equal leaves.
/// assert_eq!(part.blocks.len(), 16);
/// assert!(part.blocks.iter().all(|b| b.len() == 64));
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KdTreePartitioner {
    /// Maximum points per leaf block (the paper's block size `BS`).
    pub block_size: usize,
    /// Split-axis selection rule.
    pub axis_rule: SplitAxisRule,
}

impl KdTreePartitioner {
    /// Creates a KD-tree partitioner with leaf capacity `block_size` and the
    /// widest-axis rule.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> KdTreePartitioner {
        assert!(block_size > 0, "block_size must be positive");
        KdTreePartitioner { block_size, axis_rule: SplitAxisRule::Widest }
    }

    /// Same, with axis cycling instead of widest-extent selection.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn with_cycling_axes(block_size: usize) -> KdTreePartitioner {
        assert!(block_size > 0, "block_size must be positive");
        KdTreePartitioner { block_size, axis_rule: SplitAxisRule::Cycle }
    }

    /// Number of sort invocations a KD-tree needs for `n` points at leaf
    /// size `bs`: one per internal node of a balanced binary tree with
    /// `ceil(n / bs)` leaves (Fig. 5: 1K pts, BS 64 → 15 sorts; 289K pts,
    /// BS 256 → 2047 sorts).
    pub fn expected_sorts(n: usize, bs: usize) -> u64 {
        if n <= bs {
            return 0;
        }
        let leaves = n.div_ceil(bs).next_power_of_two();
        (leaves - 1) as u64
    }
}

struct KdBuild<'a> {
    cloud: &'a PointCloud,
    block_size: usize,
    axis_rule: SplitAxisRule,
    cost: PartitionCost,
    blocks: Vec<Block>,
    max_depth: usize,
}

impl KdBuild<'_> {
    /// Recursively splits `indices`; returns the leaf ids created under this
    /// node so parents can form sibling search-space groups.
    fn build(&mut self, indices: Vec<usize>, depth: usize) -> Vec<usize> {
        self.max_depth = self.max_depth.max(depth);
        if indices.len() <= self.block_size {
            let aabb = Aabb::from_points(indices.iter().map(|&i| self.cloud.point(i)))
                .expect("non-empty leaf");
            self.blocks.push(Block { indices, aabb, depth, parent_group: Vec::new() });
            return vec![self.blocks.len() - 1];
        }

        let aabb = Aabb::from_points(indices.iter().map(|&i| self.cloud.point(i)))
            .expect("non-empty node");
        let axis = match self.axis_rule {
            SplitAxisRule::Widest => aabb.longest_axis(),
            SplitAxisRule::Cycle => Axis::from_depth(depth),
        };

        // Median selection by full sort — the exclusive, non-decomposable
        // hardware sort the paper identifies as Crescent's bottleneck.
        let mut keyed: Vec<(f32, usize)> =
            indices.iter().map(|&i| (self.cloud.point(i).coord(axis), i)).collect();
        keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        self.cost.sort_invocations += 1;
        self.cost.sorted_elements += keyed.len() as u64;
        self.cost.compare_ops += PartitionCost::sort_compare_cost(keyed.len());

        let mid = keyed.len() / 2;
        let left: Vec<usize> = keyed[..mid].iter().map(|&(_, i)| i).collect();
        let right: Vec<usize> = keyed[mid..].iter().map(|&(_, i)| i).collect();

        let mut leaf_ids = self.build(left, depth + 1);
        leaf_ids.extend(self.build(right, depth + 1));

        // Immediate-parent search space: children leaves directly under this
        // node of the final subdivision share a group when this node is the
        // parent (i.e. both children are leaves).
        if leaf_ids.len() == 2 {
            for &id in &leaf_ids {
                self.blocks[id].parent_group = leaf_ids.clone();
            }
        }
        leaf_ids
    }
}

impl Partitioner for KdTreePartitioner {
    fn name(&self) -> &'static str {
        "kd-tree"
    }

    fn partition(&self, cloud: &PointCloud) -> Result<Partition> {
        if cloud.is_empty() {
            return Err(Error::EmptyCloud);
        }
        let mut b = KdBuild {
            cloud,
            block_size: self.block_size,
            axis_rule: self.axis_rule,
            cost: PartitionCost::default(),
            blocks: Vec::new(),
            max_depth: 0,
        };
        b.build((0..cloud.len()).collect(), 0);
        // Any leaf without a sibling group searches itself only.
        for i in 0..b.blocks.len() {
            if b.blocks[i].parent_group.is_empty() {
                b.blocks[i].parent_group = vec![i];
            }
        }
        Ok(Partition {
            blocks: b.blocks,
            cost: b.cost,
            max_depth: b.max_depth,
            method: self.name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{scene_cloud, uniform_cube, SceneConfig};

    #[test]
    fn kdtree_partition_is_exact() {
        let cloud = scene_cloud(&SceneConfig::default(), 3000, 1);
        let p = KdTreePartitioner::new(128).partition(&cloud).unwrap();
        assert!(p.is_exact_partition_of(3000));
    }

    #[test]
    fn kdtree_blocks_never_exceed_block_size() {
        let cloud = scene_cloud(&SceneConfig::default(), 5000, 2);
        let p = KdTreePartitioner::new(100).partition(&cloud).unwrap();
        for b in &p.blocks {
            assert!(b.len() <= 100);
        }
    }

    #[test]
    fn kdtree_is_strictly_balanced_on_power_of_two() {
        let cloud = uniform_cube(1024, 4);
        let p = KdTreePartitioner::new(64).partition(&cloud).unwrap();
        assert_eq!(p.blocks.len(), 16);
        assert!(p.blocks.iter().all(|b| b.len() == 64));
        assert!((p.balance().imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kdtree_sort_counts_match_fig5() {
        // Fig. 5: BS=64, 1K points → 15 sorts.
        let cloud = uniform_cube(1024, 7);
        let p = KdTreePartitioner::new(64).partition(&cloud).unwrap();
        assert_eq!(p.cost.sort_invocations, 15);
        assert_eq!(KdTreePartitioner::expected_sorts(1024, 64), 15);
        // Fig. 5: BS=256, 289K points → 2047 sorts.
        assert_eq!(KdTreePartitioner::expected_sorts(289_000, 256), 2047);
    }

    #[test]
    fn kdtree_sorted_elements_accumulate_per_level() {
        // Every level re-sorts all n points: total ≈ n · depth.
        let cloud = uniform_cube(1024, 3);
        let p = KdTreePartitioner::new(64).partition(&cloud).unwrap();
        assert_eq!(p.cost.sorted_elements, 1024 * 4); // levels of 1024..128
    }

    #[test]
    fn kdtree_sibling_groups_pair_leaves() {
        let cloud = uniform_cube(256, 6);
        let p = KdTreePartitioner::new(64).partition(&cloud).unwrap();
        for (i, b) in p.blocks.iter().enumerate() {
            assert!(b.parent_group.contains(&i));
            assert!(b.parent_group.len() <= 2);
        }
    }

    #[test]
    fn cycling_axes_rule_works() {
        let cloud = uniform_cube(512, 8);
        let p = KdTreePartitioner::with_cycling_axes(64).partition(&cloud).unwrap();
        assert!(p.is_exact_partition_of(512));
    }

    #[test]
    fn small_cloud_single_block_no_sorts() {
        let cloud = uniform_cube(50, 5);
        let p = KdTreePartitioner::new(64).partition(&cloud).unwrap();
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.cost.sort_invocations, 0);
        assert_eq!(p.blocks[0].parent_group, vec![0]);
    }

    #[test]
    fn empty_cloud_errors() {
        assert!(KdTreePartitioner::new(8).partition(&PointCloud::new()).is_err());
    }
}

//! Partitioning strategies and their cost accounting.
//!
//! The paper compares four families (Fig. 3): no partitioning (PointAcc),
//! space-uniform grids (PNNPU), density-uniform KD-trees (Crescent), octrees
//! (HgPCN/ParallelNN), and the proposed shape-aware Fractal (implemented in
//! `fractalcloud-core`, which produces the same [`Partition`] output type so
//! all strategies are interchangeable downstream).

mod kdtree;
mod octree;
mod stats;
mod uniform;

pub use kdtree::KdTreePartitioner;
pub use octree::OctreePartitioner;
pub use stats::BalanceStats;
pub use uniform::UniformPartitioner;

use crate::aabb::Aabb;
use crate::cloud::PointCloud;
use crate::error::Result;
use serde::{Deserialize, Serialize};

/// One output block of a partitioning strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Original-cloud indices of the points in this block.
    pub indices: Vec<usize>,
    /// Tight bounding box of the block's points (partitioning cell bounds
    /// for grid methods).
    pub aabb: Aabb,
    /// Tree depth at which the block became a leaf (0 = root/whole cloud).
    pub depth: usize,
    /// Leaf ids (positions in `Partition::blocks`, including this block)
    /// whose union forms this block's *parent search space* for block-wise
    /// neighbor operations (§IV-B: leaves deeper than 1 expand the search to
    /// their immediate parent node).
    pub parent_group: Vec<usize>,
}

impl Block {
    /// Number of points in the block.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if the block holds no points.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Hardware-relevant work performed while partitioning.
///
/// The fractal engine model converts these counts into cycles: traversal
/// passes map onto the pipelined partition/midpoint units, sorts map onto
/// the merge-sort unit (Fig. 9(a)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionCost {
    /// Full linear passes over (a subset of) the data, in elements touched.
    pub traversal_elements: u64,
    /// Number of distinct traversal passes (fractal: one per tree level).
    pub traversal_passes: u64,
    /// Number of hardware sort invocations (KD-tree: one per split).
    pub sort_invocations: u64,
    /// Total elements pushed through the sorter.
    pub sorted_elements: u64,
    /// Scalar comparisons performed.
    pub compare_ops: u64,
}

impl PartitionCost {
    /// Merge-sort comparison count estimate `n·log₂(n)` for a hardware sort
    /// of `n` elements, matching the PointAcc merge-sort structure.
    pub fn sort_compare_cost(n: usize) -> u64 {
        if n <= 1 {
            return 0;
        }
        let nf = n as f64;
        (nf * nf.log2()).ceil() as u64
    }
}

/// The result of partitioning a cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Leaf blocks in memory-layout order (DFT order for tree methods).
    pub blocks: Vec<Block>,
    /// Work performed to build the partition.
    pub cost: PartitionCost,
    /// Maximum leaf depth reached.
    pub max_depth: usize,
    /// Human-readable method name.
    pub method: &'static str,
}

impl Partition {
    /// Total number of points across all blocks.
    pub fn total_points(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// The flattened point order implied by the block layout: the
    /// permutation `perm[new_pos] = old_index` that groups each block's
    /// points contiguously, in block order.
    ///
    /// Applying this with [`PointCloud::apply_permutation`] realizes the
    /// partition's memory layout (DFT layout for the fractal method).
    pub fn layout_permutation(&self) -> Vec<usize> {
        let mut perm = Vec::with_capacity(self.total_points());
        for b in &self.blocks {
            perm.extend_from_slice(&b.indices);
        }
        perm
    }

    /// Byte offset ranges of each block in the laid-out coordinate storage
    /// (`bytes_per_point` = 3 scalars × precision).
    pub fn block_byte_ranges(&self, bytes_per_point: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.blocks.len());
        let mut off = 0usize;
        for b in &self.blocks {
            let len = b.len() * bytes_per_point;
            out.push((off, off + len));
            off += len;
        }
        out
    }

    /// Balance statistics over block sizes.
    pub fn balance(&self) -> BalanceStats {
        BalanceStats::from_sizes(self.blocks.iter().map(Block::len))
    }

    /// Checks that the blocks exactly partition `0..n` (each index once).
    /// Used by tests and debug assertions.
    pub fn is_exact_partition_of(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        for b in &self.blocks {
            for &i in &b.indices {
                if i >= n || seen[i] {
                    return false;
                }
                seen[i] = true;
            }
        }
        seen.iter().all(|&s| s)
    }
}

/// A partitioning strategy.
///
/// Implemented by [`UniformPartitioner`], [`KdTreePartitioner`],
/// [`OctreePartitioner`] here, and by `Fractal` in `fractalcloud-core`.
pub trait Partitioner {
    /// Strategy name for tables and reports.
    fn name(&self) -> &'static str;

    /// Partitions `cloud` into blocks.
    ///
    /// # Errors
    ///
    /// Returns an error if the cloud is empty or parameters are invalid.
    fn partition(&self, cloud: &PointCloud) -> Result<Partition>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point3;

    fn tiny_partition() -> Partition {
        Partition {
            blocks: vec![
                Block {
                    indices: vec![2, 0],
                    aabb: Aabb::new(Point3::ORIGIN, Point3::splat(1.0)),
                    depth: 1,
                    parent_group: vec![0, 1],
                },
                Block {
                    indices: vec![1],
                    aabb: Aabb::new(Point3::splat(1.0), Point3::splat(2.0)),
                    depth: 1,
                    parent_group: vec![0, 1],
                },
            ],
            cost: PartitionCost::default(),
            max_depth: 1,
            method: "test",
        }
    }

    #[test]
    fn layout_permutation_concatenates_blocks() {
        assert_eq!(tiny_partition().layout_permutation(), vec![2, 0, 1]);
    }

    #[test]
    fn exact_partition_check() {
        let p = tiny_partition();
        assert!(p.is_exact_partition_of(3));
        assert!(!p.is_exact_partition_of(4));
        let mut bad = p.clone();
        bad.blocks[1].indices = vec![0];
        assert!(!bad.is_exact_partition_of(3));
    }

    #[test]
    fn block_byte_ranges_are_contiguous() {
        let p = tiny_partition();
        let ranges = p.block_byte_ranges(6);
        assert_eq!(ranges, vec![(0, 12), (12, 18)]);
    }

    #[test]
    fn sort_compare_cost_is_nlogn() {
        assert_eq!(PartitionCost::sort_compare_cost(0), 0);
        assert_eq!(PartitionCost::sort_compare_cost(1), 0);
        assert_eq!(PartitionCost::sort_compare_cost(2), 2);
        assert_eq!(PartitionCost::sort_compare_cost(1024), 10240);
    }
}

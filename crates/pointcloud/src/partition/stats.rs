//! Balance statistics over partition block sizes.

use serde::{Deserialize, Serialize};

/// Summary statistics of block populations.
///
/// The paper's discussion (§VI-D) centers on *imbalance*: both latency and
/// memory load are dominated by the largest block, so
/// [`BalanceStats::imbalance`] (max / mean) is the figure of merit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalanceStats {
    /// Number of blocks.
    pub blocks: usize,
    /// Smallest block population.
    pub min: usize,
    /// Largest block population.
    pub max: usize,
    /// Mean block population.
    pub mean: f64,
    /// Population standard deviation of block sizes.
    pub std_dev: f64,
}

impl BalanceStats {
    /// Computes statistics from an iterator of block sizes.
    ///
    /// Returns a zeroed record for an empty iterator.
    pub fn from_sizes<I: IntoIterator<Item = usize>>(sizes: I) -> BalanceStats {
        let sizes: Vec<usize> = sizes.into_iter().collect();
        if sizes.is_empty() {
            return BalanceStats { blocks: 0, min: 0, max: 0, mean: 0.0, std_dev: 0.0 };
        }
        let min = *sizes.iter().min().expect("non-empty");
        let max = *sizes.iter().max().expect("non-empty");
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let var =
            sizes.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / sizes.len() as f64;
        BalanceStats { blocks: sizes.len(), min, max, mean, std_dev: var.sqrt() }
    }

    /// Imbalance factor `max / mean` (1.0 = strictly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max as f64 / self.mean
        }
    }

    /// Coefficient of variation `σ / mean`.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_sizes_have_unit_imbalance() {
        let s = BalanceStats::from_sizes([20, 20, 20, 20]);
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.blocks, 4);
    }

    #[test]
    fn skewed_sizes_show_imbalance() {
        // Fig. 3(b)'s uniform partition example: 27/28/13/12.
        let s = BalanceStats::from_sizes([27, 28, 13, 12]);
        assert_eq!(s.min, 12);
        assert_eq!(s.max, 28);
        assert!((s.mean - 20.0).abs() < 1e-9);
        assert!((s.imbalance() - 1.4).abs() < 1e-9);
        assert!(s.cv() > 0.3);
    }

    #[test]
    fn fractal_example_is_moderately_balanced() {
        // Fig. 3(d): 19/24/17/20 — moderate balance (imbalance exactly 1.2).
        let s = BalanceStats::from_sizes([19, 24, 17, 20]);
        assert!(s.imbalance() <= 1.2 + 1e-9);
    }

    #[test]
    fn empty_input_is_zeroed() {
        let s = BalanceStats::from_sizes(std::iter::empty());
        assert_eq!(s.blocks, 0);
        assert_eq!(s.imbalance(), 1.0);
    }
}

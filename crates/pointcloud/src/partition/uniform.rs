//! Space-uniform grid partitioning (PNNPU-style).

use crate::aabb::Aabb;
use crate::cloud::PointCloud;
use crate::error::{Error, Result};
use crate::partition::{Block, Partition, PartitionCost, Partitioner};
use crate::point::{Axis, Point3};

/// Space-uniform partitioning: the bounding volume is divided into an even
/// grid by coordinate, ignoring density (Fig. 3(b), PNNPU \[32\]).
///
/// A single global traversal assigns points to cells, which makes this the
/// cheapest strategy (`O(n)`, no sorting), but real clouds are highly
/// non-uniform so block sizes are unbounded — the source of the accuracy
/// loss and load imbalance the paper measures.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::partition::{Partitioner, UniformPartitioner};
/// use fractalcloud_pointcloud::generate::uniform_cube;
///
/// let cloud = uniform_cube(1000, 1);
/// let part = UniformPartitioner::with_target_block_size(64).partition(&cloud)?;
/// assert!(part.is_exact_partition_of(1000));
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformPartitioner {
    mode: GridMode,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GridMode {
    Explicit(usize, usize, usize),
    /// Cubic grid sized at partition time for a target mean block size.
    Auto(usize),
}

impl UniformPartitioner {
    /// Creates a partitioner with an explicit grid resolution.
    ///
    /// # Panics
    ///
    /// Panics if any grid dimension is zero.
    pub fn new(gx: usize, gy: usize, gz: usize) -> UniformPartitioner {
        assert!(gx > 0 && gy > 0 && gz > 0, "grid dimensions must be positive");
        UniformPartitioner { mode: GridMode::Explicit(gx, gy, gz) }
    }

    /// Chooses a cubic grid so the *average* cell holds about
    /// `target_block_size` points (what a density-oblivious design can aim
    /// for). The actual maximum cell population is unbounded.
    pub fn with_target_block_size(target_block_size: usize) -> UniformPartitioner {
        UniformPartitioner { mode: GridMode::Auto(target_block_size.max(1)) }
    }

    fn resolve_grid(&self, n: usize) -> (usize, usize, usize) {
        match self.mode {
            GridMode::Explicit(gx, gy, gz) => (gx, gy, gz),
            GridMode::Auto(target) => {
                let cells = (n as f64 / target as f64).max(1.0);
                let side = cells.powf(1.0 / 3.0).ceil().max(1.0) as usize;
                (side, side, side)
            }
        }
    }
}

impl Partitioner for UniformPartitioner {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn partition(&self, cloud: &PointCloud) -> Result<Partition> {
        if cloud.is_empty() {
            return Err(Error::EmptyCloud);
        }
        let bounds = cloud.bounds().expect("non-empty cloud has bounds");
        let (gx, gy, gz) = self.resolve_grid(cloud.len());
        // One global traversal: read all three coordinates of every point.
        let cost = PartitionCost {
            traversal_passes: 1,
            traversal_elements: cloud.len() as u64,
            compare_ops: (cloud.len() * 3) as u64, // cell index clamps
            ..PartitionCost::default()
        };

        let cell_of = |p: Point3| -> usize {
            let f = |axis: Axis, g: usize| -> usize {
                let lo = bounds.min().coord(axis);
                let ext = bounds.extent(axis).max(1e-12);
                (((p.coord(axis) - lo) / ext) * g as f32).min(g as f32 - 1.0).max(0.0) as usize
            };
            (f(Axis::X, gx) * gy + f(Axis::Y, gy)) * gz + f(Axis::Z, gz)
        };

        let mut cells: Vec<Vec<usize>> = vec![Vec::new(); gx * gy * gz];
        for i in 0..cloud.len() {
            cells[cell_of(cloud.point(i))].push(i);
        }

        let mut blocks = Vec::new();
        for indices in cells.into_iter().filter(|c| !c.is_empty()) {
            let aabb = Aabb::from_points(indices.iter().map(|&i| cloud.point(i)))
                .expect("non-empty block");
            blocks.push(Block { indices, aabb, depth: 1, parent_group: Vec::new() });
        }
        // PNNPU processes blocks independently; a block's search space is
        // itself (self-only parent group).
        for (i, block) in blocks.iter_mut().enumerate() {
            block.parent_group = vec![i];
        }

        Ok(Partition { blocks, cost, max_depth: 1, method: self.name() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{scene_cloud, uniform_cube, SceneConfig};

    #[test]
    fn uniform_partition_is_exact() {
        let cloud = uniform_cube(512, 3);
        let p = UniformPartitioner::new(4, 4, 4).partition(&cloud).unwrap();
        assert!(p.is_exact_partition_of(512));
        assert_eq!(p.method, "uniform");
    }

    #[test]
    fn uniform_cost_is_single_traversal_no_sorts() {
        let cloud = uniform_cube(1000, 1);
        let p = UniformPartitioner::new(4, 4, 4).partition(&cloud).unwrap();
        assert_eq!(p.cost.traversal_passes, 1);
        assert_eq!(p.cost.traversal_elements, 1000);
        assert_eq!(p.cost.sort_invocations, 0);
    }

    #[test]
    fn uniform_on_uniform_data_is_balanced() {
        let cloud = uniform_cube(8000, 5);
        let p = UniformPartitioner::new(2, 2, 2).partition(&cloud).unwrap();
        let b = p.balance();
        // Uniform data in an even grid: imbalance close to 1.
        assert!(b.imbalance() < 1.3, "imbalance {}", b.imbalance());
    }

    #[test]
    fn uniform_on_scene_data_is_imbalanced() {
        // The paper's core criticism: real scenes produce wildly uneven
        // cells under space-uniform partitioning.
        let cloud = scene_cloud(&SceneConfig::default(), 8000, 7);
        let p = UniformPartitioner::new(4, 4, 4).partition(&cloud).unwrap();
        let b = p.balance();
        assert!(b.imbalance() > 2.0, "expected strong imbalance, got {}", b.imbalance());
    }

    #[test]
    fn auto_grid_targets_average_block_size() {
        let cloud = uniform_cube(4096, 2);
        let p = UniformPartitioner::with_target_block_size(64).partition(&cloud).unwrap();
        let mean = p.total_points() as f64 / p.blocks.len() as f64;
        assert!(mean <= 64.0 * 1.5, "mean block {mean} too large");
    }

    #[test]
    fn blocks_search_space_is_self() {
        let cloud = uniform_cube(100, 9);
        let p = UniformPartitioner::new(2, 2, 2).partition(&cloud).unwrap();
        for (i, b) in p.blocks.iter().enumerate() {
            assert_eq!(b.parent_group, vec![i]);
        }
    }

    #[test]
    fn empty_cloud_is_an_error() {
        assert!(UniformPartitioner::new(2, 2, 2).partition(&PointCloud::new()).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_grid_panics() {
        let _ = UniformPartitioner::new(0, 1, 1);
    }
}

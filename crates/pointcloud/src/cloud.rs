//! The [`PointCloud`] container: structure-of-arrays coordinates plus an
//! optional dense feature matrix.

use crate::aabb::Aabb;
use crate::error::{Error, Result};
use crate::point::Point3;
use serde::{Deserialize, Serialize};

/// A point cloud: `n` spatial coordinates and, optionally, `n × c` features.
///
/// Storage is structure-of-arrays (separate `x`, `y`, `z` vectors) because
/// both the fractal engine and the RSPU distance units stream a single
/// dimension at a time (Fig. 9(c): iteration `i` partitions on one axis while
/// midpoints are computed on the next).
///
/// Features are stored row-major (`point × channel`), matching the layout the
/// gather unit reads from the feature space of the global buffer.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::{Point3, PointCloud};
///
/// let cloud = PointCloud::from_points(vec![
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(1.0, 0.0, 0.0),
/// ]);
/// assert_eq!(cloud.len(), 2);
/// assert_eq!(cloud.point(1).x, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PointCloud {
    xs: Vec<f32>,
    ys: Vec<f32>,
    zs: Vec<f32>,
    /// Row-major `n × channels` feature matrix; empty when `channels == 0`.
    features: Vec<f32>,
    channels: usize,
}

impl PointCloud {
    /// Creates an empty cloud with no feature channels.
    pub fn new() -> PointCloud {
        PointCloud::default()
    }

    /// Creates an empty cloud that will carry `channels` feature channels.
    pub fn with_channels(channels: usize) -> PointCloud {
        PointCloud { channels, ..PointCloud::default() }
    }

    /// Builds a cloud from owned points, with no features.
    pub fn from_points(points: Vec<Point3>) -> PointCloud {
        let mut c = PointCloud::new();
        c.xs.reserve(points.len());
        c.ys.reserve(points.len());
        c.zs.reserve(points.len());
        for p in points {
            c.xs.push(p.x);
            c.ys.push(p.y);
            c.zs.push(p.z);
        }
        c
    }

    /// Builds a cloud from points and a row-major feature matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `features.len()` is not
    /// `points.len() * channels`.
    pub fn from_points_features(
        points: Vec<Point3>,
        features: Vec<f32>,
        channels: usize,
    ) -> Result<PointCloud> {
        if points.len() * channels != features.len() {
            return Err(Error::ShapeMismatch {
                expected: points.len() * channels,
                actual: features.len(),
            });
        }
        let mut c = PointCloud::from_points(points);
        c.features = features;
        c.channels = channels;
        Ok(c)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if the cloud has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Number of feature channels per point (0 when coordinates only).
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Appends a point without features.
    ///
    /// # Panics
    ///
    /// Panics if the cloud carries feature channels; use
    /// [`PointCloud::push_with_features`] instead.
    pub fn push(&mut self, p: Point3) {
        assert_eq!(self.channels, 0, "cloud carries features; use push_with_features");
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.zs.push(p.z);
    }

    /// Appends a point with its feature row.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `feat.len() != self.channels()`.
    pub fn push_with_features(&mut self, p: Point3, feat: &[f32]) -> Result<()> {
        if feat.len() != self.channels {
            return Err(Error::ShapeMismatch { expected: self.channels, actual: feat.len() });
        }
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.zs.push(p.z);
        self.features.extend_from_slice(feat);
        Ok(())
    }

    /// Returns point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> Point3 {
        Point3::new(self.xs[i], self.ys[i], self.zs[i])
    }

    /// Returns point `i`, or `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<Point3> {
        if i < self.len() {
            Some(self.point(i))
        } else {
            None
        }
    }

    /// The feature row of point `i` (empty slice when `channels == 0`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn feature(&self, i: usize) -> &[f32] {
        let c = self.channels;
        &self.features[i * c..(i + 1) * c]
    }

    /// Mutable feature row of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn feature_mut(&mut self, i: usize) -> &mut [f32] {
        let c = self.channels;
        &mut self.features[i * c..(i + 1) * c]
    }

    /// Raw x coordinates (one entry per point).
    #[inline]
    pub fn xs(&self) -> &[f32] {
        &self.xs
    }

    /// Raw y coordinates.
    #[inline]
    pub fn ys(&self) -> &[f32] {
        &self.ys
    }

    /// Raw z coordinates.
    #[inline]
    pub fn zs(&self) -> &[f32] {
        &self.zs
    }

    /// Coordinate slice for `axis`.
    pub fn axis_slice(&self, axis: crate::point::Axis) -> &[f32] {
        match axis {
            crate::point::Axis::X => &self.xs,
            crate::point::Axis::Y => &self.ys,
            crate::point::Axis::Z => &self.zs,
        }
    }

    /// The full row-major feature matrix.
    #[inline]
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// Iterates over the points.
    pub fn iter(&self) -> Iter<'_> {
        Iter { cloud: self, i: 0 }
    }

    /// The bounding box of the cloud, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb> {
        Aabb::from_points(self.iter())
    }

    /// Builds a new cloud containing the points (and features) at `indices`,
    /// in order. Indices may repeat.
    ///
    /// This is the software analogue of the gather unit: it resolves an index
    /// list against coordinate and feature storage.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] on any invalid index.
    pub fn select(&self, indices: &[usize]) -> Result<PointCloud> {
        let mut out = PointCloud::with_channels(self.channels);
        out.xs.reserve(indices.len());
        out.ys.reserve(indices.len());
        out.zs.reserve(indices.len());
        out.features.reserve(indices.len() * self.channels);
        for &i in indices {
            if i >= self.len() {
                return Err(Error::IndexOutOfBounds { index: i, len: self.len() });
            }
            out.xs.push(self.xs[i]);
            out.ys.push(self.ys[i]);
            out.zs.push(self.zs[i]);
            out.features.extend_from_slice(self.feature(i));
        }
        Ok(out)
    }

    /// Reorders the cloud in place so that new position `j` holds old point
    /// `perm[j]`. `perm` must be a permutation of `0..len`.
    ///
    /// The fractal DFT memory layout is applied with exactly this operation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPermutation`] if `perm` is not a permutation.
    pub fn apply_permutation(&mut self, perm: &[usize]) -> Result<()> {
        if perm.len() != self.len() {
            return Err(Error::InvalidPermutation);
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return Err(Error::InvalidPermutation);
            }
            seen[p] = true;
        }
        let old = self.clone();
        for (j, &i) in perm.iter().enumerate() {
            self.xs[j] = old.xs[i];
            self.ys[j] = old.ys[i];
            self.zs[j] = old.zs[i];
            if self.channels > 0 {
                let c = self.channels;
                self.features[j * c..(j + 1) * c].copy_from_slice(old.feature(i));
            }
        }
        Ok(())
    }

    /// Replaces all features with a new `n × channels` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the matrix size is wrong.
    pub fn set_features(&mut self, features: Vec<f32>, channels: usize) -> Result<()> {
        if features.len() != self.len() * channels {
            return Err(Error::ShapeMismatch {
                expected: self.len() * channels,
                actual: features.len(),
            });
        }
        self.features = features;
        self.channels = channels;
        Ok(())
    }

    /// Bytes needed to store the coordinates at `bytes_per_scalar` precision.
    pub fn coord_bytes(&self, bytes_per_scalar: usize) -> usize {
        self.len() * 3 * bytes_per_scalar
    }

    /// Bytes needed to store the features at `bytes_per_scalar` precision.
    pub fn feature_bytes(&self, bytes_per_scalar: usize) -> usize {
        self.len() * self.channels * bytes_per_scalar
    }
}

impl FromIterator<Point3> for PointCloud {
    fn from_iter<I: IntoIterator<Item = Point3>>(iter: I) -> PointCloud {
        PointCloud::from_points(iter.into_iter().collect())
    }
}

impl Extend<Point3> for PointCloud {
    fn extend<I: IntoIterator<Item = Point3>>(&mut self, iter: I) {
        assert_eq!(self.channels, 0, "cannot extend a featured cloud with bare points");
        for p in iter {
            self.push(p);
        }
    }
}

/// Iterator over the points of a [`PointCloud`], created by
/// [`PointCloud::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    cloud: &'a PointCloud,
    i: usize,
}

impl Iterator for Iter<'_> {
    type Item = Point3;

    fn next(&mut self) -> Option<Point3> {
        let p = self.cloud.get(self.i)?;
        self.i += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.cloud.len() - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a PointCloud {
    type Item = Point3;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointCloud {
        PointCloud::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 2.0, 3.0),
            Point3::new(-1.0, 0.5, 2.0),
        ])
    }

    #[test]
    fn from_points_preserves_order_and_len() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert_eq!(c.point(1), Point3::new(1.0, 2.0, 3.0));
        assert!(!c.is_empty());
    }

    #[test]
    fn soa_slices_expose_per_axis_streams() {
        let c = sample();
        assert_eq!(c.xs(), &[0.0, 1.0, -1.0]);
        assert_eq!(c.ys(), &[0.0, 2.0, 0.5]);
        assert_eq!(c.zs(), &[0.0, 3.0, 2.0]);
    }

    #[test]
    fn features_shape_is_validated() {
        let pts = vec![Point3::ORIGIN, Point3::splat(1.0)];
        let err = PointCloud::from_points_features(pts.clone(), vec![1.0; 5], 2);
        assert!(err.is_err());
        let ok = PointCloud::from_points_features(pts, vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(ok.feature(1), &[3.0, 4.0]);
    }

    #[test]
    fn select_gathers_points_and_features() {
        let c = PointCloud::from_points_features(
            vec![Point3::ORIGIN, Point3::splat(1.0), Point3::splat(2.0)],
            vec![10.0, 11.0, 12.0],
            1,
        )
        .unwrap();
        let s = c.select(&[2, 0, 2]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.point(0), Point3::splat(2.0));
        assert_eq!(s.feature(0), &[12.0]);
        assert_eq!(s.feature(1), &[10.0]);
        assert_eq!(s.feature(2), &[12.0]);
    }

    #[test]
    fn select_rejects_out_of_bounds() {
        let c = sample();
        assert!(matches!(c.select(&[0, 9]), Err(Error::IndexOutOfBounds { index: 9, len: 3 })));
    }

    #[test]
    fn apply_permutation_reorders() {
        let mut c = sample();
        c.apply_permutation(&[2, 0, 1]).unwrap();
        assert_eq!(c.point(0), Point3::new(-1.0, 0.5, 2.0));
        assert_eq!(c.point(1), Point3::new(0.0, 0.0, 0.0));
        assert_eq!(c.point(2), Point3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn apply_permutation_moves_features_with_points() {
        let mut c = PointCloud::from_points_features(
            vec![Point3::ORIGIN, Point3::splat(1.0)],
            vec![1.0, 2.0],
            1,
        )
        .unwrap();
        c.apply_permutation(&[1, 0]).unwrap();
        assert_eq!(c.feature(0), &[2.0]);
        assert_eq!(c.point(0), Point3::splat(1.0));
    }

    #[test]
    fn apply_permutation_rejects_non_permutations() {
        let mut c = sample();
        assert!(c.apply_permutation(&[0, 0, 1]).is_err());
        assert!(c.apply_permutation(&[0, 1]).is_err());
        assert!(c.apply_permutation(&[0, 1, 5]).is_err());
    }

    #[test]
    fn bounds_covers_all_points() {
        let c = sample();
        let b = c.bounds().unwrap();
        for p in &c {
            assert!(b.contains(p));
        }
        assert!(PointCloud::new().bounds().is_none());
    }

    #[test]
    fn iterator_yields_every_point_in_order() {
        let c = sample();
        let pts: Vec<Point3> = c.iter().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2], Point3::new(-1.0, 0.5, 2.0));
        assert_eq!(c.iter().len(), 3);
    }

    #[test]
    fn collect_from_iterator() {
        let c: PointCloud = (0..4).map(|i| Point3::splat(i as f32)).collect();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn byte_sizing_matches_fp16_layout() {
        let c = sample();
        assert_eq!(c.coord_bytes(2), 3 * 3 * 2);
        let mut c = c;
        c.set_features(vec![0.0; 3 * 8], 8).unwrap();
        assert_eq!(c.feature_bytes(2), 3 * 8 * 2);
    }

    #[test]
    fn push_with_features_validates_row_len() {
        let mut c = PointCloud::with_channels(2);
        assert!(c.push_with_features(Point3::ORIGIN, &[1.0]).is_err());
        c.push_with_features(Point3::ORIGIN, &[1.0, 2.0]).unwrap();
        assert_eq!(c.len(), 1);
    }
}

//! Point-cloud substrate for the FractalCloud reproduction.
//!
//! This crate provides everything the FractalCloud accelerator study needs
//! *below* the paper's contribution:
//!
//! * [`Point3`], [`Aabb`], [`PointCloud`] — geometry and storage
//!   (structure-of-arrays, optional dense features);
//! * [`generate`] — deterministic synthetic datasets with ModelNet40-,
//!   ShapeNet- and S3DIS-like statistics;
//! * [`ops`] — exact global point operations (FPS, ball query, KNN, gather,
//!   interpolation) with hardware-relevant work counters, built on the
//!   runtime-dispatched kernels of [`kernels`] (the original scalar
//!   formulations are retained in [`ops::reference`] as equivalence
//!   baselines);
//! * [`kernels`] — runtime-dispatched distance/argmax/top-k backends
//!   (scalar, chunked SoA, explicit AVX2 behind feature detection; all
//!   bit-identical, `FRACTALCLOUD_KERNEL` overrides the selection) with
//!   batched-query KNN/ball-query selection, operating directly on the SoA
//!   coordinate slices;
//! * [`partition`] — baseline partitioners (uniform grid, KD-tree, octree)
//!   behind a common [`partition::Partitioner`] trait;
//! * [`metrics`] — accuracy-proxy metrics comparing approximate block-wise
//!   operations against the exact references.
//!
//! The paper's own contribution — the Fractal partitioner and block-parallel
//! point operations — lives in the `fractalcloud-core` crate, which builds
//! on these types.
//!
//! # Quick example
//!
//! ```
//! use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
//! use fractalcloud_pointcloud::ops::farthest_point_sample;
//!
//! let cloud = scene_cloud(&SceneConfig::default(), 1024, 42);
//! let sampled = farthest_point_sample(&cloud, 256, 0)?;
//! assert_eq!(sampled.indices.len(), 256);
//! # Ok::<(), fractalcloud_pointcloud::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod aabb;
mod cloud;
pub mod count_alloc;
mod error;
pub mod generate;
pub mod kernels;
pub mod metrics;
pub mod ops;
pub mod partition;
mod point;

pub use aabb::Aabb;
pub use cloud::{Iter, PointCloud};
pub use error::{Error, Result};
pub use point::{Axis, InvalidAxisError, Point3};

//! Axis-aligned bounding boxes.

use crate::point::{Axis, Point3};
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box.
///
/// The fractal engine computes per-axis extrema in a single traversal and
/// derives the split plane as `(max + min) / 2` ("averaged midpoint",
/// Fig. 3(d)); [`Aabb::midpoint`] implements exactly that computation.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::{Aabb, Axis, Point3};
///
/// let b = Aabb::from_points([
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(2.0, 4.0, 8.0),
/// ]).unwrap();
/// assert_eq!(b.midpoint(Axis::Y), 2.0);
/// assert_eq!(b.longest_axis(), Axis::Z);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    min: Point3,
    max: Point3,
}

impl Aabb {
    /// Creates a bounding box from explicit corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `min` exceeds `max` on any axis.
    pub fn new(min: Point3, max: Point3) -> Aabb {
        debug_assert!(min.x <= max.x && min.y <= max.y && min.z <= max.z, "inverted aabb");
        Aabb { min, max }
    }

    /// Creates the smallest box containing every point of `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Point3>>(points: I) -> Option<Aabb> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Aabb { min: first, max: first };
        for p in it {
            b.expand(p);
        }
        Some(b)
    }

    /// The minimum corner.
    #[inline]
    pub fn min(&self) -> Point3 {
        self.min
    }

    /// The maximum corner.
    #[inline]
    pub fn max(&self) -> Point3 {
        self.max
    }

    /// Grows the box (if needed) to contain `p`.
    #[inline]
    pub fn expand(&mut self, p: Point3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Returns the union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// True if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True if the two boxes overlap (closed intervals).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Extent (max − min) along `axis`.
    #[inline]
    pub fn extent(&self, axis: Axis) -> f32 {
        self.max.coord(axis) - self.min.coord(axis)
    }

    /// The extents along all three axes.
    pub fn extents(&self) -> [f32; 3] {
        [self.extent(Axis::X), self.extent(Axis::Y), self.extent(Axis::Z)]
    }

    /// Midpoint `(min + max) / 2` along `axis` — the fractal split plane.
    ///
    /// The hardware computes this with one addition and a right shift
    /// (Fig. 9(a), "Mid. Comp."); in floating point that is an add and a
    /// multiply by 0.5, which is numerically identical for finite inputs.
    #[inline]
    pub fn midpoint(&self, axis: Axis) -> f32 {
        (self.min.coord(axis) + self.max.coord(axis)) * 0.5
    }

    /// The center of the box.
    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    /// The axis with the largest extent (ties broken x → y → z).
    pub fn longest_axis(&self) -> Axis {
        let e = self.extents();
        if e[0] >= e[1] && e[0] >= e[2] {
            Axis::X
        } else if e[1] >= e[2] {
            Axis::Y
        } else {
            Axis::Z
        }
    }

    /// Squared distance from `p` to the closest point of the box (0 inside).
    pub fn distance_sq_to(&self, p: Point3) -> f32 {
        let mut d = 0.0f32;
        for axis in Axis::ALL {
            let v = p.coord(axis);
            let lo = self.min.coord(axis);
            let hi = self.max.coord(axis);
            let delta = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            d += delta * delta;
        }
        d
    }

    /// Surface area of the box.
    pub fn surface_area(&self) -> f32 {
        let [ex, ey, ez] = self.extents();
        2.0 * (ex * ey + ey * ez + ez * ex)
    }

    /// Volume of the box.
    pub fn volume(&self) -> f32 {
        let [ex, ey, ez] = self.extents();
        ex * ey * ez
    }

    /// Splits the box in two at `plane` along `axis`.
    ///
    /// Points with coordinate `<= plane` belong to the left half. The split
    /// plane is clamped into the box so both halves are valid.
    pub fn split(&self, axis: Axis, plane: f32) -> (Aabb, Aabb) {
        let plane = plane.clamp(self.min.coord(axis), self.max.coord(axis));
        let mut left_max = self.max;
        left_max.set_coord(axis, plane);
        let mut right_min = self.min;
        right_min.set_coord(axis, plane);
        (Aabb { min: self.min, max: left_max }, Aabb { min: right_min, max: self.max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(1.0))
    }

    #[test]
    fn from_points_bounds_all_inputs() {
        let pts =
            [Point3::new(1.0, -2.0, 0.5), Point3::new(-1.0, 3.0, 0.0), Point3::new(0.0, 0.0, 4.0)];
        let b = Aabb::from_points(pts).unwrap();
        assert_eq!(b.min(), Point3::new(-1.0, -2.0, 0.0));
        assert_eq!(b.max(), Point3::new(1.0, 3.0, 4.0));
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn midpoint_is_min_max_average() {
        // The fractal engine's add + shift midpoint.
        let b = Aabb::new(Point3::new(0.2, -1.0, 3.0), Point3::new(0.8, 1.0, 7.0));
        assert!((b.midpoint(Axis::X) - 0.5).abs() < 1e-6);
        assert_eq!(b.midpoint(Axis::Y), 0.0);
        assert_eq!(b.midpoint(Axis::Z), 5.0);
    }

    #[test]
    fn longest_axis_breaks_ties_in_xyz_order() {
        assert_eq!(unit_box().longest_axis(), Axis::X);
        let b = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 2.0, 2.0));
        assert_eq!(b.longest_axis(), Axis::Y);
        let b = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 2.0, 3.0));
        assert_eq!(b.longest_axis(), Axis::Z);
    }

    #[test]
    fn contains_boundary_points() {
        let b = unit_box();
        assert!(b.contains(Point3::ORIGIN));
        assert!(b.contains(Point3::splat(1.0)));
        assert!(!b.contains(Point3::new(1.0001, 0.5, 0.5)));
    }

    #[test]
    fn split_partitions_volume() {
        let b = unit_box();
        let (l, r) = b.split(Axis::X, 0.25);
        assert_eq!(l.max().x, 0.25);
        assert_eq!(r.min().x, 0.25);
        assert!((l.volume() + r.volume() - b.volume()).abs() < 1e-6);
    }

    #[test]
    fn split_plane_is_clamped() {
        let b = unit_box();
        let (l, r) = b.split(Axis::Y, 7.0);
        assert_eq!(l.max().y, 1.0);
        assert_eq!(r.min().y, 1.0);
    }

    #[test]
    fn distance_sq_inside_is_zero() {
        let b = unit_box();
        assert_eq!(b.distance_sq_to(Point3::splat(0.5)), 0.0);
        assert_eq!(b.distance_sq_to(Point3::new(2.0, 0.5, 0.5)), 1.0);
        assert_eq!(b.distance_sq_to(Point3::new(2.0, 2.0, 0.5)), 2.0);
    }

    #[test]
    fn union_contains_both() {
        let a = unit_box();
        let b = Aabb::new(Point3::splat(2.0), Point3::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains(Point3::ORIGIN));
        assert!(u.contains(Point3::splat(3.0)));
    }

    #[test]
    fn intersects_is_symmetric_and_touching_counts() {
        let a = unit_box();
        let touching = Aabb::new(Point3::new(1.0, 0.0, 0.0), Point3::new(2.0, 1.0, 1.0));
        let apart = Aabb::new(Point3::splat(5.0), Point3::splat(6.0));
        assert!(a.intersects(&touching));
        assert!(touching.intersects(&a));
        assert!(!a.intersects(&apart));
    }

    #[test]
    fn surface_area_and_volume() {
        let b = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 2.0, 3.0));
        assert_eq!(b.volume(), 6.0);
        assert_eq!(b.surface_area(), 22.0);
    }
}

//! Chunked, auto-vectorizable SoA distance kernels — the software analogue
//! of the RSPU distance units.
//!
//! # Why this module exists
//!
//! The paper's thesis is that point operations (FPS, KNN, ball query,
//! aggregation) are *memory-bound* and benefit from streaming one axis at a
//! time over blocked data. The scalar reference operations in
//! [`ops::reference`](crate::ops::reference) negate that on real CPUs: they
//! materialize a [`Point3`](crate::Point3) per candidate and bump
//! [`OpCounters`](crate::ops::OpCounters) fields inside every inner loop,
//! which defeats auto-vectorization and triples the instruction count of
//! the hot path. The kernels here restore the intended dataflow in
//! software: they operate directly on the structure-of-arrays `xs`/`ys`/`zs`
//! slices of a [`PointCloud`](crate::PointCloud), and leave *all* counter
//! accounting to the caller (accumulated per scan, analytically — the
//! counters model hardware work and are a pure function of the scan sizes).
//!
//! # The SoA chunking contract
//!
//! Every kernel follows the same structure:
//!
//! 1. the candidate set is presented as three equal-length coordinate
//!    slices (`xs`, `ys`, `zs`) — never as an array of structs;
//! 2. work proceeds in chunks of [`CHUNK`] lanes; within a chunk, distance
//!    evaluation is a straight-line loop over the slices with **no
//!    branches, no counter updates, and no per-point struct construction**,
//!    so the compiler can vectorize it;
//! 3. branchy selection logic (argmax, top-k insertion, radius tests)
//!    consumes the chunk's distance buffer *after* it is computed, keeping
//!    the rare-path branches out of the arithmetic loop.
//!
//! Callers that operate on an indexed subset (block-local operations) first
//! gather the subset into local SoA buffers with [`gather_coords`] — the
//! software analogue of loading a block into SRAM once and reusing it for
//! every query (§V-C intra-block reuse).
//!
//! # Exact equivalence
//!
//! Each kernel is bit-for-bit equivalent to its scalar reference: the same
//! `f32` operations happen in the same order per candidate, ties resolve
//! identically (first maximum wins, insertion order preserved), and NaN
//! coordinates degrade the same way (`f32::min`/comparison semantics
//! match the reference's `if d < dist` update). Property tests in
//! `tests/proptests.rs` assert equality of indices, distances, *and*
//! counters against the retained reference implementations.

/// Number of lanes processed per chunk.
///
/// 64 `f32` lanes = 256 bytes per coordinate stream — a full cache line per
/// axis on common 64-byte-line machines, and wide enough for 4–16-lane SIMD
/// units to unroll cleanly.
pub const CHUNK: usize = 64;

/// Writes the squared Euclidean distance from `q` to every point of the SoA
/// slices into `out`.
///
/// This is the vectorizable core shared by KNN, ball query and
/// interpolation: one pass, no branches, no struct materialization.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn distances_sq(xs: &[f32], ys: &[f32], zs: &[f32], q: [f32; 3], out: &mut [f32]) {
    let n = xs.len();
    assert_eq!(ys.len(), n, "ys length mismatch");
    assert_eq!(zs.len(), n, "zs length mismatch");
    assert_eq!(out.len(), n, "out length mismatch");
    let mut base = 0;
    while base < n {
        let len = CHUNK.min(n - base);
        let (xs, ys, zs) = (&xs[base..base + len], &ys[base..base + len], &zs[base..base + len]);
        let out = &mut out[base..base + len];
        for j in 0..len {
            let dx = xs[j] - q[0];
            let dy = ys[j] - q[1];
            let dz = zs[j] - q[2];
            out[j] = dx * dx + dy * dy + dz * dz;
        }
        base += len;
    }
}

/// One FPS iteration, fused: relaxes the running nearest-sample distances
/// `dist` against the newest sample `q` and returns the index of the new
/// farthest point (first maximum wins on ties).
///
/// Per chunk this computes squared distances branch-free, lowers `dist`
/// with `f32::min` (equivalent to the reference's `if d < dist[i]` update,
/// including for NaN distances, which leave `dist` unchanged), then scans
/// the chunk for the running argmax. Entries already selected can be pinned
/// to `f32::NEG_INFINITY` by the caller; the strict `>` comparison then
/// keeps them from ever winning again.
///
/// # Panics
///
/// Panics if the slice lengths differ or `dist.len() != xs.len()`.
pub fn fps_relax_argmax(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    dist: &mut [f32],
) -> usize {
    let n = xs.len();
    assert_eq!(ys.len(), n, "ys length mismatch");
    assert_eq!(zs.len(), n, "zs length mismatch");
    assert_eq!(dist.len(), n, "dist length mismatch");

    // Fused chunked pass (branch-free, vectorizable): distances, the
    // min-relaxation, and per-chunk maxima in one stream over the data.
    // The select idioms `if nd < cur { nd } else { cur }` / `if v > m { v }
    // else { m }` compile to vector min/max; the min keeps the old value
    // for NaN distances, matching the reference's `if d < dist[i]` update.
    // LANES independent running maxima break the floating-point dependency
    // chain a single running max would create, and the fixed-size lane
    // arrays (`chunks_exact` + `try_into`) eliminate bounds checks from
    // the inner loop.
    const LANES: usize = 8;
    let mut cmax = f32::NEG_INFINITY;
    let mut cmax_chunk_base = 0usize;
    let mut base = 0usize;
    while base < n {
        let end = (base + CHUNK).min(n);
        let (xb, yb, zb) = (&xs[base..end], &ys[base..end], &zs[base..end]);
        let db = &mut dist[base..end];
        let mut acc = [f32::NEG_INFINITY; LANES];
        let mut d_it = db.chunks_exact_mut(LANES);
        let mut x_it = xb.chunks_exact(LANES);
        let mut y_it = yb.chunks_exact(LANES);
        let mut z_it = zb.chunks_exact(LANES);
        for d8 in d_it.by_ref() {
            let d8: &mut [f32; LANES] = d8.try_into().expect("exact chunk");
            let x8: &[f32; LANES] = x_it.next().expect("same length").try_into().unwrap();
            let y8: &[f32; LANES] = y_it.next().expect("same length").try_into().unwrap();
            let z8: &[f32; LANES] = z_it.next().expect("same length").try_into().unwrap();
            for l in 0..LANES {
                let dx = x8[l] - q[0];
                let dy = y8[l] - q[1];
                let dz = z8[l] - q[2];
                let nd = dx * dx + dy * dy + dz * dz;
                let cur = d8[l];
                let v = if nd < cur { nd } else { cur };
                d8[l] = v;
                acc[l] = if v > acc[l] { v } else { acc[l] };
            }
        }
        let mut cm = f32::NEG_INFINITY;
        let tail = d_it.into_remainder();
        let (xt, yt, zt) = (x_it.remainder(), y_it.remainder(), z_it.remainder());
        for (l, cur) in tail.iter_mut().enumerate() {
            let dx = xt[l] - q[0];
            let dy = yt[l] - q[1];
            let dz = zt[l] - q[2];
            let nd = dx * dx + dy * dy + dz * dz;
            let v = if nd < *cur { nd } else { *cur };
            *cur = v;
            cm = if v > cm { v } else { cm };
        }
        for &m in &acc {
            cm = if m > cm { m } else { cm };
        }
        // Strict `>`: only a chunk that *improves* the global maximum is
        // recorded, so `cmax_chunk_base` ends on the first chunk attaining
        // it (later tying chunks don't displace it).
        if cm > cmax {
            cmax = cm;
            cmax_chunk_base = base;
        }
        base = end;
    }

    // Selection: the recorded chunk contains the first occurrence of the
    // global maximum (distances are never -0.0, so value equality is
    // exact); a short in-chunk scan finds it — the same winner as the
    // reference's strict `>` running argmax (first maximum wins on ties).
    let mut best = cmax_chunk_base;
    while dist[best] != cmax {
        best += 1;
    }
    best
}

/// Gathers the coordinates at `indices` into local SoA buffers (cleared
/// first) — loading a block into on-chip memory, in software.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_coords(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    indices: &[usize],
    out_xs: &mut Vec<f32>,
    out_ys: &mut Vec<f32>,
    out_zs: &mut Vec<f32>,
) {
    out_xs.clear();
    out_ys.clear();
    out_zs.clear();
    out_xs.reserve(indices.len());
    out_ys.reserve(indices.len());
    out_zs.reserve(indices.len());
    for &i in indices {
        out_xs.push(xs[i]);
        out_ys.push(ys[i]);
        out_zs.push(zs[i]);
    }
}

/// Ascending top-`k` insertion buffer over a precomputed distance stream —
/// the software form of the RSPU's merge-sort top-k unit.
///
/// `select` scans `(distance, payload)` pairs in order, maintaining the `k`
/// smallest in ascending order with the reference's exact semantics:
/// candidates tying the current worst are rejected (`>=`), equal distances
/// keep scan order, and `on_insert(len_before)` is invoked for every
/// accepted candidate so callers can replicate the reference's
/// insertion-cost accounting.
#[derive(Debug, Clone)]
pub struct TopK {
    buf: Vec<(f32, usize)>,
    k: usize,
}

impl TopK {
    /// A buffer selecting the `k` smallest distances.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> TopK {
        assert!(k > 0, "k must be at least 1");
        TopK { buf: Vec::with_capacity(k + 1), k }
    }

    /// Clears the buffer for reuse with the next query.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Scans `distances`, keeping the `k` nearest `(distance, index)` pairs;
    /// indices are the scan positions. Calls `on_insert(len_before)` per
    /// accepted candidate.
    pub fn select(&mut self, distances: &[f32], mut on_insert: impl FnMut(usize)) {
        for (i, &d) in distances.iter().enumerate() {
            if self.buf.len() == self.k && d >= self.buf[self.k - 1].0 {
                continue;
            }
            let pos = self.buf.partition_point(|&(bd, _)| bd <= d);
            on_insert(self.buf.len());
            self.buf.insert(pos, (d, i));
            if self.buf.len() > self.k {
                self.buf.pop();
            }
        }
    }

    /// The selected `(distance, index)` pairs, ascending.
    pub fn as_slice(&self) -> &[(f32, usize)] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soa(points: &[[f32; 3]]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        (
            points.iter().map(|p| p[0]).collect(),
            points.iter().map(|p| p[1]).collect(),
            points.iter().map(|p| p[2]).collect(),
        )
    }

    #[test]
    fn distances_match_scalar_formula() {
        let pts: Vec<[f32; 3]> =
            (0..200).map(|i| [i as f32 * 0.1, (i % 7) as f32, -(i as f32)]).collect();
        let (xs, ys, zs) = soa(&pts);
        let q = [1.5f32, 2.0, -3.0];
        let mut out = vec![0.0; pts.len()];
        distances_sq(&xs, &ys, &zs, q, &mut out);
        for (i, p) in pts.iter().enumerate() {
            let expect = (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2);
            assert_eq!(out[i], expect, "lane {i}");
        }
    }

    #[test]
    fn relax_argmax_first_max_wins_on_ties() {
        // Two equidistant candidates: the lower index must win, matching the
        // reference's strict `>` scan.
        let (xs, ys, zs) = soa(&[[0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [-2.0, 0.0, 0.0]]);
        let mut dist = vec![f32::INFINITY; 3];
        let best = fps_relax_argmax(&xs, &ys, &zs, [0.0, 0.0, 0.0], &mut dist);
        assert_eq!(best, 1, "index 1 ties index 2 and precedes it");
        assert_eq!(dist, vec![0.0, 4.0, 4.0]);
    }

    #[test]
    fn relax_argmax_skips_pinned_entries() {
        let (xs, ys, zs) = soa(&[[0.0, 0.0, 0.0], [5.0, 0.0, 0.0], [1.0, 0.0, 0.0]]);
        let mut dist = vec![f32::INFINITY; 3];
        dist[1] = f32::NEG_INFINITY; // already sampled
        let best = fps_relax_argmax(&xs, &ys, &zs, [0.0, 0.0, 0.0], &mut dist);
        assert_eq!(best, 2, "pinned entry 1 cannot win");
        assert_eq!(dist[1], f32::NEG_INFINITY, "pinned stays pinned");
    }

    #[test]
    fn relax_argmax_spans_chunk_boundaries() {
        let n = CHUNK * 3 + 17;
        let pts: Vec<[f32; 3]> = (0..n).map(|i| [i as f32, 0.0, 0.0]).collect();
        let (xs, ys, zs) = soa(&pts);
        let mut dist = vec![f32::INFINITY; n];
        let best = fps_relax_argmax(&xs, &ys, &zs, [0.0, 0.0, 0.0], &mut dist);
        assert_eq!(best, n - 1, "farthest point is in the final partial chunk");
    }

    #[test]
    fn nan_distances_leave_dist_unchanged() {
        let (xs, ys, zs) = soa(&[[f32::NAN, 0.0, 0.0], [1.0, 0.0, 0.0]]);
        let mut dist = vec![7.0f32, f32::INFINITY];
        fps_relax_argmax(&xs, &ys, &zs, [0.0, 0.0, 0.0], &mut dist);
        assert_eq!(dist[0], 7.0, "NaN candidate must not lower dist");
        assert_eq!(dist[1], 1.0);
    }

    #[test]
    fn gather_builds_local_soa() {
        let (xs, ys, zs) = soa(&[[0.0, 10.0, 20.0], [1.0, 11.0, 21.0], [2.0, 12.0, 22.0]]);
        let (mut gx, mut gy, mut gz) = (Vec::new(), Vec::new(), Vec::new());
        gather_coords(&xs, &ys, &zs, &[2, 0], &mut gx, &mut gy, &mut gz);
        assert_eq!(gx, vec![2.0, 0.0]);
        assert_eq!(gy, vec![12.0, 10.0]);
        assert_eq!(gz, vec![22.0, 20.0]);
    }

    #[test]
    fn topk_keeps_k_smallest_in_order() {
        let mut topk = TopK::new(3);
        let mut inserts = 0;
        topk.select(&[5.0, 1.0, 4.0, 0.5, 9.0, 0.7], |_| inserts += 1);
        let got: Vec<(f32, usize)> = topk.as_slice().to_vec();
        assert_eq!(got, vec![(0.5, 3), (0.7, 5), (1.0, 1)]);
        assert_eq!(inserts, 5, "9.0 is rejected by the full-buffer threshold");
    }

    #[test]
    fn topk_equal_distances_keep_scan_order() {
        let mut topk = TopK::new(2);
        topk.select(&[1.0, 1.0, 1.0], |_| {});
        assert_eq!(topk.as_slice(), &[(1.0, 0), (1.0, 1)]);
    }
}

//! Scalar kernel backend: straight per-point loops.
//!
//! The portable floor of the dispatch layer and the debugging target of
//! `FRACTALCLOUD_KERNEL=scalar`. Each function performs exactly the same
//! `f32` operations per candidate as the [`soa`](super::soa) and
//! [`avx2`](super::avx2) backends (same expression, same association, no
//! FMA contraction), so results are bit-identical; only the loop structure
//! differs.

/// Per-point squared distances; see [`kernels::distances_sq`](super::distances_sq).
pub fn distances_sq(xs: &[f32], ys: &[f32], zs: &[f32], q: [f32; 3], out: &mut [f32]) {
    for i in 0..xs.len() {
        let dx = xs[i] - q[0];
        let dy = ys[i] - q[1];
        let dz = zs[i] - q[2];
        out[i] = dx * dx + dy * dy + dz * dz;
    }
}

/// Fused tile of per-query distance rows + threshold prefilter masks over
/// one chunk; see the dispatching `knn_prefilter_tile` call site in
/// [`kernels`](super) for the contract (`out` rows strided by
/// [`CHUNK`](super::CHUNK); mask bit `j` set iff `!(row[j] >= threshold)`,
/// so a NaN threshold keeps every lane).
pub fn knn_prefilter_tile(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    thresholds: &[f32],
    out: &mut [f32],
    masks: &mut [u64],
) {
    for (qi, q) in queries.iter().enumerate() {
        let thr = thresholds[qi];
        let row = &mut out[qi * super::CHUNK..qi * super::CHUNK + xs.len()];
        let mut mask = 0u64;
        for j in 0..xs.len() {
            let dx = xs[j] - q[0];
            let dy = ys[j] - q[1];
            let dz = zs[j] - q[2];
            let d = dx * dx + dy * dy + dz * dz;
            row[j] = d;
            // `!(d >= thr)` keeps NaN distances (and everything under a NaN
            // threshold) on the insert path, like the reference's `>=`-skip.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            {
                mask |= u64::from(!(d >= thr)) << j;
            }
        }
        masks[qi] = mask;
    }
}

/// Fused relax + argmax; see [`kernels::fps_relax_argmax`](super::fps_relax_argmax).
///
/// The running strict-`>` argmax keeps the first maximum, matching the
/// chunked backends' first-occurrence selection; the `min` select idiom
/// leaves `dist` unchanged for NaN candidate distances.
pub fn fps_relax_argmax(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    dist: &mut [f32],
) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for i in 0..xs.len() {
        let dx = xs[i] - q[0];
        let dy = ys[i] - q[1];
        let dz = zs[i] - q[2];
        let nd = dx * dx + dy * dy + dz * dz;
        let cur = dist[i];
        let v = if nd < cur { nd } else { cur };
        dist[i] = v;
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Fused relax + pin + argmax; see
/// [`kernels::fps_relax_argmax_pin`](super::fps_relax_argmax_pin).
///
/// Identical to [`fps_relax_argmax`] except that candidates within the
/// pinning radius of the newest sample (`nd <= r_sq`) have their running
/// distance forced to `-∞` in the same pass, excluding them from this and
/// every future argmax. NaN distances neither relax nor pin.
pub fn fps_relax_argmax_pin(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    dist: &mut [f32],
) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for i in 0..xs.len() {
        let dx = xs[i] - q[0];
        let dy = ys[i] - q[1];
        let dz = zs[i] - q[2];
        let nd = dx * dx + dy * dy + dz * dz;
        let cur = dist[i];
        let v = if nd < cur { nd } else { cur };
        let v = if nd <= r_sq { f32::NEG_INFINITY } else { v };
        dist[i] = v;
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Segmented max-aggregation over neighbor index lists; see
/// [`kernels::segmented_max_into`](super::segmented_max_into) for the
/// contract. Straight per-segment loops with the branchy `if v > acc`
/// update — bit-identical to the chunked backends' select idiom (NaN
/// feature values never overwrite the accumulator, `-0.0`/`0.0` ties keep
/// the accumulator).
pub fn segmented_max(
    features: &[f32],
    channels: usize,
    indices: &[usize],
    counts: &[usize],
    num: usize,
    out: &mut [f32],
) {
    for (c, &count) in counts.iter().enumerate() {
        let orow = &mut out[c * channels..c * channels + channels];
        orow.fill(f32::NEG_INFINITY);
        for &i in &indices[c * num..c * num + count] {
            let frow = &features[i * channels..i * channels + channels];
            for ch in 0..channels {
                let v = frow[ch];
                if v > orow[ch] {
                    orow[ch] = v;
                }
            }
        }
    }
}

/// Tiled form of [`ball_chunk`]: one call scores every query of the tile
/// against the chunk (rows of `out` strided by [`CHUNK`](super::CHUNK)),
/// writing per-query hit masks and chunk minima. See the dispatching
/// `ball_prefilter_tile` call site in [`kernels`](super) for the contract.
/// Per-query `mins` hold the chunk's minimum distance only; the caller
/// locates the first-occurrence lane lazily (and only when the chunk
/// improves the running nearest) by rescanning the stored row.
#[allow(clippy::too_many_arguments)]
pub fn ball_prefilter_tile(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    r_sq: f32,
    thresholds: &[f32],
    out: &mut [f32],
    masks: &mut [u64],
    mins: &mut [f32],
) {
    for (qi, q) in queries.iter().enumerate() {
        let row = &mut out[qi * super::CHUNK..qi * super::CHUNK + xs.len()];
        let (mask, min, _lane) = ball_chunk(xs, ys, zs, *q, r_sq, thresholds[qi], row);
        masks[qi] = mask;
        mins[qi] = min;
    }
}

/// Fused distance + radius-compare + acceptance-prefilter chunk; see the
/// dispatching [`ball_chunk_with`](super::ball_chunk_with) for the
/// contract (`thr` masks out hits the selection buffer would reject).
pub fn ball_chunk(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    thr: f32,
    out: &mut [f32],
) -> (u64, f32, u32) {
    let mut mask = 0u64;
    let mut min = f32::INFINITY;
    let mut lane = u32::MAX;
    for i in 0..xs.len() {
        let dx = xs[i] - q[0];
        let dy = ys[i] - q[1];
        let dz = zs[i] - q[2];
        let d = dx * dx + dy * dy + dz * dz;
        out[i] = d;
        // `!(d >= thr)` (not `d < thr`): the buffer-filling sentinel is a
        // NaN threshold, which must keep every in-radius lane — including
        // an overflow-to-+inf distance the reference accepts as a hit.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        {
            mask |= u64::from(d <= r_sq && !(d >= thr)) << i;
        }
        if d < min {
            min = d;
            lane = i as u32;
        }
    }
    (mask, min, lane)
}
